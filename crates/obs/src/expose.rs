//! Prometheus text exposition (format version 0.0.4) for a registry
//! [`Snapshot`].
//!
//! Counters and gauges render as single samples; a [`LogHistogram`]
//! renders as the standard cumulative series — one
//! `name_bucket{le="<bound>"}` sample per occupied bucket (bounds are
//! the log-linear bucket upper bounds, so the series is sparse but
//! exact), the `le="+Inf"` closing bucket, and `name_sum` /
//! `name_count`. Metric names are sanitized into the
//! `[a-zA-Z_:][a-zA-Z0-9_:]*` charset (dots become underscores);
//! sanitization collisions are disambiguated with a numeric suffix so
//! two distinct registry names never merge into one series. Sample
//! values are always finite: non-finite gauges keep their `# TYPE`
//! line but drop the unrepresentable sample, and histogram sums are
//! clamped to the largest finite double.
//!
//! The renderer walks [`Snapshot::metrics`] — the same single
//! traversal behind `render_text` and `to_jsonl` — so a metric
//! recorded anywhere is present in every surface.
//!
//! [`LogHistogram`]: crate::hist::LogHistogram

use std::collections::BTreeSet;

use crate::registry::{Metric, Snapshot};

/// The HTTP `Content-Type` for this exposition format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Map a registry metric name into the Prometheus charset: characters
/// outside `[a-zA-Z0-9_:]` become `_`, and a leading digit gets a `_`
/// prefix. Empty names become `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Shortest round-trip float formatting; the callers guarantee `v` is
/// finite.
fn fmt_f64(v: f64) -> String {
    debug_assert!(v.is_finite());
    format!("{v:?}")
}

/// Claim a unique series base name: `base` itself when `base` and
/// every `base + suffix` are unused, else `base_2`, `base_3`, … — so
/// sanitization collisions (`a.b` vs `a_b`) and histogram suffix
/// clashes (`x` vs a counter named `x_count`) never produce duplicate
/// series.
fn claim(used: &mut BTreeSet<String>, base: String, suffixes: &[&str]) -> String {
    let free = |used: &BTreeSet<String>, cand: &str| {
        !used.contains(cand)
            && suffixes
                .iter()
                .all(|s| !used.contains(&format!("{cand}{s}")))
    };
    let name = if free(used, &base) {
        base
    } else {
        let mut k = 2u64;
        loop {
            let cand = format!("{base}_{k}");
            if free(used, &cand) {
                break cand;
            }
            k += 1;
        }
    };
    used.insert(name.clone());
    for s in suffixes {
        used.insert(format!("{name}{s}"));
    }
    name
}

/// Render a snapshot in Prometheus text exposition format. Output is
/// deterministic: metrics appear in the snapshot's (kind, name) order.
pub fn render_prometheus(snap: &Snapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut used: BTreeSet<String> = BTreeSet::new();
    for m in snap.metrics() {
        match m {
            Metric::Counter { name, value } => {
                let n = claim(&mut used, sanitize_name(name), &[]);
                let _ = writeln!(out, "# TYPE {n} counter\n{n} {value}");
            }
            Metric::Gauge { name, value } => {
                let n = claim(&mut used, sanitize_name(name), &[]);
                let _ = writeln!(out, "# TYPE {n} gauge");
                if value.is_finite() {
                    let _ = writeln!(out, "{n} {}", fmt_f64(value));
                }
            }
            Metric::Hist { name, hist } => {
                let n = claim(
                    &mut used,
                    sanitize_name(name),
                    &["_bucket", "_sum", "_count"],
                );
                let _ = writeln!(out, "# TYPE {n} histogram");
                for (ub, cum) in hist.cumulative_buckets() {
                    let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cum}", fmt_f64(ub));
                }
                let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", hist.count());
                let sum = hist.sum();
                let sum = if sum.is_finite() { sum } else { f64::MAX };
                let _ = writeln!(out, "{n}_sum {}", fmt_f64(sum));
                let _ = writeln!(out, "{n}_count {}", hist.count());
            }
        }
    }
    out
}

/// A well-formed metric name in the exposition charset.
fn is_valid_name(n: &str) -> bool {
    let mut chars = n.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Check the structural validity of an exposition document: every
/// line is a `# TYPE` comment or a `name[{le="bound"}] value` sample,
/// all names in the sanitized charset, all sample values finite,
/// bucket series ascending and monotone with a closing `+Inf` bucket
/// equal to `_count`, and no duplicate series. Used by the
/// exposition proptest and available to smoke tooling.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut seen_series: BTreeSet<String> = BTreeSet::new();
    let mut bucket_prev: Option<(String, f64, u64)> = None;
    let mut bucket_inf: std::collections::BTreeMap<String, u64> = Default::default();
    let mut counts: std::collections::BTreeMap<String, u64> = Default::default();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let name = it.next().unwrap_or("");
            let kind = it.next().unwrap_or("");
            if !is_valid_name(name) {
                return Err(format!("bad TYPE name {name:?}"));
            }
            if !["counter", "gauge", "histogram"].contains(&kind) {
                return Err(format!("bad TYPE kind {kind:?}"));
            }
            if it.next().is_some() {
                return Err(format!("trailing TYPE tokens: {line:?}"));
            }
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            return Err(format!("sample line without value: {line:?}"));
        };
        let v: f64 = value
            .parse()
            .map_err(|_| format!("unparseable sample value {value:?} in {line:?}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite sample in {line:?}"));
        }
        if let Some((name, labels)) = series.split_once('{') {
            // Only histogram buckets carry labels.
            let Some(base) = name.strip_suffix("_bucket") else {
                return Err(format!("labeled non-bucket series {series:?}"));
            };
            if !is_valid_name(name) {
                return Err(format!("bad series name {name:?}"));
            }
            let Some(le) = labels
                .strip_prefix("le=\"")
                .and_then(|l| l.strip_suffix("\"}"))
            else {
                return Err(format!("bad le label in {line:?}"));
            };
            if le == "+Inf" {
                bucket_inf.insert(base.to_string(), v as u64);
                bucket_prev = None;
            } else {
                let bound: f64 = le
                    .parse()
                    .map_err(|_| format!("unparseable le bound {le:?}"))?;
                if !bound.is_finite() {
                    return Err(format!("non-finite le bound in {line:?}"));
                }
                if let Some((prev_base, prev_bound, prev_cum)) = &bucket_prev {
                    if prev_base == base {
                        if *prev_bound >= bound {
                            return Err(format!("bounds not ascending at {line:?}"));
                        }
                        if *prev_cum > v as u64 {
                            return Err(format!("buckets not monotone at {line:?}"));
                        }
                    }
                }
                bucket_prev = Some((base.to_string(), bound, v as u64));
            }
        } else {
            if !is_valid_name(series) {
                return Err(format!("bad series name {series:?}"));
            }
            if !seen_series.insert(series.to_string()) {
                return Err(format!("duplicate series {series:?}"));
            }
            if let Some(base) = series.strip_suffix("_count") {
                if bucket_inf.contains_key(base) {
                    counts.insert(base.to_string(), v as u64);
                }
            }
        }
    }
    for (base, inf) in &bucket_inf {
        if counts.get(base) != Some(inf) {
            return Err(format!("histogram {base}: +Inf bucket != _count"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn check_exposition(text: &str) {
        if let Err(e) = validate_exposition(text) {
            panic!("invalid exposition: {e}\n{text}");
        }
    }

    #[test]
    fn sanitize_rules() {
        assert_eq!(sanitize_name("core.diagnose.calls"), "core_diagnose_calls");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name(""), "_");
        assert_eq!(sanitize_name("ok:name_1"), "ok:name_1");
    }

    #[test]
    fn renders_all_kinds_validly() {
        let r = Registry::new();
        r.counter_add("core.diagnose.calls", 7);
        r.gauge_set("serve.queue.depth", 3.5);
        r.gauge_set_dyn("serve.drift.psi.mobile.phy.rssi_avg", 0.07);
        r.hist_record("core.diagnose.confidence", 0.9);
        r.hist_record("core.diagnose.confidence", 0.4);
        r.hist_record("core.diagnose.confidence", f64::NAN);
        r.hist_record("core.diagnose.confidence", -1.0);
        let text = render_prometheus(&r.snapshot());
        check_exposition(&text);
        assert!(text.contains("# TYPE core_diagnose_calls counter"));
        assert!(text.contains("core_diagnose_calls 7"));
        assert!(text.contains("serve_queue_depth 3.5"));
        assert!(text.contains("serve_drift_psi_mobile_phy_rssi_avg 0.07"));
        assert!(text.contains("# TYPE core_diagnose_confidence histogram"));
        assert!(text.contains("core_diagnose_confidence_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("core_diagnose_confidence_count 2"));
    }

    #[test]
    fn non_finite_gauges_drop_the_sample_only() {
        let r = Registry::new();
        r.gauge_set("bad.gauge", f64::NAN);
        let text = render_prometheus(&r.snapshot());
        check_exposition(&text);
        assert!(text.contains("# TYPE bad_gauge gauge"));
        assert!(!text.lines().any(|l| l.starts_with("bad_gauge ")));
    }

    #[test]
    fn sanitization_collisions_stay_distinct() {
        let r = Registry::new();
        r.counter_add_dyn("a.b", 1);
        r.counter_add_dyn("a_b", 2);
        r.counter_add_dyn("a-b", 3);
        let text = render_prometheus(&r.snapshot());
        check_exposition(&text);
        // Three distinct series, values 1..3 all present.
        for v in 1..=3 {
            assert!(
                text.lines().any(|l| l.ends_with(&format!(" {v}"))),
                "value {v} lost:\n{text}"
            );
        }
    }
}
