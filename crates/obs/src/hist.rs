//! Log-linear histograms: fixed memory, mergeable, bounded relative
//! error on quantiles.
//!
//! Values are bucketed HdrHistogram-style: the exponent of the value
//! selects an octave and the top [`SUB_BITS`] mantissa bits select one
//! of [`SUBS`] linear sub-buckets inside it, so every bucket spans at
//! most `1/16` of its value — quantile estimates are upper bucket
//! bounds and therefore within `+6.25 %` of the true order statistic.
//! The exponent range is clamped to `[MIN_EXP, MAX_EXP]`
//! (≈ 2.3e-10 … 1.8e19), which covers every quantity the pipeline
//! records (nanoseconds to bytes); out-of-range values saturate into
//! the first/last bucket. Non-positive values are counted separately
//! (they carry no magnitude to bucket), NaNs are counted and otherwise
//! ignored.
//!
//! Merging is bucket-wise addition, so it is associative and
//! commutative: any sharding of a value stream across threads merges
//! back to the identical histogram (proven by proptest).

/// Linear sub-buckets per octave (2^SUB_BITS).
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
pub const SUBS: usize = 1 << SUB_BITS;
/// Smallest representable exponent (values below saturate).
const MIN_EXP: i32 = -32;
/// Largest representable exponent (values above saturate).
const MAX_EXP: i32 = 63;
/// Total bucket count.
/// Total bucket count — the valid index range for
/// [`LogHistogram::from_parts`] sparse pairs.
pub const BUCKETS: usize = ((MAX_EXP - MIN_EXP + 1) as usize) * SUBS;

/// A mergeable log-linear histogram of `f64` samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogHistogram {
    /// Bucket counts; allocated lazily on the first positive record.
    buckets: Vec<u64>,
    /// Positive, finite samples recorded (the quantile population).
    count: u64,
    /// Samples that were `<= 0.0` (magnitude-less; excluded from
    /// quantiles but reported).
    non_positive: u64,
    /// NaN samples (always a bug upstream, but never a panic here).
    nan: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Bucket index for a positive finite value.
fn index_of(v: f64) -> usize {
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7FF) as i32 - 1023;
    if exp < MIN_EXP {
        return 0;
    }
    if exp > MAX_EXP {
        return BUCKETS - 1;
    }
    let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    (exp - MIN_EXP) as usize * SUBS + sub
}

/// Upper bound of bucket `i` (the value a quantile estimate reports).
fn upper_bound(i: usize) -> f64 {
    let exp = MIN_EXP + (i / SUBS) as i32;
    let sub = (i % SUBS) as f64;
    (2f64).powi(exp) * (1.0 + (sub + 1.0) / SUBS as f64)
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            self.nan += 1;
            return;
        }
        if v <= 0.0 {
            self.non_positive += 1;
            return;
        }
        if self.buckets.is_empty() {
            self.buckets = vec![0; BUCKETS];
        }
        self.buckets[index_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        if self.count == 1 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Merge `other` into `self` (bucket-wise addition; commutative
    /// and associative).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count > 0 {
            if self.buckets.is_empty() {
                self.buckets = vec![0; BUCKETS];
            }
            for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
                *a += b;
            }
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
            self.count += other.count;
            self.sum += other.sum;
        }
        self.non_positive += other.non_positive;
        self.nan += other.nan;
    }

    /// Positive samples recorded (the quantile population).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples that were zero or negative.
    pub fn non_positive(&self) -> u64 {
        self.non_positive
    }

    /// NaN samples seen.
    pub fn nan(&self) -> u64 {
        self.nan
    }

    /// Sum of positive samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of positive samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count > 0 {
            self.sum / self.count as f64
        } else {
            0.0
        }
    }

    /// Smallest positive sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count > 0 {
            self.min
        } else {
            0.0
        }
    }

    /// Largest positive sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count > 0 {
            self.max
        } else {
            0.0
        }
    }

    /// Quantile estimate: the upper bound of the bucket holding the
    /// `q`-th order statistic of the positive samples. Guaranteed in
    /// `[v, v * (1 + 1/SUBS)]` for the true order statistic `v`
    /// (within the clamped exponent range). Returns 0 for an empty
    /// histogram; `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the order statistic: ceil(q * n), at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return upper_bound(i);
            }
        }
        self.max
    }

    /// `(p50, p95, p99)` shorthand.
    pub fn percentiles(&self) -> (f64, f64, f64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }

    /// Upper bound of bucket index `i` — the boundary a cumulative
    /// (`le`) series reports for that bucket.
    pub fn bucket_bound(i: usize) -> f64 {
        upper_bound(i.min(BUCKETS - 1))
    }

    /// Occupied buckets as `(index, count)` pairs, ascending. Empty
    /// buckets are skipped, so the result is `O(distinct magnitudes)`
    /// rather than the full table.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Cumulative bucket series for exposition: `(upper_bound,
    /// cumulative_count)` at every occupied bucket, ascending, with the
    /// final entry's count equal to [`count`](LogHistogram::count).
    /// Counts are monotone non-decreasing by construction. Empty
    /// histograms yield an empty series.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, c) in self.nonzero_buckets() {
            cum += c;
            out.push((upper_bound(i), cum));
        }
        out
    }

    /// Reassemble a histogram from its serialized parts: sparse
    /// `(bucket index, count)` pairs plus the scalar fields. The
    /// inverse of reading [`nonzero_buckets`] and the accessors —
    /// used by the model drift stamp's text round trip. Rejects
    /// out-of-range bucket indices, bucket/count mismatches and
    /// non-finite extrema.
    pub fn from_parts(
        sparse: &[(usize, u64)],
        non_positive: u64,
        nan: u64,
        sum: f64,
        min: f64,
        max: f64,
    ) -> Result<LogHistogram, String> {
        let mut h = LogHistogram::new();
        let mut count = 0u64;
        if !sparse.is_empty() {
            h.buckets = vec![0; BUCKETS];
            for &(i, c) in sparse {
                if i >= BUCKETS {
                    return Err(format!("bucket index {i} out of range (max {BUCKETS})"));
                }
                if c == 0 {
                    return Err(format!("bucket {i} has zero count"));
                }
                h.buckets[i] += c;
                count += c;
            }
        }
        if count > 0 && !(sum.is_finite() && min.is_finite() && max.is_finite()) {
            return Err("non-finite histogram extrema".to_string());
        }
        if count > 0 && min > max {
            return Err(format!("histogram min {min} > max {max}"));
        }
        h.count = count;
        h.non_positive = non_positive;
        h.nan = nan;
        if count > 0 {
            h.sum = sum;
            h.min = min;
            h.max = max;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroes() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn single_value_quantiles_are_tight() {
        let mut h = LogHistogram::new();
        h.record(100.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let est = h.quantile(q);
            assert!(
                est >= 100.0 && est <= 100.0 * (1.0 + 1.0 / SUBS as f64),
                "{est}"
            );
        }
        assert_eq!(h.min(), 100.0);
        assert_eq!(h.max(), 100.0);
        assert_eq!(h.mean(), 100.0);
    }

    #[test]
    fn non_positive_and_nan_are_counted_not_bucketed() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(2.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.non_positive(), 2);
        assert_eq!(h.nan(), 1);
        assert!(h.quantile(0.5) >= 2.0);
    }

    #[test]
    fn saturates_outside_exponent_range() {
        let mut h = LogHistogram::new();
        h.record(1e-300);
        h.record(1e300);
        assert_eq!(h.count(), 2);
        // Both land in the clamped edge buckets; quantiles stay finite
        // and ordered.
        assert!(h.quantile(0.01) <= h.quantile(0.99));
        assert!(h.quantile(0.99).is_finite());
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_complete() {
        let mut h = LogHistogram::new();
        for v in [0.5, 1.0, 3.2, 19.0, 19.0, 1e6, 7e-8, 42.0] {
            h.record(v);
        }
        let series = h.cumulative_buckets();
        assert!(!series.is_empty());
        for w in series.windows(2) {
            assert!(w[0].0 < w[1].0, "bounds not ascending: {series:?}");
            assert!(w[0].1 <= w[1].1, "counts not monotone: {series:?}");
        }
        assert_eq!(series.last().map(|&(_, c)| c), Some(h.count()));
        // Every bound is a real bucket upper bound and brackets max.
        assert!(series.last().is_some_and(|&(ub, _)| ub >= h.max()));
        assert!(LogHistogram::new().cumulative_buckets().is_empty());
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = LogHistogram::new();
        for v in [0.5, 3.2, 19.0, -1.0, 0.0, f64::NAN, 1e6] {
            h.record(v);
        }
        let sparse: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        let back = LogHistogram::from_parts(
            &sparse,
            h.non_positive(),
            h.nan(),
            h.sum(),
            h.min(),
            h.max(),
        )
        .unwrap();
        assert_eq!(back, h);
        // Corruption is rejected, not panicked on.
        assert!(LogHistogram::from_parts(&[(usize::MAX, 1)], 0, 0, 1.0, 1.0, 1.0).is_err());
        assert!(LogHistogram::from_parts(&[(3, 0)], 0, 0, 1.0, 1.0, 1.0).is_err());
        assert!(LogHistogram::from_parts(&[(3, 1)], 0, 0, f64::NAN, 1.0, 1.0).is_err());
        assert!(LogHistogram::from_parts(&[(3, 1)], 0, 0, 1.0, 2.0, 1.0).is_err());
    }

    #[test]
    fn merge_matches_sequential() {
        let vals = [0.5, 1.0, 3.2, 19.0, 19.0, 1e6, 7e-8, 42.0];
        let mut all = LogHistogram::new();
        for v in vals {
            all.record(v);
        }
        let (mut a, mut b) = (LogHistogram::new(), LogHistogram::new());
        for (i, v) in vals.iter().enumerate() {
            if i % 2 == 0 {
                a.record(*v)
            } else {
                b.record(*v)
            }
        }
        a.merge(&b);
        // Buckets, counts and extrema are exactly shard-invariant; the
        // running sum differs only by FP addition-order rounding.
        assert_eq!(a.buckets, all.buckets);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
        assert!((a.sum() - all.sum()).abs() <= all.sum() * 1e-12);
    }
}
