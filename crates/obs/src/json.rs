//! Minimal JSON value type with a parser and writer.
//!
//! The workspace has no crates.io access, so this module stands in for
//! `serde_json` (the same way `vendor/rand` stands in for `rand`):
//! enough JSON to write and re-read metric snapshots and Chrome
//! traces, with deterministic output. Objects preserve insertion order
//! as `(String, Json)` pairs — duplicate keys are kept verbatim, first
//! match wins on lookup.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// String value helper.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Number value helper.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// Object helper from `(&str, Json)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Member lookup on objects (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(f, *v),
            Json::Str(s) => write_str(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_str(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// JSON has no NaN/Infinity; map them to null like serde_json's lossy
/// writers. Integral values print without a fraction so counters stay
/// readable (`7`, not `7.0`).
fn write_num(f: &mut fmt::Formatter<'_>, v: f64) -> fmt::Result {
    if !v.is_finite() {
        return f.write_str("null");
    }
    if v == v.trunc() && v.abs() < 9.0e15 {
        write!(f, "{}", v as i64)
    } else {
        // {:?} is Rust's shortest round-trip float formatting.
        write!(f, "{v:?}")
    }
}

fn write_str(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain UTF-8 runs.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| "bad \\u escape".to_string())?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for this
                            // writer's output; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let v = Json::obj(vec![
            ("a", Json::num(1.0)),
            ("b", Json::str("x\"y\n")),
            (
                "c",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::num(2.5)]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text), Ok(v));
    }

    #[test]
    fn integers_print_plain() {
        assert_eq!(Json::num(7.0).to_string(), "7");
        assert_eq!(Json::num(2.5).to_string(), "2.5");
        assert_eq!(Json::num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parse_whitespace_and_nesting() {
        let v = Json::parse(" { \"k\" : [ 1 , { \"n\" : null } ] } ").unwrap();
        assert_eq!(
            v.get("k").and_then(|a| a.as_arr()).map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn float_roundtrip_exact() {
        for v in [0.1, 1e-9, 123456.789, 35.28] {
            let text = Json::num(v).to_string();
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(v));
        }
    }
}
