//! `vqd-obs`: determinism-neutral observability for the vqd workspace.
//!
//! Three pieces:
//!
//! * [`Registry`] — sharded counters / gauges / log-linear histograms
//!   ([`LogHistogram`]), merged into a deterministic [`Snapshot`].
//! * [`trace`] — spans on two clock domains (wall for pipeline stages,
//!   virtual sim time for in-simulation events), exported as Chrome
//!   `trace_event` JSON.
//! * [`Recorder`] — the trait instrumentation sites talk to. The
//!   global [`recorder()`] returns a no-op implementation until
//!   [`enable()`] is called, so the disabled path is one relaxed
//!   atomic load and a static dispatch-table call that does nothing.
//!
//! # Determinism contract
//!
//! Recording is *write-only* with respect to the system under
//! observation: no instrumentation site reads a metric back to make a
//! decision, recording never draws from an RNG, and flush points sit
//! outside the event loop (per session / per fit). Simulated corpora
//! are therefore byte-identical with observability on or off, at any
//! thread count — `tests/determinism.rs` and `tests/scheduler_diff.rs`
//! enforce this.

pub mod expose;
pub mod hist;
pub mod json;
pub mod registry;
pub mod trace;

pub use hist::LogHistogram;
pub use registry::{Metric, Registry, Snapshot};
pub use trace::{chrome_trace_json, validate_trace, Clock, SpanRecord, SpanSink};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// What instrumentation sites record to. Every method has a no-op
/// default, so a custom recorder only overrides what it wants and the
/// null recorder is literally empty.
pub trait Recorder: Sync {
    /// Add `n` to counter `name`.
    fn counter_add(&self, name: &'static str, n: u64) {
        let _ = (name, n);
    }
    /// Add `n` to a counter with a runtime-built name (per-label
    /// tallies). Costlier than [`counter_add`](Recorder::counter_add);
    /// prefer literals where the name set is static.
    fn counter_add_dyn(&self, name: &str, n: u64) {
        let _ = (name, n);
    }
    /// Set gauge `name` (last write wins).
    fn gauge_set(&self, name: &'static str, v: f64) {
        let _ = (name, v);
    }
    /// Set a gauge with a runtime-built name (per-label values).
    /// Costlier than [`gauge_set`](Recorder::gauge_set); prefer
    /// literals where the name set is static.
    fn gauge_set_dyn(&self, name: &str, v: f64) {
        let _ = (name, v);
    }
    /// Record a histogram sample.
    fn hist_record(&self, name: &'static str, v: f64) {
        let _ = (name, v);
    }
    /// Record a completed span. Only called when [`tracing_enabled`]
    /// is also true — span construction costs a clock read, so sites
    /// gate on that flag themselves.
    fn span(&self, span: SpanRecord) {
        let _ = span;
    }
}

/// The recorder used while observability is disabled.
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Global registry + span sink behind the `Recorder` trait.
struct GlobalRecorder {
    registry: Registry,
    spans: SpanSink,
}

impl Recorder for GlobalRecorder {
    fn counter_add(&self, name: &'static str, n: u64) {
        self.registry.counter_add(name, n);
    }
    fn counter_add_dyn(&self, name: &str, n: u64) {
        self.registry.counter_add_dyn(name, n);
    }
    fn gauge_set(&self, name: &'static str, v: f64) {
        self.registry.gauge_set(name, v);
    }
    fn gauge_set_dyn(&self, name: &str, v: f64) {
        self.registry.gauge_set_dyn(name, v);
    }
    fn hist_record(&self, name: &'static str, v: f64) {
        self.registry.hist_record(name, v);
    }
    fn span(&self, span: SpanRecord) {
        self.spans.push(span);
    }
}

static NOOP: NoopRecorder = NoopRecorder;
static ENABLED: AtomicBool = AtomicBool::new(false);
static TRACING: AtomicBool = AtomicBool::new(false);

fn global() -> &'static GlobalRecorder {
    static GLOBAL: OnceLock<GlobalRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| GlobalRecorder {
        registry: Registry::new(),
        spans: SpanSink::new(),
    })
}

/// The process-wide recorder. One relaxed load when disabled.
#[inline]
pub fn recorder() -> &'static dyn Recorder {
    if ENABLED.load(Ordering::Relaxed) {
        global()
    } else {
        &NOOP
    }
}

/// Turn metric recording on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn metric recording off (also stops span collection).
pub fn disable() {
    TRACING.store(false, Ordering::Relaxed);
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether metric recording is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn span collection on (implies [`enable`]).
pub fn enable_tracing() {
    ENABLED.store(true, Ordering::Relaxed);
    TRACING.store(true, Ordering::Relaxed);
}

/// Whether span collection is on. Sites that would pay a clock read
/// to build a span check this first.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Merge and return the global registry's current contents.
pub fn snapshot() -> Snapshot {
    global().registry.snapshot()
}

/// Clear the global registry and drop any collected spans.
pub fn reset() {
    global().registry.reset();
    let _ = global().spans.drain_sorted();
}

/// Take all collected spans (sorted deterministically), leaving the
/// sink empty.
pub fn take_spans() -> Vec<SpanRecord> {
    global().spans.drain_sorted()
}

/// RAII guard for a wall-clock span: measures from construction to
/// drop and records via the global recorder. Free when tracing is off
/// (no clock read, nothing recorded).
pub struct WallSpan {
    name: &'static str,
    cat: &'static str,
    start_ns: Option<u64>,
}

impl WallSpan {
    pub fn begin(name: &'static str, cat: &'static str) -> Self {
        let start_ns = tracing_enabled().then(trace::wall_now_ns);
        Self {
            name,
            cat,
            start_ns,
        }
    }
}

impl Drop for WallSpan {
    fn drop(&mut self) {
        if let Some(start_ns) = self.start_ns {
            let end = trace::wall_now_ns();
            recorder().span(SpanRecord {
                name: self.name,
                cat: self.cat,
                clock: Clock::Wall,
                start_ns,
                dur_ns: end.saturating_sub(start_ns),
            });
        }
    }
}

/// Record a virtual-clock (simulated time) span. The caller supplies
/// both endpoints from the sim clock; nothing is recorded when tracing
/// is off.
pub fn virtual_span(name: &'static str, cat: &'static str, start_ns: u64, end_ns: u64) {
    if tracing_enabled() {
        recorder().span(SpanRecord {
            name,
            cat,
            clock: Clock::Virtual,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global-state tests share one process; run the whole flow in a
    // single test to avoid cross-test ordering flakes.
    #[test]
    fn global_recorder_lifecycle() {
        // Disabled: everything is dropped.
        disable();
        reset();
        recorder().counter_add("t.dropped", 5);
        assert_eq!(snapshot().counter("t.dropped"), 0);

        // Enabled: metrics land.
        enable();
        recorder().counter_add("t.kept", 2);
        recorder().hist_record("t.h", 4.0);
        assert_eq!(snapshot().counter("t.kept"), 2);
        assert_eq!(snapshot().hist("t.h").map(|h| h.count()), Some(1));

        // Spans only collected under tracing.
        {
            let _s = WallSpan::begin("no_trace", "test");
        }
        assert!(take_spans().is_empty());
        enable_tracing();
        {
            let _s = WallSpan::begin("traced", "test");
        }
        virtual_span("vspan", "test", 100, 300);
        let spans = take_spans();
        assert_eq!(spans.len(), 2);
        assert!(spans
            .iter()
            .any(|s| s.name == "traced" && s.clock == Clock::Wall));
        assert!(spans
            .iter()
            .any(|s| s.name == "vspan" && s.clock == Clock::Virtual && s.dur_ns == 200));

        disable();
        reset();
        assert!(snapshot().is_empty());
    }
}
