//! Sharded metrics registry.
//!
//! Each OS thread that records gets its own shard (an `Arc<Shard>`
//! cached in a thread-local), so the common path is an uncontended
//! mutex lock on thread-private data — no cross-thread cache traffic.
//! [`Registry::snapshot`] merges every shard into a deterministic,
//! name-sorted [`Snapshot`]; merging is pure bucket/sum addition, so
//! the snapshot is independent of how work was sharded across threads.
//!
//! Recording sites flush at coarse granularity (once per simulated
//! session, once per model fit), never per event — the registry is
//! cheap, but the hot loops stay untouched.

use crate::hist::LogHistogram;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Metric name: almost always a `'static` literal (zero-alloc); the
/// dynamic-name paths (`*_dyn`) pay one allocation per shard on first
/// use of a name.
type Key = Cow<'static, str>;

/// Thread-private metric storage, keyed by dotted names
/// (`"simnet.link.drop_tail_pkts"`).
#[derive(Default)]
struct ShardData {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, (u64, f64)>,
    hists: BTreeMap<Key, LogHistogram>,
}

/// One thread's shard. The mutex is almost always uncontended: only
/// the owning thread records, and `snapshot()` briefly locks each
/// shard when merging.
#[derive(Default)]
pub(crate) struct Shard {
    data: Mutex<ShardData>,
}

impl Shard {
    fn lock(&self) -> MutexGuard<'_, ShardData> {
        // A poisoned shard mutex would mean a panic mid-record; the
        // data is still structurally sound (plain adds), so keep it.
        match self.data.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// A metrics registry with per-thread shards.
pub struct Registry {
    shards: Mutex<Vec<Arc<Shard>>>,
    /// Global sequence for gauge last-write-wins ordering.
    gauge_seq: AtomicU64,
    /// Process-unique id for the thread-local shard cache (a raw
    /// address would be unsound: a new registry can reuse a dropped
    /// one's allocation).
    id: u64,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Source of process-unique registry ids.
static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(registry id, shard)` cache so repeat records on the same
    /// thread skip the registry-wide lock.
    static SHARD_CACHE: std::cell::RefCell<Option<(u64, Arc<Shard>)>> =
        const { std::cell::RefCell::new(None) };
}

impl Registry {
    pub fn new() -> Self {
        Self {
            shards: Mutex::new(Vec::new()),
            gauge_seq: AtomicU64::new(0),
            id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    fn shard(&self) -> Arc<Shard> {
        let id = self.id;
        SHARD_CACHE.with(|c| {
            let mut c = c.borrow_mut();
            if let Some((cached_id, shard)) = c.as_ref() {
                if *cached_id == id {
                    return Arc::clone(shard);
                }
            }
            let shard = Arc::new(Shard::default());
            match self.shards.lock() {
                Ok(mut v) => v.push(Arc::clone(&shard)),
                Err(p) => p.into_inner().push(Arc::clone(&shard)),
            }
            *c = Some((id, Arc::clone(&shard)));
            shard
        })
    }

    /// Add `n` to counter `name`.
    pub fn counter_add(&self, name: &'static str, n: u64) {
        if n == 0 {
            return;
        }
        let shard = self.shard();
        *shard
            .lock()
            .counters
            .entry(Cow::Borrowed(name))
            .or_insert(0) += n;
    }

    /// Add `n` to a counter with a runtime-built name (e.g. per-label
    /// counts). Allocates the key once per shard.
    pub fn counter_add_dyn(&self, name: &str, n: u64) {
        if n == 0 {
            return;
        }
        let shard = self.shard();
        let mut data = shard.lock();
        match data.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                data.counters.insert(Cow::Owned(name.to_string()), n);
            }
        }
    }

    /// Set gauge `name` to `v` (last write across all threads wins,
    /// ordered by a global sequence number).
    pub fn gauge_set(&self, name: &'static str, v: f64) {
        let seq = self.gauge_seq.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard();
        shard.lock().gauges.insert(Cow::Borrowed(name), (seq, v));
    }

    /// Set a gauge with a runtime-built name (e.g. per-feature drift
    /// scores). Allocates the key once per shard.
    pub fn gauge_set_dyn(&self, name: &str, v: f64) {
        let seq = self.gauge_seq.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard();
        let mut data = shard.lock();
        match data.gauges.get_mut(name) {
            Some(g) => *g = (seq, v),
            None => {
                data.gauges.insert(Cow::Owned(name.to_string()), (seq, v));
            }
        }
    }

    /// Record one sample into histogram `name`.
    pub fn hist_record(&self, name: &'static str, v: f64) {
        let shard = self.shard();
        shard
            .lock()
            .hists
            .entry(Cow::Borrowed(name))
            .or_default()
            .record(v);
    }

    /// Merge every shard into a deterministic snapshot. Shards are
    /// left in place (counters keep accumulating); use [`reset`] to
    /// clear.
    ///
    /// [`reset`]: Registry::reset
    pub fn snapshot(&self) -> Snapshot {
        let shards = match self.shards.lock() {
            Ok(g) => g.iter().map(Arc::clone).collect::<Vec<_>>(),
            Err(p) => p.into_inner().iter().map(Arc::clone).collect(),
        };
        let mut snap = Snapshot::default();
        let mut gauges: BTreeMap<String, (u64, f64)> = BTreeMap::new();
        for shard in shards {
            let data = shard.lock();
            for (k, v) in &data.counters {
                *snap.counters.entry(k.to_string()).or_insert(0) += v;
            }
            for (k, (seq, v)) in &data.gauges {
                let e = gauges.entry(k.to_string()).or_insert((*seq, *v));
                if *seq >= e.0 {
                    *e = (*seq, *v);
                }
            }
            for (k, h) in &data.hists {
                snap.hists.entry(k.to_string()).or_default().merge(h);
            }
        }
        for (k, (_, v)) in gauges {
            snap.gauges.insert(k, v);
        }
        snap
    }

    /// Clear all shards (snapshot after reset is empty). Shards stay
    /// registered so thread-local caches remain valid.
    pub fn reset(&self) {
        let shards = match self.shards.lock() {
            Ok(g) => g.iter().map(Arc::clone).collect::<Vec<_>>(),
            Err(p) => p.into_inner().iter().map(Arc::clone).collect(),
        };
        for shard in shards {
            let mut data = shard.lock();
            data.counters.clear();
            data.gauges.clear();
            data.hists.clear();
        }
    }
}

/// A merged, name-sorted view of the registry at one point in time.
#[derive(Default, Debug, Clone)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub hists: BTreeMap<String, LogHistogram>,
}

/// One metric as every renderer sees it. [`Snapshot::metrics`] is the
/// single traversal behind [`Snapshot::render_text`],
/// [`Snapshot::to_jsonl`] and the Prometheus exposition
/// ([`crate::expose`]) — a metric visible in one surface is visible in
/// all of them by construction.
#[derive(Debug, Clone, Copy)]
pub enum Metric<'a> {
    Counter {
        name: &'a str,
        value: u64,
    },
    Gauge {
        name: &'a str,
        value: f64,
    },
    Hist {
        name: &'a str,
        hist: &'a LogHistogram,
    },
}

impl Metric<'_> {
    /// The metric's name, whichever kind it is.
    pub fn name(&self) -> &str {
        match self {
            Metric::Counter { name, .. }
            | Metric::Gauge { name, .. }
            | Metric::Hist { name, .. } => name,
        }
    }
}

impl Snapshot {
    /// Every metric in deterministic (kind, name) order — counters,
    /// then gauges, then histograms, each name-sorted. All render
    /// surfaces iterate this one traversal.
    pub fn metrics(&self) -> impl Iterator<Item = Metric<'_>> {
        self.counters
            .iter()
            .map(|(k, &v)| Metric::Counter { name: k, value: v })
            .chain(
                self.gauges
                    .iter()
                    .map(|(k, &v)| Metric::Gauge { name: k, value: v }),
            )
            .chain(
                self.hists
                    .iter()
                    .map(|(k, h)| Metric::Hist { name: k, hist: h }),
            )
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Counter value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram, if any samples were recorded.
    pub fn hist(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.get(name)
    }

    /// Counters under `prefix` (e.g. `"core.diagnose.label."`),
    /// returned as `(suffix, value)` pairs in name order.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(move |(k, v)| (&k[prefix.len()..], *v))
    }

    /// Render as JSON Lines: one `{"kind":...,"name":...}` object per
    /// metric, in deterministic (kind, name) order.
    pub fn to_jsonl(&self) -> String {
        use crate::json::Json;
        let mut out = String::new();
        for m in self.metrics() {
            let obj = match m {
                Metric::Counter { name, value } => Json::obj(vec![
                    ("kind", Json::str("counter")),
                    ("name", Json::str(name)),
                    ("value", Json::num(value as f64)),
                ]),
                Metric::Gauge { name, value } => Json::obj(vec![
                    ("kind", Json::str("gauge")),
                    ("name", Json::str(name)),
                    ("value", Json::num(value)),
                ]),
                Metric::Hist { name, hist: h } => {
                    let (p50, p95, p99) = h.percentiles();
                    Json::obj(vec![
                        ("kind", Json::str("hist")),
                        ("name", Json::str(name)),
                        ("count", Json::num(h.count() as f64)),
                        ("sum", Json::num(h.sum())),
                        ("mean", Json::num(h.mean())),
                        ("min", Json::num(h.min())),
                        ("max", Json::num(h.max())),
                        ("p50", Json::num(p50)),
                        ("p95", Json::num(p95)),
                        ("p99", Json::num(p99)),
                        ("non_positive", Json::num(h.non_positive() as f64)),
                        ("nan", Json::num(h.nan() as f64)),
                    ])
                }
            };
            out.push_str(&obj.to_string());
            out.push('\n');
        }
        out
    }

    /// Render a human-readable table (the `vqd stats` view).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut section = "";
        for m in self.metrics() {
            let header = match m {
                Metric::Counter { .. } => "counters:\n",
                Metric::Gauge { .. } => "gauges:\n",
                Metric::Hist { .. } => "histograms:\n",
            };
            if section != header {
                out.push_str(header);
                section = header;
            }
            match m {
                Metric::Counter { name, value } => {
                    out.push_str(&format!("  {name:<44} {value}\n"));
                }
                Metric::Gauge { name, value } => {
                    out.push_str(&format!("  {name:<44} {value:.3}\n"));
                }
                Metric::Hist { name, hist: h } => {
                    let (p50, p95, p99) = h.percentiles();
                    out.push_str(&format!(
                        "  {name:<44} n={} mean={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}\n",
                        h.count(),
                        h.mean(),
                        p50,
                        p95,
                        p99,
                        h.max()
                    ));
                }
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_hists_accumulate() {
        let r = Registry::new();
        r.counter_add("a.b", 3);
        r.counter_add("a.b", 4);
        r.hist_record("h", 2.0);
        r.hist_record("h", 8.0);
        r.gauge_set("g", 1.0);
        r.gauge_set("g", 2.5);
        let s = r.snapshot();
        assert_eq!(s.counter("a.b"), 7);
        assert_eq!(s.gauge("g"), Some(2.5));
        let h = s.hist("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 10.0);
    }

    #[test]
    fn reset_clears() {
        let r = Registry::new();
        r.counter_add("x", 1);
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn cross_thread_shards_merge() {
        let r = Arc::new(Registry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for _ in 0..100 {
                        r.counter_add("t.c", 1);
                        r.hist_record("t.h", 5.0);
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counter("t.c"), 400);
        assert_eq!(snap.hist("t.h").unwrap().count(), 400);
    }

    /// Every render surface draws from the one `metrics()` traversal:
    /// a metric present in any of text / JSONL / Prometheus exposition
    /// must be present in all three, under the same (modulo
    /// sanitization) name.
    #[test]
    fn renderers_agree_on_the_metric_name_set() {
        use crate::json::Json;
        let r = Registry::new();
        r.counter_add("core.diagnose.calls", 3);
        r.counter_add_dyn("core.diagnose.label.good", 2);
        r.gauge_set("serve.queue.depth", 1.5);
        r.gauge_set_dyn("serve.drift.psi.rssi", 0.2);
        r.hist_record("core.batch.stage.predict_us", 12.0);
        r.hist_record("serve.flush.ms", 0.7);
        let snap = r.snapshot();

        let names: Vec<String> = snap.metrics().map(|m| m.name().to_string()).collect();
        assert_eq!(names.len(), 6);

        let text = snap.render_text();
        let jsonl = snap.to_jsonl();
        let prom = crate::expose::render_prometheus(&snap);
        let json_names: Vec<String> = jsonl
            .lines()
            .map(|l| {
                Json::parse(l)
                    .ok()
                    .and_then(|o| o.get("name").and_then(|n| n.as_str().map(str::to_string)))
                    .unwrap_or_default()
            })
            .collect();
        assert_eq!(json_names, names, "JSONL names diverge from traversal");
        for name in &names {
            assert!(
                text.lines()
                    .any(|l| l.trim_start().starts_with(name.as_str())),
                "{name} missing from render_text"
            );
            let sanitized = crate::expose::sanitize_name(name);
            assert!(
                prom.lines().any(|l| l
                    .strip_prefix("# TYPE ")
                    .is_some_and(|r| r.split(' ').next() == Some(sanitized.as_str()))),
                "{name} (as {sanitized}) missing from exposition"
            );
        }
    }

    #[test]
    fn prefix_iter() {
        let r = Registry::new();
        r.counter_add("lab.a", 1);
        r.counter_add("lab.b", 2);
        r.counter_add("other", 9);
        let s = r.snapshot();
        let got: Vec<_> = s.counters_with_prefix("lab.").collect();
        assert_eq!(got, vec![("a", 1), ("b", 2)]);
    }
}
