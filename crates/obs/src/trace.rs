//! Span/trace facility.
//!
//! Two clock domains, never mixed on one timeline:
//!
//! * **Wall** — monotonic host time ([`std::time::Instant`]) relative
//!   to a process-wide epoch. Used for pipeline stages (generate →
//!   construct → select → train → diagnose) and anything else that
//!   measures real elapsed time.
//! * **Virtual** — simulated nanoseconds from the discrete-event
//!   clock. Used for in-simulation events (session lifetimes, stall
//!   intervals). Virtual timestamps are part of the simulation's
//!   deterministic state, so recording them can never perturb it.
//!
//! Export is Chrome `trace_event` JSON (the "Trace Event Format"
//! complete-event `"ph":"X"` flavor); virtual-clock spans are emitted
//! on a separate `pid` so chrome://tracing / Perfetto shows the two
//! timelines as distinct processes instead of interleaving
//! incomparable clocks.

use std::sync::Mutex;
use std::time::Instant;

/// Which timeline a span's timestamps belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Monotonic host time relative to the process trace epoch.
    Wall,
    /// Simulated nanoseconds.
    Virtual,
}

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (e.g. `"train"`, `"session"`).
    pub name: &'static str,
    /// Category for trace viewers (e.g. `"pipeline"`, `"sim"`).
    pub cat: &'static str,
    pub clock: Clock,
    /// Start in ns on `clock`'s timeline.
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
}

/// Thread-safe span sink. Span *collection* order across threads is
/// nondeterministic; export sorts by `(clock, start_ns, dur_ns, name)`
/// so the file is stable for a deterministic workload.
#[derive(Default)]
pub struct SpanSink {
    spans: Mutex<Vec<SpanRecord>>,
}

/// Process-wide wall epoch: first use wins; all wall spans are offsets
/// from it so they share one timeline.
static WALL_EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();

/// Nanoseconds since the process trace epoch.
pub fn wall_now_ns() -> u64 {
    let epoch = *WALL_EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

impl SpanSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&self, span: SpanRecord) {
        match self.spans.lock() {
            Ok(mut v) => v.push(span),
            Err(p) => p.into_inner().push(span),
        }
    }

    /// Copy out all spans, sorted deterministically.
    pub fn drain_sorted(&self) -> Vec<SpanRecord> {
        let mut spans = match self.spans.lock() {
            Ok(mut v) => std::mem::take(&mut *v),
            Err(p) => std::mem::take(&mut *p.into_inner()),
        };
        spans.sort_by(|a, b| {
            let ka = (a.clock == Clock::Virtual, a.start_ns, a.dur_ns, a.name);
            let kb = (b.clock == Clock::Virtual, b.start_ns, b.dur_ns, b.name);
            ka.cmp(&kb)
        });
        spans
    }

    pub fn len(&self) -> usize {
        match self.spans.lock() {
            Ok(v) => v.len(),
            Err(p) => p.into_inner().len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// `pid` used for wall-clock spans in the Chrome export.
pub const WALL_PID: u64 = 1;
/// `pid` used for virtual-clock spans in the Chrome export.
pub const VIRTUAL_PID: u64 = 2;

/// Serialize spans as Chrome `trace_event` JSON (object form with a
/// `traceEvents` array of complete events). Timestamps are microsecond
/// floats per the format; sub-microsecond spans keep fractional
/// precision.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    use crate::json::Json;
    let events: Vec<Json> = spans
        .iter()
        .map(|s| {
            let pid = match s.clock {
                Clock::Wall => WALL_PID,
                Clock::Virtual => VIRTUAL_PID,
            };
            Json::obj(vec![
                ("name", Json::str(s.name)),
                ("cat", Json::str(s.cat)),
                ("ph", Json::str("X")),
                ("ts", Json::num(s.start_ns as f64 / 1000.0)),
                ("dur", Json::num(s.dur_ns as f64 / 1000.0)),
                ("pid", Json::num(pid as f64)),
                ("tid", Json::num(1.0)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
    ])
    .to_string()
}

/// Minimal schema check for an exported trace: top-level object with a
/// `traceEvents` array whose entries all carry string `name`/`cat`,
/// `"ph":"X"`, and numeric `ts`/`dur`/`pid`/`tid`. Returns the event
/// count, or a description of the first violation.
pub fn validate_trace(text: &str) -> Result<usize, String> {
    use crate::json::Json;
    let root = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let Json::Obj(fields) = &root else {
        return Err("top level is not an object".into());
    };
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents")?;
    let Json::Arr(events) = events else {
        return Err("traceEvents is not an array".into());
    };
    for (i, ev) in events.iter().enumerate() {
        let Json::Obj(f) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        let get = |k: &str| f.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        for key in ["name", "cat", "ph"] {
            match get(key) {
                Some(Json::Str(_)) => {}
                _ => return Err(format!("event {i}: missing string field {key:?}")),
            }
        }
        if get("ph") != Some(&Json::Str("X".into())) {
            return Err(format!("event {i}: ph is not \"X\""));
        }
        for key in ["ts", "dur", "pid", "tid"] {
            match get(key) {
                Some(Json::Num(_)) => {}
                _ => return Err(format!("event {i}: missing numeric field {key:?}")),
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_and_validate_roundtrip() {
        let sink = SpanSink::new();
        sink.push(SpanRecord {
            name: "generate",
            cat: "pipeline",
            clock: Clock::Wall,
            start_ns: 10,
            dur_ns: 2000,
        });
        sink.push(SpanRecord {
            name: "session",
            cat: "sim",
            clock: Clock::Virtual,
            start_ns: 0,
            dur_ns: 90_000_000_000,
        });
        let json = chrome_trace_json(&sink.drain_sorted());
        assert_eq!(validate_trace(&json), Ok(2));
    }

    #[test]
    fn drain_sorts_wall_before_virtual() {
        let sink = SpanSink::new();
        sink.push(SpanRecord {
            name: "v",
            cat: "sim",
            clock: Clock::Virtual,
            start_ns: 0,
            dur_ns: 1,
        });
        sink.push(SpanRecord {
            name: "w",
            cat: "pipeline",
            clock: Clock::Wall,
            start_ns: 999,
            dur_ns: 1,
        });
        let spans = sink.drain_sorted();
        assert_eq!(spans[0].name, "w");
        assert_eq!(spans[1].name, "v");
    }

    #[test]
    fn validate_rejects_malformed() {
        assert!(validate_trace("[]").is_err());
        assert!(validate_trace("{\"traceEvents\": [{}]}").is_err());
        assert!(validate_trace("not json").is_err());
    }

    #[test]
    fn wall_now_is_monotone() {
        let a = wall_now_ns();
        let b = wall_now_ns();
        assert!(b >= a);
    }
}
