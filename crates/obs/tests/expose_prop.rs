//! Property tests for the Prometheus exposition renderer: whatever
//! names and values land in the registry — hostile characters,
//! sanitization collisions, non-finite gauges, histogram samples from
//! subnormal to saturating — the rendered document is structurally
//! valid, sample values are finite, cumulative buckets are monotone,
//! and `_count`/`_sum` agree with the source histogram.

use proptest::prelude::*;

use vqd_obs::expose::{render_prometheus, sanitize_name, validate_exposition};
use vqd_obs::{LogHistogram, Registry};

/// Build a metric name from raw bytes: maps into printable ASCII with
/// plenty of characters outside the exposition charset (dots, dashes,
/// spaces, braces, quotes).
fn name_from(bytes: &[u8]) -> String {
    const POOL: &[u8] = b"abcZ019._-:{}\" \\\nun\0";
    bytes
        .iter()
        .map(|&b| POOL[b as usize % POOL.len()] as char)
        .collect()
}

/// Decode one histogram sample from a raw u64: mixes ordinary
/// magnitudes with NaN, infinities, zeros, negatives and saturating
/// extremes.
fn sample_from(raw: u64) -> f64 {
    match raw % 8 {
        0 => f64::NAN,
        1 => -1.0 - (raw >> 3) as f64,
        2 => 0.0,
        3 => 1e-300 * ((raw >> 3) as f64 + 1.0),
        4 => 1e300 * ((raw >> 3) % 17 + 1) as f64,
        _ => ((raw >> 3) % 100_000) as f64 / 7.0 + 1e-3,
    }
}

proptest! {
    /// Sanitized names are always valid exposition names, and
    /// sanitization is idempotent.
    #[test]
    fn sanitize_always_valid(bytes in proptest::collection::vec(any::<u8>(), 0..24)) {
        let name = name_from(&bytes);
        let s = sanitize_name(&name);
        prop_assert!(!s.is_empty());
        let mut chars = s.chars();
        let first = chars.next().unwrap_or('_');
        prop_assert!(first.is_ascii_alphabetic() || first == '_' || first == ':', "{s:?}");
        prop_assert!(
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "{s:?}"
        );
        prop_assert_eq!(sanitize_name(&s), s.clone());
    }

    /// Any registry contents render to a valid exposition document,
    /// and histogram `_count`/`_sum` agree with the `LogHistogram`
    /// that produced them.
    #[test]
    fn exposition_is_always_valid(
        counters in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..16), any::<u64>()), 0..6),
        gauges in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..16), any::<u64>()), 0..6),
        hist_samples in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let r = Registry::new();
        for (bytes, v) in &counters {
            r.counter_add_dyn(&name_from(bytes), v % 1_000_000 + 1);
        }
        for (bytes, raw) in &gauges {
            r.gauge_set_dyn(&name_from(bytes), sample_from(*raw));
        }
        let mut reference = LogHistogram::new();
        for raw in &hist_samples {
            let v = sample_from(*raw);
            r.hist_record("prop.hist", v);
            reference.record(v);
        }
        let snap = r.snapshot();
        let text = render_prometheus(&snap);
        if let Err(e) = validate_exposition(&text) {
            prop_assert!(false, "invalid exposition: {e}\n{text}");
        }
        if !hist_samples.is_empty() {
            let count_line = format!("prop_hist_count {}", reference.count());
            prop_assert!(
                text.lines().any(|l| l == count_line),
                "missing {count_line:?} in:\n{text}"
            );
            let sum = reference.sum();
            let sum = if sum.is_finite() { sum } else { f64::MAX };
            let sum_line = format!("prop_hist_sum {sum:?}");
            prop_assert!(
                text.lines().any(|l| l == sum_line),
                "missing {sum_line:?} in:\n{text}"
            );
            // The cumulative series closes at the positive-sample count.
            let inf_line = format!("prop_hist_bucket{{le=\"+Inf\"}} {}", reference.count());
            prop_assert!(text.lines().any(|l| l == inf_line), "missing +Inf close");
        }
    }
}
