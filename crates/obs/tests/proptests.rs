//! Property-based tests for `vqd-obs`: histogram merges are
//! shard-invariant, counters sum exactly across threads, quantile
//! estimates stay within one sub-bucket of the true order statistic,
//! and the Chrome trace export round-trips through the JSON module.

use proptest::prelude::*;

use vqd_obs::hist::SUBS;
use vqd_obs::json::Json;
use vqd_obs::trace::{chrome_trace_json, validate_trace, Clock, SpanRecord, SpanSink};
use vqd_obs::{LogHistogram, Registry};

const SPAN_NAMES: [&str; 7] = [
    "generate",
    "construct",
    "select",
    "train",
    "diagnose",
    "session",
    "stall",
];

/// Materialise sampled `(name index, virtual?, start, dur)` tuples
/// into spans (the vendored proptest has no `prop_map`).
fn make_spans(raw: &[(usize, u32, u64, u64)]) -> Vec<SpanRecord> {
    raw.iter()
        .map(|&(name, virt, start_ns, dur_ns)| SpanRecord {
            name: SPAN_NAMES[name],
            cat: if virt == 1 { "sim" } else { "pipeline" },
            clock: if virt == 1 {
                Clock::Virtual
            } else {
                Clock::Wall
            },
            start_ns,
            dur_ns,
        })
        .collect()
}

/// Deterministic Fisher–Yates permutation of `0..n` from a seed.
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((u128::from(seed >> 16) * (i as u128 + 1)) >> 48) as usize;
        p.swap(i, j);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any partition of a sample stream across shards, merged in any
    /// order, equals the histogram of the sequential stream: same
    /// count, extrema and quantiles.
    #[test]
    fn hist_merge_is_shard_invariant(
        vals in prop::collection::vec(1e-6f64..1e12, 1..200),
        assign in prop::collection::vec(0usize..4, 1..200),
        perm_seed in any::<u64>(),
    ) {
        let mut all = LogHistogram::new();
        for &v in &vals {
            all.record(v);
        }
        let mut shards = vec![LogHistogram::new(); 4];
        for (i, &v) in vals.iter().enumerate() {
            shards[assign[i % assign.len()]].record(v);
        }
        let mut merged = LogHistogram::new();
        for s in permutation(4, perm_seed) {
            merged.merge(&shards[s]);
        }
        prop_assert_eq!(merged.count(), all.count());
        prop_assert_eq!(merged.min(), all.min());
        prop_assert_eq!(merged.max(), all.max());
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), all.quantile(q));
        }
        prop_assert!((merged.sum() - all.sum()).abs() <= all.sum().abs() * 1e-9);
    }

    /// Counter adds spread across threads sum exactly — no lost
    /// updates, no double counts, whatever the sharding.
    #[test]
    fn counter_shards_sum_exactly(adds in prop::collection::vec(0u64..1_000_000, 1..64)) {
        let r = std::sync::Arc::new(Registry::new());
        let expected: u64 = adds.iter().sum();
        std::thread::scope(|s| {
            for chunk in adds.chunks(8) {
                let r = std::sync::Arc::clone(&r);
                let chunk = chunk.to_vec();
                s.spawn(move || {
                    for n in chunk {
                        r.counter_add("p.c", n);
                    }
                });
            }
        });
        prop_assert_eq!(r.snapshot().counter("p.c"), expected);
    }

    /// A quantile estimate is bounded below by the true order
    /// statistic and above by one sub-bucket width (factor
    /// `1 + 1/SUBS`) over it.
    #[test]
    fn quantile_error_is_bounded(
        vals in prop::collection::vec(1e-6f64..1e12, 1..300),
        q_raw in 0.0f64..1.0,
    ) {
        let mut vals = vals;
        let mut h = LogHistogram::new();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_by(f64::total_cmp);
        for q in [0.0, q_raw, 1.0] {
            let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let truth = vals[rank - 1];
            let est = h.quantile(q);
            prop_assert!(est >= truth, "estimate {est} below true order statistic {truth}");
            let bound = truth * (1.0 + 1.0 / SUBS as f64) * (1.0 + 1e-12);
            prop_assert!(est <= bound, "estimate {est} above bucket bound {bound} (truth {truth})");
        }
    }

    /// The Chrome export parses with the in-crate JSON module, passes
    /// the schema check with one event per span, re-serialises
    /// byte-identically, and preserves every span's fields in
    /// deterministic drain order.
    #[test]
    fn trace_export_roundtrip(
        raw in prop::collection::vec(
            (0usize..7, 0u32..2, 0u64..(1u64 << 50), 0u64..1_000_000_000_000u64),
            0..40,
        ),
    ) {
        let spans = make_spans(&raw);
        let sink = SpanSink::new();
        for s in &spans {
            sink.push(s.clone());
        }
        let sorted = sink.drain_sorted();
        let text = chrome_trace_json(&sorted);
        prop_assert_eq!(validate_trace(&text), Ok(spans.len()));

        let root = match Json::parse(&text) {
            Ok(v) => v,
            Err(e) => return Err(TestCaseError::fail(format!("export did not parse: {e}"))),
        };
        prop_assert_eq!(root.to_string(), text);

        let events = root
            .get("traceEvents")
            .and_then(Json::as_arr)
            .map(<[Json]>::to_vec)
            .unwrap_or_default();
        prop_assert_eq!(events.len(), sorted.len());
        for (ev, sp) in events.iter().zip(&sorted) {
            prop_assert_eq!(ev.get("name").and_then(Json::as_str), Some(sp.name));
            prop_assert_eq!(ev.get("cat").and_then(Json::as_str), Some(sp.cat));
            let ts = ev.get("ts").and_then(Json::as_f64).unwrap_or(f64::NAN);
            let dur = ev.get("dur").and_then(Json::as_f64).unwrap_or(f64::NAN);
            prop_assert_eq!(ts.to_bits(), (sp.start_ns as f64 / 1000.0).to_bits());
            prop_assert_eq!(dur.to_bits(), (sp.dur_ns as f64 / 1000.0).to_bits());
            let pid = ev.get("pid").and_then(Json::as_f64);
            match sp.clock {
                Clock::Wall => prop_assert_eq!(pid, Some(1.0)),
                Clock::Virtual => prop_assert_eq!(pid, Some(2.0)),
            }
        }
    }
}
