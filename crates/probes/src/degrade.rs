//! Probe-degradation fault injection.
//!
//! The paper's real-world results (§6.1–6.2) depend on a lab-trained
//! model surviving *degraded telemetry*: vantage points that were never
//! deployed, probes that crashed mid-session, uninstrumented CDN
//! servers, routers removed entirely for 3G sessions, and the routine
//! sensor noise of production fleets. A [`DegradePlan`] reproduces
//! those failure modes deterministically on top of a collected probe
//! view — the flattened `(name, value)` metric vector a
//! [`VpData`](crate::vantage::VpData) emits — so the diagnosis
//! pipeline can be evaluated under controlled, reproducible telemetry
//! loss (the `robustness` sweep in `vqd-core`).
//!
//! Degradation is a pure function of `(plan, run_index, metrics)`:
//! each run derives its own RNG stream from the plan seed and the run
//! index, so a degraded corpus is byte-identical across runs and
//! worker-thread counts, and sweeping intensities re-draws nothing
//! from neighbouring cells.

use vqd_simnet::rng::SimRng;

/// One probe-failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradeKind {
    /// Whole-VP dropout: the probe crashed (or was never deployed) —
    /// every metric of the affected vantage points disappears. The
    /// paper's partial-deployment scenario (§6.2) and the removed
    /// router probe of 3G sessions.
    VpDropout,
    /// Per-group metric loss: one instrument of a probe failed — the
    /// `hw`, `nic`, `phy` or `tstat` group of a vantage point is
    /// absent (e.g. a server without radio counters, a router whose
    /// packet tap broke but whose SNMP counters survive).
    GroupLoss,
    /// Sample truncation: the probe died a fraction of the way into
    /// the session — cumulative counters stop early (scaled down)
    /// while per-sample aggregates keep their value.
    Truncation,
    /// Value corruption: individual readings come back NaN (failed
    /// sensor read), zeroed (reset counter) or attenuated/clipped
    /// (saturated ADC, mis-scaled unit).
    Corruption,
    /// Clock skew: the probe's clock runs fast or slow, multiplying
    /// every time-derived metric (RTTs, inter-arrivals, durations,
    /// delays) by a per-VP factor.
    ClockSkew,
}

impl DegradeKind {
    /// Every failure mode, in canonical sweep order.
    pub const ALL: [DegradeKind; 5] = [
        DegradeKind::VpDropout,
        DegradeKind::GroupLoss,
        DegradeKind::Truncation,
        DegradeKind::Corruption,
        DegradeKind::ClockSkew,
    ];

    /// Stable CLI/report name.
    pub fn name(&self) -> &'static str {
        match self {
            DegradeKind::VpDropout => "vp_dropout",
            DegradeKind::GroupLoss => "group_loss",
            DegradeKind::Truncation => "truncation",
            DegradeKind::Corruption => "corruption",
            DegradeKind::ClockSkew => "clock_skew",
        }
    }

    /// Parse a [`DegradeKind::name`] back.
    pub fn from_name(name: &str) -> Option<DegradeKind> {
        DegradeKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    fn salt(&self) -> u64 {
        match self {
            DegradeKind::VpDropout => 0x11,
            DegradeKind::GroupLoss => 0x22,
            DegradeKind::Truncation => 0x33,
            DegradeKind::Corruption => 0x44,
            DegradeKind::ClockSkew => 0x55,
        }
    }

    /// Observability counter key for injections of this mode.
    fn obs_key(&self) -> &'static str {
        match self {
            DegradeKind::VpDropout => "probes.degrade.vp_dropout",
            DegradeKind::GroupLoss => "probes.degrade.group_loss",
            DegradeKind::Truncation => "probes.degrade.truncation",
            DegradeKind::Corruption => "probes.degrade.corruption",
            DegradeKind::ClockSkew => "probes.degrade.clock_skew",
        }
    }
}

/// A deterministic, seeded degradation plan: one failure mode at one
/// intensity, applied per run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradePlan {
    /// Failure mode to inject.
    pub kind: DegradeKind,
    /// Severity in `[0, 1]`: 0 = no-op, 1 = the mode's worst case
    /// (all VPs dropped, every group lost, …). Clamped on use.
    pub intensity: f64,
    /// Root seed of the plan's RNG streams.
    pub seed: u64,
}

/// Instrument group of a metric (`"<vp>.<group>.<metric>"`). NIC role
/// labels ("wan", "lan", "net", "wlan", "nic0", …) all map to `nic`;
/// the packet-tap metrics (`tcp.*`) map to `tstat`.
pub fn group_of(name: &str) -> &'static str {
    match name.split('.').nth(1) {
        Some("tcp") => "tstat",
        Some("hw") => "hw",
        Some("phy") => "phy",
        _ => "nic",
    }
}

/// Vantage-point prefix of a metric name.
pub fn vp_of(name: &str) -> &str {
    name.split('.').next().unwrap_or("")
}

/// Cumulative-counter metrics: they stop accumulating when a probe
/// dies mid-session, so truncation scales them down.
fn is_cumulative(name: &str) -> bool {
    name.ends_with("pkts")
        || name.ends_with("bytes")
        || name.ends_with("pure_acks")
        || name.ends_with("dup_acks")
        || name.ends_with("zero_wnd")
        || name.ends_with("rtt_cnt")
        || name.ends_with("syn_count")
        || name.ends_with("fin_count")
        || name.ends_with("drops")
        || name.ends_with("mac_retx")
        || name.ends_with("disconnections")
        || name.ends_with("disconnected_samples")
}

/// Time-derived metrics: a skewed probe clock scales them.
fn is_time_metric(name: &str) -> bool {
    let metric = name.rsplit('.').next().unwrap_or(name);
    metric.starts_with("rtt_") && !metric.ends_with("cnt")
        || metric.starts_with("iat_")
        || metric == "duration_s"
        || metric == "first_payload_delay"
}

/// The distinct vantage points of a metric vector, in first-appearance
/// order (stable → decisions are reproducible).
fn vps_in(metrics: &[(String, f64)]) -> Vec<String> {
    let mut vps: Vec<String> = Vec::new();
    for (n, _) in metrics {
        let vp = vp_of(n);
        if !vps.iter().any(|v| v == vp) {
            vps.push(vp.to_string());
        }
    }
    vps
}

impl DegradePlan {
    /// A plan for `kind` at `intensity`, seeded.
    pub fn new(kind: DegradeKind, intensity: f64, seed: u64) -> DegradePlan {
        DegradePlan {
            kind,
            intensity,
            seed,
        }
    }

    /// The RNG stream for one run: SplitMix64-style mixing of the plan
    /// seed, the kind and the run index, so every (plan, run) cell is
    /// an independent deterministic stream.
    fn run_rng(&self, run_index: u64) -> SimRng {
        let mut z = self.seed
            ^ self.kind.salt().wrapping_mul(0xD6E8_FEB8_6659_FD93)
            ^ run_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed_from_u64(z)
    }

    /// Degrade one collected probe view. Pure in `(self, run_index,
    /// metrics)`; the input order is preserved for surviving metrics.
    pub fn apply(&self, run_index: u64, metrics: &[(String, f64)]) -> Vec<(String, f64)> {
        let x = self.intensity.clamp(0.0, 1.0);
        if x <= 0.0 || metrics.is_empty() {
            return metrics.to_vec();
        }
        vqd_obs::recorder().counter_add(self.kind.obs_key(), 1);
        let mut rng = self.run_rng(run_index);
        match self.kind {
            DegradeKind::VpDropout => {
                let dead: Vec<String> = vps_in(metrics)
                    .into_iter()
                    .filter(|_| rng.chance(x))
                    .collect();
                metrics
                    .iter()
                    .filter(|(n, _)| !dead.iter().any(|d| d == vp_of(n)))
                    .cloned()
                    .collect()
            }
            DegradeKind::GroupLoss => {
                // Decide per (vp, group) in appearance order.
                let mut seen: Vec<(String, &'static str, bool)> = Vec::new();
                let mut out = Vec::with_capacity(metrics.len());
                for (n, v) in metrics {
                    let vp = vp_of(n);
                    let g = group_of(n);
                    let lost = match seen.iter().find(|(svp, sg, _)| svp == vp && *sg == g) {
                        Some(&(_, _, lost)) => lost,
                        None => {
                            let lost = rng.chance(x);
                            seen.push((vp.to_string(), g, lost));
                            lost
                        }
                    };
                    if !lost {
                        out.push((n.clone(), *v));
                    }
                }
                out
            }
            DegradeKind::Truncation => {
                // Each VP dies at its own observed fraction f: at
                // intensity 0 probes survive the whole session (f = 1),
                // at intensity 1 they may die after 10 % of it.
                let fracs: Vec<(String, f64)> = vps_in(metrics)
                    .into_iter()
                    .map(|vp| {
                        let f = rng.range_f64(1.0 - 0.9 * x, 1.0);
                        (vp, f)
                    })
                    .collect();
                metrics
                    .iter()
                    .map(|(n, v)| {
                        let f = fracs
                            .iter()
                            .find(|(vp, _)| vp == vp_of(n))
                            .map(|(_, f)| *f)
                            .unwrap_or(1.0);
                        let scaled = if is_cumulative(n) || n.ends_with("duration_s") {
                            v * f
                        } else {
                            *v
                        };
                        (n.clone(), scaled)
                    })
                    .collect()
            }
            DegradeKind::Corruption => metrics
                .iter()
                .map(|(n, v)| {
                    if !rng.chance(x) {
                        return (n.clone(), *v);
                    }
                    let corrupted = match rng.index(3) {
                        0 => f64::NAN,  // failed sensor read
                        1 => 0.0,       // reset counter
                        _ => *v * 0.25, // attenuated / clipped-scale reading
                    };
                    (n.clone(), corrupted)
                })
                .collect(),
            DegradeKind::ClockSkew => {
                // Per-VP multiplicative skew, log-normal around 1: at
                // intensity 1 clocks run up to ~2x fast or slow (±1σ).
                let skews: Vec<(String, f64)> = vps_in(metrics)
                    .into_iter()
                    .map(|vp| {
                        let s = (x * rng.normal(0.0, 0.7)).exp();
                        (vp, s)
                    })
                    .collect();
                metrics
                    .iter()
                    .map(|(n, v)| {
                        if is_time_metric(n) {
                            let s = skews
                                .iter()
                                .find(|(vp, _)| vp == vp_of(n))
                                .map(|(_, s)| *s)
                                .unwrap_or(1.0);
                            (n.clone(), v * s)
                        } else {
                            (n.clone(), *v)
                        }
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(String, f64)> {
        vec![
            ("mobile.tcp.s2c.retx_pkts".into(), 40.0),
            ("mobile.tcp.s2c.rtt_avg".into(), 0.08),
            ("mobile.tcp.duration_s".into(), 120.0),
            ("mobile.hw.cpu_avg".into(), 0.4),
            ("mobile.phy.rssi_avg".into(), -62.0),
            ("router.tcp.s2c.retx_pkts".into(), 38.0),
            ("router.wan.tx_util_avg".into(), 0.7),
            ("server.tcp.c2s.iat_avg".into(), 0.01),
            ("server.hw.cpu_avg".into(), 0.1),
        ]
    }

    #[test]
    fn zero_intensity_is_identity() {
        for kind in DegradeKind::ALL {
            let plan = DegradePlan::new(kind, 0.0, 7);
            assert_eq!(plan.apply(0, &sample()), sample(), "{}", kind.name());
        }
    }

    #[test]
    fn full_vp_dropout_silences_everything() {
        let plan = DegradePlan::new(DegradeKind::VpDropout, 1.0, 7);
        assert!(plan.apply(3, &sample()).is_empty());
    }

    #[test]
    fn partial_dropout_removes_whole_vps() {
        let plan = DegradePlan::new(DegradeKind::VpDropout, 0.5, 11);
        // Across many runs, each surviving metric set is a union of
        // complete VPs.
        let mut ever_dropped = false;
        for run in 0..40 {
            let out = plan.apply(run, &sample());
            let out_vps = vps_in(&out);
            for vp in ["mobile", "router", "server"] {
                let n_in = sample().iter().filter(|(n, _)| vp_of(n) == vp).count();
                let n_out = out.iter().filter(|(n, _)| vp_of(n) == vp).count();
                assert!(
                    n_out == 0 || n_out == n_in,
                    "run {run}: {vp} partially dropped ({n_out}/{n_in})"
                );
            }
            if out_vps.len() < 3 {
                ever_dropped = true;
            }
        }
        assert!(ever_dropped, "intensity 0.5 never dropped a VP in 40 runs");
    }

    #[test]
    fn group_loss_removes_whole_groups() {
        let plan = DegradePlan::new(DegradeKind::GroupLoss, 0.6, 13);
        for run in 0..40 {
            let out = plan.apply(run, &sample());
            for (vp, g) in [("mobile", "tstat"), ("mobile", "hw"), ("router", "nic")] {
                let n_in = sample()
                    .iter()
                    .filter(|(n, _)| vp_of(n) == vp && group_of(n) == g)
                    .count();
                let n_out = out
                    .iter()
                    .filter(|(n, _)| vp_of(n) == vp && group_of(n) == g)
                    .count();
                assert!(
                    n_out == 0 || n_out == n_in,
                    "run {run}: {vp}.{g} partially lost"
                );
            }
        }
    }

    #[test]
    fn truncation_scales_counters_not_aggregates() {
        let plan = DegradePlan::new(DegradeKind::Truncation, 1.0, 17);
        let out = plan.apply(5, &sample());
        let get = |m: &[(String, f64)], name: &str| {
            m.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap()
        };
        let f = get(&out, "mobile.tcp.duration_s") / 120.0;
        assert!((0.1..1.0).contains(&f), "fraction {f}");
        assert!((get(&out, "mobile.tcp.s2c.retx_pkts") - 40.0 * f).abs() < 1e-9);
        // Per-sample aggregates survive unscaled.
        assert_eq!(get(&out, "mobile.hw.cpu_avg"), 0.4);
        assert_eq!(get(&out, "mobile.tcp.s2c.rtt_avg"), 0.08);
        assert_eq!(get(&out, "mobile.phy.rssi_avg"), -62.0);
    }

    #[test]
    fn clock_skew_touches_only_time_metrics() {
        let plan = DegradePlan::new(DegradeKind::ClockSkew, 1.0, 19);
        let out = plan.apply(2, &sample());
        for ((n, before), (_, after)) in sample().iter().zip(&out) {
            if is_time_metric(n) {
                assert!(*after > 0.0);
            } else {
                assert_eq!(before, after, "{n} must be untouched");
            }
        }
        // Same VP, same skew factor.
        let rtt = out.iter().find(|(n, _)| n.ends_with("rtt_avg")).unwrap().1;
        let dur = out
            .iter()
            .find(|(n, _)| n.ends_with("duration_s"))
            .unwrap()
            .1;
        assert!(((rtt / 0.08) - (dur / 120.0)).abs() < 1e-9);
    }

    #[test]
    fn corruption_rate_tracks_intensity() {
        let plan = DegradePlan::new(DegradeKind::Corruption, 0.4, 23);
        let mut changed = 0usize;
        let mut total = 0usize;
        for run in 0..200 {
            let out = plan.apply(run, &sample());
            for ((n, before), (_, after)) in sample().iter().zip(&out) {
                total += 1;
                if after.is_nan() || (before != after) {
                    changed += 1;
                }
                let _ = n;
            }
        }
        let rate = changed as f64 / total as f64;
        assert!((0.25..0.55).contains(&rate), "rate {rate}");
    }

    #[test]
    fn deterministic_per_run_index() {
        for kind in DegradeKind::ALL {
            let plan = DegradePlan::new(kind, 0.7, 31);
            let a = plan.apply(9, &sample());
            let b = plan.apply(9, &sample());
            let fp = |m: &[(String, f64)]| -> Vec<(String, u64)> {
                m.iter().map(|(n, v)| (n.clone(), v.to_bits())).collect()
            };
            assert_eq!(fp(&a), fp(&b), "{}", kind.name());
            // And different run indices draw different streams (for
            // kinds that draw per-metric or per-VP randomness).
            let c = plan.apply(10, &sample());
            let _ = c;
        }
    }

    #[test]
    fn group_taxonomy() {
        assert_eq!(group_of("mobile.tcp.s2c.retx_pkts"), "tstat");
        assert_eq!(group_of("mobile.hw.cpu_avg"), "hw");
        assert_eq!(group_of("mobile.phy.rssi_avg"), "phy");
        assert_eq!(group_of("router.wan.tx_util_avg"), "nic");
        assert_eq!(group_of("mobile.net.tx_bps_avg"), "nic");
        assert_eq!(
            DegradeKind::from_name("clock_skew"),
            Some(DegradeKind::ClockSkew)
        );
        assert_eq!(DegradeKind::from_name("nope"), None);
    }
}
