//! Probe event lines: the wire format of the streaming serving path.
//!
//! A deployed probe does not hand the operator a finished session
//! vector — it emits *events*, one reading at a time, and the serving
//! daemon (`vqd serve`, `vqd_core::stream`) reassembles sessions from
//! whatever arrives. Events travel as JSONL, one object per line:
//!
//! ```text
//! {"session":"42","seq":0,"metric":"mobile.phy.rssi_avg","value":-62.25}
//! {"session":"42","seq":1,"metric":"mobile.hw.cpu_avg","value":null,"ts":12.5}
//! {"session":"42","end":280}
//! ```
//!
//! * `session` — opaque session id; all events of one session carry it.
//! * `seq` — the **canonical position** of a sample within its
//!   session, assigned at the source. Reassembly sorts by `seq`, so a
//!   session's rebuilt metric vector — and therefore its diagnosis —
//!   is invariant under arbitrary re-ordering and duplication of its
//!   events in transit (duplicate `seq`s are idempotently dropped).
//! * `value` — the reading. JSON has no NaN/∞, so a missing reading
//!   (`NaN`) is written as `null` and infinities as the strings
//!   `"inf"` / `"-inf"`; finite values round-trip bit-exactly.
//! * `ts` — optional event time in seconds, used by the daemon's
//!   watermarks; events without it never advance or expire anything.
//! * `end` — the session's sample count as emitted by the source. A
//!   session is *complete* once its `end` event and all `seq`s it
//!   promises have arrived, in any order.
//!
//! Parsing is total: any malformed line yields a typed
//! [`EventParseError`] naming the offending field — never a panic —
//! so one corrupt line degrades one event, not the daemon.

use std::fmt;

use vqd_obs::json::Json;

/// Longest event line the parser accepts, in bytes. Real event lines
/// are well under a kilobyte; the cap exists so one adversarial
/// multi-gigabyte line is a typed per-line error instead of an
/// allocation that can take the daemon down. Ingest front ends bound
/// their read buffers to the same value.
pub const MAX_EVENT_LINE: usize = 64 * 1024;

/// What one event line carries.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// One metric reading at canonical position `seq`.
    Sample {
        /// Canonical position of this sample within its session.
        seq: u64,
        /// Metric name (VP-prefixed, e.g. `"mobile.phy.rssi_avg"`).
        metric: String,
        /// The reading (NaN = present-but-missing, as in corpora).
        value: f64,
    },
    /// End-of-session marker: the source emitted `expected` samples.
    End {
        /// Total samples the session's probes emitted (seqs
        /// `0..expected`).
        expected: u64,
    },
}

/// One parsed probe event.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeEvent {
    /// Session id this event belongs to.
    pub session: String,
    /// Optional event time (seconds) for watermarking.
    pub ts: Option<f64>,
    /// Sample or end marker.
    pub kind: EventKind,
}

/// A malformed event line, naming the field that failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventParseError {
    /// The JSON field (or `"line"` for non-JSON input) at fault.
    pub field: &'static str,
    /// What went wrong.
    pub msg: String,
}

impl EventParseError {
    fn new(field: &'static str, msg: impl Into<String>) -> Self {
        EventParseError {
            field,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for EventParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad event field {:?}: {}", self.field, self.msg)
    }
}

impl std::error::Error for EventParseError {}

/// Decode a metric value: number, `null` (→ NaN) or an infinity
/// string.
fn value_of(v: &Json) -> Result<f64, EventParseError> {
    match v {
        Json::Num(x) => Ok(*x),
        Json::Null => Ok(f64::NAN),
        Json::Str(s) => match s.as_str() {
            "inf" | "+inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" | "NaN" => Ok(f64::NAN),
            other => Err(EventParseError::new(
                "value",
                format!("expected a number, null, \"inf\" or \"-inf\", got {other:?}"),
            )),
        },
        other => Err(EventParseError::new(
            "value",
            format!("expected a number, got {other}"),
        )),
    }
}

/// Encode a metric value the way [`value_of`] decodes it. Finite
/// values use `{:?}` round-trip formatting (bit-exact, `-0.0`
/// preserved), NaN becomes `null`, infinities become strings.
fn value_json_into(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else if v.is_nan() {
        out.push_str("null");
    } else if v > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

/// Append `s` as a quoted JSON string, escaping exactly like the
/// `Json` writer does. Plain runs (no quote, backslash or control
/// byte — the overwhelmingly common case for session ids and metric
/// names) are copied in one `push_str` instead of char by char.
fn json_str_into(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    let bytes = s.as_bytes();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'"' || b == b'\\' || b < 0x20 {
            out.push_str(&s[start..i]);
            match b {
                b'"' => out.push_str("\\\""),
                b'\\' => out.push_str("\\\\"),
                b'\n' => out.push_str("\\n"),
                b'\r' => out.push_str("\\r"),
                b'\t' => out.push_str("\\t"),
                _ => {
                    let _ = write!(out, "\\u{:04x}", b as u32);
                }
            }
            i += 1;
            start = i;
        } else {
            i += 1;
        }
    }
    out.push_str(&s[start..]);
    out.push('"');
}

fn u64_field(obj: &Json, field: &'static str) -> Result<u64, EventParseError> {
    let v = obj
        .get(field)
        .and_then(Json::as_f64)
        .ok_or_else(|| EventParseError::new(field, "missing or non-numeric"))?;
    if v < 0.0 || v.fract() != 0.0 || v > u64::MAX as f64 {
        return Err(EventParseError::new(
            field,
            format!("{v:?} is not a non-negative integer"),
        ));
    }
    Ok(v as u64)
}

impl ProbeEvent {
    /// A sample event.
    pub fn sample(
        session: impl Into<String>,
        seq: u64,
        metric: impl Into<String>,
        value: f64,
    ) -> Self {
        ProbeEvent {
            session: session.into(),
            ts: None,
            kind: EventKind::Sample {
                seq,
                metric: metric.into(),
                value,
            },
        }
    }

    /// An end-of-session marker.
    pub fn end(session: impl Into<String>, expected: u64) -> Self {
        ProbeEvent {
            session: session.into(),
            ts: None,
            kind: EventKind::End { expected },
        }
    }

    /// Attach an event timestamp (seconds).
    pub fn at(mut self, ts: f64) -> Self {
        self.ts = Some(ts);
        self
    }

    /// Parse one JSONL event line. Total: every failure is a typed
    /// [`EventParseError`]; nothing panics, whatever the input.
    pub fn parse(line: &str) -> Result<ProbeEvent, EventParseError> {
        if line.len() > MAX_EVENT_LINE {
            return Err(EventParseError::new(
                "line",
                format!(
                    "{} bytes exceeds the {MAX_EVENT_LINE}-byte event line cap",
                    line.len()
                ),
            ));
        }
        let obj = Json::parse(line)
            .map_err(|e| EventParseError::new("line", format!("not a JSON object: {e}")))?;
        if !matches!(obj, Json::Obj(_)) {
            return Err(EventParseError::new("line", "not a JSON object"));
        }
        let session = obj
            .get("session")
            .and_then(Json::as_str)
            .ok_or_else(|| EventParseError::new("session", "missing or not a string"))?;
        if session.is_empty() {
            return Err(EventParseError::new("session", "must not be empty"));
        }
        let ts = match obj.get("ts") {
            None => None,
            Some(v) => {
                let t = v.as_f64().ok_or_else(|| {
                    EventParseError::new("ts", format!("expected a number, got {v}"))
                })?;
                if !t.is_finite() {
                    return Err(EventParseError::new("ts", "must be finite"));
                }
                Some(t)
            }
        };
        let kind = if obj.get("end").is_some() {
            EventKind::End {
                expected: u64_field(&obj, "end")?,
            }
        } else {
            let metric = obj
                .get("metric")
                .and_then(Json::as_str)
                .ok_or_else(|| EventParseError::new("metric", "missing or not a string"))?;
            if metric.is_empty() {
                return Err(EventParseError::new("metric", "must not be empty"));
            }
            let value = value_of(
                obj.get("value")
                    .ok_or_else(|| EventParseError::new("value", "missing"))?,
            )?;
            EventKind::Sample {
                seq: u64_field(&obj, "seq")?,
                metric: metric.to_string(),
                value,
            }
        };
        Ok(ProbeEvent {
            session: session.to_string(),
            ts,
            kind,
        })
    }

    /// Serialise to one JSONL line (no trailing newline) that
    /// [`ProbeEvent::parse`] recovers exactly.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        self.to_jsonl_into(&mut out);
        out
    }

    /// Append the JSONL form to `out` without allocating. The journal
    /// hot path serialises every accepted event; a reused buffer here
    /// keeps that per-event cost to formatting alone.
    pub fn to_jsonl_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push_str("{\"session\":");
        json_str_into(out, &self.session);
        match &self.kind {
            EventKind::Sample { seq, metric, value } => {
                out.push_str(",\"seq\":");
                let _ = write!(out, "{seq}");
                out.push_str(",\"metric\":");
                json_str_into(out, metric);
                out.push_str(",\"value\":");
                value_json_into(out, *value);
            }
            EventKind::End { expected } => {
                out.push_str(",\"end\":");
                let _ = write!(out, "{expected}");
            }
        }
        if let Some(t) = self.ts {
            let _ = write!(out, ",\"ts\":{t:?}");
        }
        out.push('}');
    }

    /// Append the compact binary journal encoding to `out`. Floats are
    /// raw IEEE-754 bits, so encoding costs a few stores instead of a
    /// shortest-round-trip float format, and decoding needs no JSON
    /// parse — this is what makes write-ahead journaling nearly free
    /// on the ingest hot path. [`ProbeEvent::from_journal_bytes`]
    /// reverses it bit-exactly.
    pub fn to_journal_bytes_into(&self, out: &mut Vec<u8>) {
        let mut flags = 0u8;
        if matches!(self.kind, EventKind::End { .. }) {
            flags |= 0x01;
        }
        if self.ts.is_some() {
            flags |= 0x02;
        }
        out.push(BINARY_EVENT_TAG);
        out.push(flags);
        out.extend_from_slice(&(self.session.len() as u32).to_le_bytes());
        out.extend_from_slice(self.session.as_bytes());
        match &self.kind {
            EventKind::Sample { seq, metric, value } => {
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(metric.len() as u32).to_le_bytes());
                out.extend_from_slice(metric.as_bytes());
                out.extend_from_slice(&value.to_bits().to_le_bytes());
            }
            EventKind::End { expected } => {
                out.extend_from_slice(&expected.to_le_bytes());
            }
        }
        if let Some(t) = self.ts {
            out.extend_from_slice(&t.to_bits().to_le_bytes());
        }
    }

    /// Decode one journal record payload: the binary form written by
    /// [`to_journal_bytes_into`](ProbeEvent::to_journal_bytes_into),
    /// or — for tooling that feeds event lines straight into a
    /// journal — a plain JSONL line (they always start with `{`).
    pub fn from_journal_bytes(bytes: &[u8]) -> Result<ProbeEvent, EventParseError> {
        match bytes.first() {
            Some(&BINARY_EVENT_TAG) => Self::from_binary(&bytes[1..]),
            Some(b'{') => {
                let line = std::str::from_utf8(bytes)
                    .map_err(|e| EventParseError::new("record", format!("not UTF-8: {e}")))?;
                Self::parse(line)
            }
            Some(other) => Err(EventParseError::new(
                "record",
                format!("unknown journal record tag {other:#04x}"),
            )),
            None => Err(EventParseError::new("record", "empty journal record")),
        }
    }

    fn from_binary(rest: &[u8]) -> Result<ProbeEvent, EventParseError> {
        let mut cur = BinCursor { rest };
        let flags = cur.u8()?;
        if flags & !0x03 != 0 {
            return Err(EventParseError::new(
                "record",
                format!("unknown flag bits {flags:#04x}"),
            ));
        }
        let session = cur.string("session")?;
        let kind = if flags & 0x01 == 0 {
            let seq = cur.u64("seq")?;
            let metric = cur.string("metric")?;
            let value = f64::from_bits(cur.u64("value")?);
            EventKind::Sample { seq, metric, value }
        } else {
            EventKind::End {
                expected: cur.u64("end")?,
            }
        };
        let ts = if flags & 0x02 != 0 {
            Some(f64::from_bits(cur.u64("ts")?))
        } else {
            None
        };
        if !cur.rest.is_empty() {
            return Err(EventParseError::new(
                "record",
                format!("{} trailing byte(s) after event", cur.rest.len()),
            ));
        }
        Ok(ProbeEvent { session, ts, kind })
    }
}

/// First byte of every binary-encoded journal record; distinct from
/// `{` so JSONL payloads remain decodable alongside binary ones.
pub const BINARY_EVENT_TAG: u8 = 0x01;

/// Bounds-checked little-endian reader for the binary event codec.
struct BinCursor<'a> {
    rest: &'a [u8],
}

impl BinCursor<'_> {
    fn take(&mut self, n: usize, field: &'static str) -> Result<&[u8], EventParseError> {
        if self.rest.len() < n {
            return Err(EventParseError::new(field, "record truncated"));
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, EventParseError> {
        Ok(self.take(1, "record")?[0])
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, EventParseError> {
        let b = self.take(8, field)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn string(&mut self, field: &'static str) -> Result<String, EventParseError> {
        let b = self.take(4, field)?;
        let mut raw = [0u8; 4];
        raw.copy_from_slice(b);
        let len = u32::from_le_bytes(raw) as usize;
        let bytes = self.take(len, field)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| EventParseError::new(field, format!("not UTF-8: {e}")))
    }
}

impl fmt::Display for ProbeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_round_trips_bit_exactly() {
        for v in [
            -62.25,
            0.0,
            -0.0,
            1.0e300,
            6.25e-7,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.12345678901234567,
        ] {
            let ev = ProbeEvent::sample("s1", 7, "mobile.phy.rssi_avg", v).at(3.5);
            let back = ProbeEvent::parse(&ev.to_jsonl()).unwrap();
            assert_eq!(back.session, "s1");
            assert_eq!(back.ts, Some(3.5));
            match back.kind {
                EventKind::Sample { seq, metric, value } => {
                    assert_eq!(seq, 7);
                    assert_eq!(metric, "mobile.phy.rssi_avg");
                    if v.is_nan() {
                        assert!(value.is_nan());
                    } else {
                        assert_eq!(value.to_bits(), v.to_bits(), "value {v:?}");
                    }
                }
                k => panic!("wrong kind {k:?}"),
            }
        }
    }

    #[test]
    fn end_round_trips() {
        let ev = ProbeEvent::end("42", 280);
        let back = ProbeEvent::parse(&ev.to_jsonl()).unwrap();
        assert_eq!(back, ev);
        assert!(back.ts.is_none());
    }

    #[test]
    fn escaped_session_ids_round_trip() {
        let ev = ProbeEvent::sample("tab\there \"q\"", 0, "m.x", 1.0);
        let back = ProbeEvent::parse(&ev.to_jsonl()).unwrap();
        assert_eq!(back.session, "tab\there \"q\"");
    }

    #[test]
    fn malformed_lines_yield_typed_errors() {
        let cases = [
            ("", "line"),
            ("not json", "line"),
            ("[1,2]", "line"),
            ("{\"seq\":1}", "session"),
            ("{\"session\":\"\"}", "session"),
            ("{\"session\":\"s\"}", "metric"),
            ("{\"session\":\"s\",\"metric\":\"m\"}", "value"),
            (
                "{\"session\":\"s\",\"metric\":\"m\",\"value\":\"x\"}",
                "value",
            ),
            (
                "{\"session\":\"s\",\"metric\":\"m\",\"value\":1,\"seq\":-1}",
                "seq",
            ),
            (
                "{\"session\":\"s\",\"metric\":\"m\",\"value\":1,\"seq\":1.5}",
                "seq",
            ),
            ("{\"session\":\"s\",\"end\":\"x\"}", "end"),
            (
                "{\"session\":\"s\",\"seq\":0,\"metric\":\"m\",\"value\":1,\"ts\":\"x\"}",
                "ts",
            ),
        ];
        for (line, field) in cases {
            let err = ProbeEvent::parse(line).unwrap_err();
            assert_eq!(err.field, field, "line {line:?} -> {err}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn truncated_line_is_an_error_not_a_panic() {
        let full = ProbeEvent::sample("s", 3, "mobile.hw.cpu_avg", 0.5).to_jsonl();
        for cut in 0..full.len() {
            let _ = ProbeEvent::parse(&full[..cut]);
        }
    }

    fn binary_roundtrip(ev: &ProbeEvent) -> ProbeEvent {
        let mut buf = Vec::new();
        ev.to_journal_bytes_into(&mut buf);
        ProbeEvent::from_journal_bytes(&buf).unwrap()
    }

    #[test]
    fn binary_codec_round_trips_bit_exactly() {
        for v in [
            -62.25,
            0.0,
            -0.0,
            1.0e300,
            f64::NAN,
            f64::from_bits(0x7ff8_0000_0000_beef), // NaN payload survives
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let ev = ProbeEvent::sample("sés\t\"on", 7, "mobile.phy.rssi_avg", v).at(3.5);
            let back = binary_roundtrip(&ev);
            assert_eq!(back.session, ev.session);
            assert_eq!(back.ts.map(f64::to_bits), ev.ts.map(f64::to_bits));
            match (back.kind, &ev.kind) {
                (
                    EventKind::Sample { seq, metric, value },
                    EventKind::Sample {
                        seq: s0,
                        metric: m0,
                        value: v0,
                    },
                ) => {
                    assert_eq!(seq, *s0);
                    assert_eq!(&metric, m0);
                    assert_eq!(value.to_bits(), v0.to_bits());
                }
                other => panic!("kind changed: {other:?}"),
            }
        }
        let end = ProbeEvent::end("s9", 42);
        let back = binary_roundtrip(&end);
        assert_eq!(back.session, "s9");
        assert_eq!(back.ts, None);
        assert!(matches!(back.kind, EventKind::End { expected: 42 }));
    }

    #[test]
    fn journal_decode_accepts_jsonl_payloads() {
        let ev = ProbeEvent::sample("s1", 2, "net.tcp.rtt_avg", 18.5).at(1.25);
        let back = ProbeEvent::from_journal_bytes(ev.to_jsonl().as_bytes()).unwrap();
        assert_eq!(back.to_jsonl(), ev.to_jsonl());
    }

    #[test]
    fn journal_decode_rejects_garbage() {
        assert!(ProbeEvent::from_journal_bytes(b"").is_err());
        assert!(ProbeEvent::from_journal_bytes(&[0x7f, 1, 2]).is_err());
        let mut buf = Vec::new();
        ProbeEvent::sample("s", 1, "m", 2.0).to_journal_bytes_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(
                ProbeEvent::from_journal_bytes(&buf[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        buf.push(0);
        assert!(ProbeEvent::from_journal_bytes(&buf).is_err());
    }
}
