//! Probe event lines: the wire format of the streaming serving path.
//!
//! A deployed probe does not hand the operator a finished session
//! vector — it emits *events*, one reading at a time, and the serving
//! daemon (`vqd serve`, `vqd_core::stream`) reassembles sessions from
//! whatever arrives. Events travel as JSONL, one object per line:
//!
//! ```text
//! {"session":"42","seq":0,"metric":"mobile.phy.rssi_avg","value":-62.25}
//! {"session":"42","seq":1,"metric":"mobile.hw.cpu_avg","value":null,"ts":12.5}
//! {"session":"42","end":280}
//! ```
//!
//! * `session` — opaque session id; all events of one session carry it.
//! * `seq` — the **canonical position** of a sample within its
//!   session, assigned at the source. Reassembly sorts by `seq`, so a
//!   session's rebuilt metric vector — and therefore its diagnosis —
//!   is invariant under arbitrary re-ordering and duplication of its
//!   events in transit (duplicate `seq`s are idempotently dropped).
//! * `value` — the reading. JSON has no NaN/∞, so a missing reading
//!   (`NaN`) is written as `null` and infinities as the strings
//!   `"inf"` / `"-inf"`; finite values round-trip bit-exactly.
//! * `ts` — optional event time in seconds, used by the daemon's
//!   watermarks; events without it never advance or expire anything.
//! * `end` — the session's sample count as emitted by the source. A
//!   session is *complete* once its `end` event and all `seq`s it
//!   promises have arrived, in any order.
//!
//! Parsing is total: any malformed line yields a typed
//! [`EventParseError`] naming the offending field — never a panic —
//! so one corrupt line degrades one event, not the daemon.

use std::fmt;

use vqd_obs::json::Json;

/// What one event line carries.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// One metric reading at canonical position `seq`.
    Sample {
        /// Canonical position of this sample within its session.
        seq: u64,
        /// Metric name (VP-prefixed, e.g. `"mobile.phy.rssi_avg"`).
        metric: String,
        /// The reading (NaN = present-but-missing, as in corpora).
        value: f64,
    },
    /// End-of-session marker: the source emitted `expected` samples.
    End {
        /// Total samples the session's probes emitted (seqs
        /// `0..expected`).
        expected: u64,
    },
}

/// One parsed probe event.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeEvent {
    /// Session id this event belongs to.
    pub session: String,
    /// Optional event time (seconds) for watermarking.
    pub ts: Option<f64>,
    /// Sample or end marker.
    pub kind: EventKind,
}

/// A malformed event line, naming the field that failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventParseError {
    /// The JSON field (or `"line"` for non-JSON input) at fault.
    pub field: &'static str,
    /// What went wrong.
    pub msg: String,
}

impl EventParseError {
    fn new(field: &'static str, msg: impl Into<String>) -> Self {
        EventParseError {
            field,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for EventParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad event field {:?}: {}", self.field, self.msg)
    }
}

impl std::error::Error for EventParseError {}

/// Decode a metric value: number, `null` (→ NaN) or an infinity
/// string.
fn value_of(v: &Json) -> Result<f64, EventParseError> {
    match v {
        Json::Num(x) => Ok(*x),
        Json::Null => Ok(f64::NAN),
        Json::Str(s) => match s.as_str() {
            "inf" | "+inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" | "NaN" => Ok(f64::NAN),
            other => Err(EventParseError::new(
                "value",
                format!("expected a number, null, \"inf\" or \"-inf\", got {other:?}"),
            )),
        },
        other => Err(EventParseError::new(
            "value",
            format!("expected a number, got {other}"),
        )),
    }
}

/// Encode a metric value the way [`value_of`] decodes it. Finite
/// values use `{:?}` round-trip formatting (bit-exact, `-0.0`
/// preserved), NaN becomes `null`, infinities become strings.
fn value_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else if v.is_nan() {
        "null".to_string()
    } else if v > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

fn u64_field(obj: &Json, field: &'static str) -> Result<u64, EventParseError> {
    let v = obj
        .get(field)
        .and_then(Json::as_f64)
        .ok_or_else(|| EventParseError::new(field, "missing or non-numeric"))?;
    if v < 0.0 || v.fract() != 0.0 || v > u64::MAX as f64 {
        return Err(EventParseError::new(
            field,
            format!("{v:?} is not a non-negative integer"),
        ));
    }
    Ok(v as u64)
}

impl ProbeEvent {
    /// A sample event.
    pub fn sample(
        session: impl Into<String>,
        seq: u64,
        metric: impl Into<String>,
        value: f64,
    ) -> Self {
        ProbeEvent {
            session: session.into(),
            ts: None,
            kind: EventKind::Sample {
                seq,
                metric: metric.into(),
                value,
            },
        }
    }

    /// An end-of-session marker.
    pub fn end(session: impl Into<String>, expected: u64) -> Self {
        ProbeEvent {
            session: session.into(),
            ts: None,
            kind: EventKind::End { expected },
        }
    }

    /// Attach an event timestamp (seconds).
    pub fn at(mut self, ts: f64) -> Self {
        self.ts = Some(ts);
        self
    }

    /// Parse one JSONL event line. Total: every failure is a typed
    /// [`EventParseError`]; nothing panics, whatever the input.
    pub fn parse(line: &str) -> Result<ProbeEvent, EventParseError> {
        let obj = Json::parse(line)
            .map_err(|e| EventParseError::new("line", format!("not a JSON object: {e}")))?;
        if !matches!(obj, Json::Obj(_)) {
            return Err(EventParseError::new("line", "not a JSON object"));
        }
        let session = obj
            .get("session")
            .and_then(Json::as_str)
            .ok_or_else(|| EventParseError::new("session", "missing or not a string"))?;
        if session.is_empty() {
            return Err(EventParseError::new("session", "must not be empty"));
        }
        let ts = match obj.get("ts") {
            None => None,
            Some(v) => {
                let t = v.as_f64().ok_or_else(|| {
                    EventParseError::new("ts", format!("expected a number, got {v}"))
                })?;
                if !t.is_finite() {
                    return Err(EventParseError::new("ts", "must be finite"));
                }
                Some(t)
            }
        };
        let kind = if obj.get("end").is_some() {
            EventKind::End {
                expected: u64_field(&obj, "end")?,
            }
        } else {
            let metric = obj
                .get("metric")
                .and_then(Json::as_str)
                .ok_or_else(|| EventParseError::new("metric", "missing or not a string"))?;
            if metric.is_empty() {
                return Err(EventParseError::new("metric", "must not be empty"));
            }
            let value = value_of(
                obj.get("value")
                    .ok_or_else(|| EventParseError::new("value", "missing"))?,
            )?;
            EventKind::Sample {
                seq: u64_field(&obj, "seq")?,
                metric: metric.to_string(),
                value,
            }
        };
        Ok(ProbeEvent {
            session: session.to_string(),
            ts,
            kind,
        })
    }

    /// Serialise to one JSONL line (no trailing newline) that
    /// [`ProbeEvent::parse`] recovers exactly.
    pub fn to_jsonl(&self) -> String {
        let sid = Json::str(&self.session);
        let ts = match self.ts {
            Some(t) => format!(",\"ts\":{t:?}"),
            None => String::new(),
        };
        match &self.kind {
            EventKind::Sample { seq, metric, value } => format!(
                "{{\"session\":{sid},\"seq\":{seq},\"metric\":{},\"value\":{}{ts}}}",
                Json::str(metric),
                value_json(*value),
            ),
            EventKind::End { expected } => {
                format!("{{\"session\":{sid},\"end\":{expected}{ts}}}")
            }
        }
    }
}

impl fmt::Display for ProbeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_round_trips_bit_exactly() {
        for v in [
            -62.25,
            0.0,
            -0.0,
            1.0e300,
            6.25e-7,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.12345678901234567,
        ] {
            let ev = ProbeEvent::sample("s1", 7, "mobile.phy.rssi_avg", v).at(3.5);
            let back = ProbeEvent::parse(&ev.to_jsonl()).unwrap();
            assert_eq!(back.session, "s1");
            assert_eq!(back.ts, Some(3.5));
            match back.kind {
                EventKind::Sample { seq, metric, value } => {
                    assert_eq!(seq, 7);
                    assert_eq!(metric, "mobile.phy.rssi_avg");
                    if v.is_nan() {
                        assert!(value.is_nan());
                    } else {
                        assert_eq!(value.to_bits(), v.to_bits(), "value {v:?}");
                    }
                }
                k => panic!("wrong kind {k:?}"),
            }
        }
    }

    #[test]
    fn end_round_trips() {
        let ev = ProbeEvent::end("42", 280);
        let back = ProbeEvent::parse(&ev.to_jsonl()).unwrap();
        assert_eq!(back, ev);
        assert!(back.ts.is_none());
    }

    #[test]
    fn escaped_session_ids_round_trip() {
        let ev = ProbeEvent::sample("tab\there \"q\"", 0, "m.x", 1.0);
        let back = ProbeEvent::parse(&ev.to_jsonl()).unwrap();
        assert_eq!(back.session, "tab\there \"q\"");
    }

    #[test]
    fn malformed_lines_yield_typed_errors() {
        let cases = [
            ("", "line"),
            ("not json", "line"),
            ("[1,2]", "line"),
            ("{\"seq\":1}", "session"),
            ("{\"session\":\"\"}", "session"),
            ("{\"session\":\"s\"}", "metric"),
            ("{\"session\":\"s\",\"metric\":\"m\"}", "value"),
            (
                "{\"session\":\"s\",\"metric\":\"m\",\"value\":\"x\"}",
                "value",
            ),
            (
                "{\"session\":\"s\",\"metric\":\"m\",\"value\":1,\"seq\":-1}",
                "seq",
            ),
            (
                "{\"session\":\"s\",\"metric\":\"m\",\"value\":1,\"seq\":1.5}",
                "seq",
            ),
            ("{\"session\":\"s\",\"end\":\"x\"}", "end"),
            (
                "{\"session\":\"s\",\"seq\":0,\"metric\":\"m\",\"value\":1,\"ts\":\"x\"}",
                "ts",
            ),
        ];
        for (line, field) in cases {
            let err = ProbeEvent::parse(line).unwrap_err();
            assert_eq!(err.field, field, "line {line:?} -> {err}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn truncated_line_is_an_error_not_a_panic() {
        let full = ProbeEvent::sample("s", 3, "mobile.hw.cpu_avg", 0.5).to_jsonl();
        for cut in 0..full.len() {
            let _ = ProbeEvent::parse(&full[..cut]);
        }
    }
}
