//! Write-ahead event journal: the durability edge of `vqd serve`.
//!
//! The streaming daemon records every **accepted** event here before
//! it enters a shard queue, so a crash loses no acknowledged input:
//! recovery replays the journal suffix past the newest snapshot and
//! the daemon resumes exactly where it died. The format is built for
//! exactly that failure mode — a process killed mid-write:
//!
//! ```text
//! segment file  seg-<start_seq, 20 digits>.vqdj
//!   [8]  magic  "VQDJRNL1"
//!   [8]  start_seq (u64 LE) — journal seq of the first record
//!   records, back to back:
//!     [4] payload length (u32 LE)
//!     [4] payload checksum (u32 LE, see [`checksum32`])
//!     [n] payload bytes (opaque; `vqd serve` writes one
//!         binary-encoded event — see `ProbeEvent::from_journal_bytes`)
//! ```
//!
//! * **Length-prefixed + checksummed**: a record is valid only if its
//!   full payload is present *and* the checksum matches. A `kill -9`
//!   mid-`write` leaves a torn final record; the reader detects it
//!   and discards the tail — never a panic, never a half-parsed
//!   event. Anything wrong *before* the final segment's tail is real
//!   corruption and surfaces as a typed [`JournalError`].
//! * **Segment rotation**: the journal is a directory of fixed-size
//!   segments so a long-running daemon never grows one unbounded file
//!   and snapshots can prune whole segments ([`JournalWriter::
//!   prune_through`]) once they are covered.
//! * **Group commit**: records buffer in the writer and reach the OS
//!   (`write(2)`) every `flush_every` records. A crash can lose only
//!   the unflushed tail — and loses nothing end to end, because
//!   recovery reports `next_seq` and the sender resumes from it (the
//!   journal seq doubles as the ingest ack).
//!
//! Reading ([`scan`]) is strictly read-only — `vqd recover` inspects
//! a journal while a daemon is writing it. Opening a
//! [`JournalWriter`] on an existing journal is what truncates a torn
//! tail (physically, with `set_len`) before appending resumes.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Segment file magic, byte-for-byte at offset 0.
pub const MAGIC: &[u8; 8] = b"VQDJRNL1";

/// Segment header length: magic + start_seq.
const HEADER_LEN: u64 = 16;

/// Per-record framing overhead: length + checksum.
const FRAME_LEN: u64 = 8;

/// Upper bound on a single record payload; a larger length prefix is
/// corruption, not a huge record (event lines are capped far below
/// this — see [`crate::event::MAX_EVENT_LINE`]).
pub const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// Segment writer buffer: large enough that a whole group commit
/// (`flush_every` records) reaches the OS in one `write(2)` instead
/// of tripping the buffer's own capacity flush mid-batch, small
/// enough not to churn the L2 cache on the ingest core.
const WRITE_BUF: usize = 32 * 1024;

/// Filename for the segment whose first record is `start_seq`.
fn segment_name(start_seq: u64) -> String {
    format!("seg-{start_seq:020}.vqdj")
}

// ---------------------------------------------------------------------------
// Record checksum, no dependencies
// ---------------------------------------------------------------------------

/// 32-bit record checksum: 8-byte lanes folded through a multiply-xor
/// mix (SplitMix64 finaliser constants), truncated to 32 bits. It runs
/// on every journal append, where it is several times faster than a
/// table-driven CRC-32 on short event records, with the same 2^-32
/// false-accept odds against the debris `scan` must catch — torn
/// writes, zeroed pages, flipped bits. (CRC's burst-error algebra buys
/// nothing here: any mismatch just truncates or rejects the segment.)
/// The length is mixed in up front so a short record zero-padded to a
/// lane boundary cannot collide with a longer all-zero one.
pub fn checksum32(data: &[u8]) -> u32 {
    let mut c = Checksum32::new(data.len() as u64);
    c.update(data);
    c.finish()
}

const SUM_M1: u64 = 0xbf58_476d_1ce4_e5b9;
const SUM_M2: u64 = 0x94d0_49bb_1331_11eb;

/// Incremental [`checksum32`]: feed the payload in arbitrary pieces
/// and get the identical digest, provided the total length promised
/// to [`Checksum32::new`] equals the bytes actually fed (the length
/// is mixed into the initial state, so it must be known up front).
/// Lets writers checksum sections they produce chunk by chunk — e.g.
/// the `.vqdc` column streamer — without buffering a whole section.
pub struct Checksum32 {
    h1: u64,
    h2: u64,
    buf: [u8; 16],
    buf_len: usize,
}

impl Checksum32 {
    /// Start a digest over exactly `total_len` bytes.
    pub fn new(total_len: u64) -> Checksum32 {
        Checksum32 {
            h1: 0x9e37_79b9_7f4a_7c15u64 ^ total_len,
            h2: 0x6a09_e667_f3bc_c909u64,
            buf: [0u8; 16],
            buf_len: 0,
        }
    }

    // Two independent lanes so consecutive folds are not one serial
    // multiply chain; each multiply is by an odd constant (a bijection
    // on u64), so any single-lane change always alters that lane.
    fn fold16(&mut self, ch: &[u8]) {
        let mut a = [0u8; 8];
        let mut b = [0u8; 8];
        a.copy_from_slice(&ch[..8]);
        b.copy_from_slice(&ch[8..]);
        self.h1 = (self.h1 ^ u64::from_le_bytes(a)).wrapping_mul(SUM_M1);
        self.h2 = (self.h2 ^ u64::from_le_bytes(b)).wrapping_mul(SUM_M2);
    }

    /// Feed the next piece of the payload.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = data.len().min(16 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len < 16 {
                return;
            }
            let full = self.buf;
            self.fold16(&full);
            self.buf_len = 0;
        }
        let mut chunks = data.chunks_exact(16);
        for ch in &mut chunks {
            self.fold16(ch);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Finalise. Identical to `checksum32` over the concatenation of
    /// every `update` slice.
    pub fn finish(self) -> u32 {
        let mut h1 = self.h1;
        let mut rem = &self.buf[..self.buf_len];
        while !rem.is_empty() {
            let take = rem.len().min(8);
            let mut lane = [0u8; 8];
            lane[..take].copy_from_slice(&rem[..take]);
            h1 = (h1 ^ u64::from_le_bytes(lane)).wrapping_mul(SUM_M1);
            rem = &rem[take..];
        }
        let mut h = h1 ^ self.h2.rotate_left(32);
        h ^= h >> 31;
        h = h.wrapping_mul(SUM_M2);
        (h ^ (h >> 32)) as u32
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A journal that cannot be read or written, naming where and why.
/// Torn final-segment tails are *not* errors — they are expected
/// crash debris, reported via [`TornTail`] and discarded.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure on `path`.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A segment that is damaged somewhere tail-truncation cannot
    /// explain: bad magic, a mid-file checksum mismatch in a
    /// non-final segment, a sequence gap between segments.
    Corrupt {
        /// The offending segment file.
        segment: PathBuf,
        /// Byte offset of the damage within the segment.
        offset: u64,
        /// What was found there.
        msg: String,
    },
}

impl JournalError {
    fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        JournalError::Io {
            path: path.into(),
            source,
        }
    }

    /// A corruption report pinned to a segment and byte offset — also
    /// used by recovery layers that find a structurally valid record
    /// whose *payload* cannot be decoded.
    pub fn corrupt(segment: impl Into<PathBuf>, offset: u64, msg: impl Into<String>) -> Self {
        JournalError::Corrupt {
            segment: segment.into(),
            offset,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, source } => {
                write!(f, "journal {}: {}", path.display(), source)
            }
            JournalError::Corrupt {
                segment,
                offset,
                msg,
            } => write!(
                f,
                "journal segment {} corrupt at byte {offset}: {msg}",
                segment.display()
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            JournalError::Corrupt { .. } => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Read-only scan
// ---------------------------------------------------------------------------

/// A torn tail found at the end of the final segment: bytes written
/// by a crashed process that never completed a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// The final segment holding the debris.
    pub segment: PathBuf,
    /// Byte offset of the last valid record boundary.
    pub valid_len: u64,
    /// Debris bytes past the boundary (discarded on writer open).
    pub bytes_dropped: u64,
}

/// One segment as seen by [`scan`].
#[derive(Debug, Clone)]
pub struct SegmentInfo {
    /// Segment file path.
    pub path: PathBuf,
    /// Journal seq of its first record.
    pub start_seq: u64,
    /// Valid records in it.
    pub records: u64,
    /// Valid bytes (header + whole records).
    pub valid_len: u64,
}

/// Everything a read-only pass over a journal directory yields.
#[derive(Debug, Default)]
pub struct JournalScan {
    /// Record payloads in seq order; index `i` is seq `first_seq + i`.
    pub records: Vec<Vec<u8>>,
    /// Per-segment accounting, in seq order.
    pub segments: Vec<SegmentInfo>,
    /// Torn debris at the end of the final segment, if any.
    pub torn: Option<TornTail>,
}

impl JournalScan {
    /// Seq of the first retained record (0 unless segments were
    /// pruned by snapshots).
    pub fn first_seq(&self) -> u64 {
        self.segments.first().map(|s| s.start_seq).unwrap_or(0)
    }

    /// Seq the next appended record will get — also the resume point
    /// a sender should re-feed from after a crash.
    pub fn next_seq(&self) -> u64 {
        self.first_seq() + self.records.len() as u64
    }

    /// The payload for journal seq `seq`, if retained.
    pub fn record(&self, seq: u64) -> Option<&[u8]> {
        seq.checked_sub(self.first_seq())
            .and_then(|i| self.records.get(i as usize))
            .map(Vec::as_slice)
    }
}

/// List a journal directory's segment files in seq order. A missing
/// directory is an empty journal, not an error.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, JournalError> {
    let mut segs = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(segs),
        Err(e) => return Err(JournalError::io(dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| JournalError::io(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".vqdj"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            segs.push((seq, entry.path()));
        }
    }
    segs.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(segs)
}

/// One segment's readable contents, as found on disk.
struct SegmentScan {
    /// Header start_seq (0 when the header itself was torn).
    start_seq: u64,
    /// Payloads of every intact record, in order.
    records: Vec<Vec<u8>>,
    /// Bytes of the segment covered by header + intact records.
    valid_len: u64,
    /// Bytes dropped off a torn tail, if any.
    torn: Option<u64>,
}

/// Parse one segment's bytes. Returns its records and the valid
/// length; `final_segment` decides whether trailing damage is a
/// tolerated torn tail or hard corruption.
fn scan_segment(
    path: &Path,
    bytes: &[u8],
    final_segment: bool,
) -> Result<SegmentScan, JournalError> {
    if bytes.len() < HEADER_LEN as usize {
        if final_segment {
            // A crash can die inside the 16-byte header write.
            return Ok(SegmentScan {
                start_seq: 0,
                records: Vec::new(),
                valid_len: 0,
                torn: Some(bytes.len() as u64),
            });
        }
        return Err(JournalError::corrupt(
            path,
            0,
            format!("file is {} bytes, shorter than the header", bytes.len()),
        ));
    }
    if &bytes[..8] != MAGIC {
        return Err(JournalError::corrupt(path, 0, "bad magic"));
    }
    let start_seq = u64::from_le_bytes(
        bytes[8..16]
            .try_into()
            .unwrap_or_else(|_| unreachable!("length checked above")),
    );
    let mut records = Vec::new();
    let mut pos = HEADER_LEN as usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(SegmentScan {
                start_seq,
                records,
                valid_len: pos as u64,
                torn: None,
            });
        }
        // Decide whether a whole valid record starts at `pos`; any
        // damage here is a torn tail in the final segment, hard
        // corruption anywhere else.
        let damage: Option<String> = if remaining < FRAME_LEN as usize {
            Some(format!(
                "{remaining} trailing bytes, shorter than a record frame"
            ))
        } else {
            let len = u32::from_le_bytes(
                bytes[pos..pos + 4]
                    .try_into()
                    .unwrap_or_else(|_| unreachable!("length checked above")),
            );
            let want = bytes[pos + 4..pos + 8]
                .try_into()
                .map(u32::from_le_bytes)
                .unwrap_or_else(|_| unreachable!("length checked above"));
            if len > MAX_RECORD_LEN {
                Some(format!("record length {len} exceeds {MAX_RECORD_LEN}"))
            } else if remaining < FRAME_LEN as usize + len as usize {
                Some(format!(
                    "record promises {len} payload bytes, {} remain",
                    remaining - FRAME_LEN as usize
                ))
            } else {
                let payload = &bytes[pos + 8..pos + 8 + len as usize];
                if checksum32(payload) != want {
                    Some("record checksum mismatch".to_string())
                } else {
                    records.push(payload.to_vec());
                    pos += FRAME_LEN as usize + len as usize;
                    None
                }
            }
        };
        if let Some(msg) = damage {
            return if final_segment {
                Ok(SegmentScan {
                    start_seq,
                    records,
                    valid_len: pos as u64,
                    torn: Some(remaining as u64),
                })
            } else {
                Err(JournalError::corrupt(path, pos as u64, msg))
            };
        }
    }
}

/// Read-only scan of a journal directory: every valid record in seq
/// order, per-segment accounting, and the torn tail (if any) of the
/// final segment. Damage anywhere else is a typed [`JournalError`].
/// A missing or empty directory is an empty journal.
pub fn scan(dir: impl AsRef<Path>) -> Result<JournalScan, JournalError> {
    let dir = dir.as_ref();
    let mut out = JournalScan::default();
    let segs = list_segments(dir)?;
    let last = segs.len().saturating_sub(1);
    let mut expect_seq: Option<u64> = None;
    for (i, (name_seq, path)) in segs.iter().enumerate() {
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| JournalError::io(path, e))?;
        let SegmentScan {
            start_seq,
            records,
            valid_len,
            torn,
        } = scan_segment(path, &bytes, i == last)?;
        // An all-torn final segment has no readable header; trust the
        // filename, which the writer derives from the same counter.
        let start_seq = if bytes.len() < HEADER_LEN as usize {
            *name_seq
        } else {
            start_seq
        };
        if start_seq != *name_seq {
            return Err(JournalError::corrupt(
                path,
                8,
                format!("header start_seq {start_seq} does not match filename seq {name_seq}"),
            ));
        }
        if let Some(want) = expect_seq {
            if start_seq != want {
                return Err(JournalError::corrupt(
                    path,
                    8,
                    format!("sequence gap: expected start_seq {want}, found {start_seq}"),
                ));
            }
        }
        expect_seq = Some(start_seq + records.len() as u64);
        out.segments.push(SegmentInfo {
            path: path.clone(),
            start_seq,
            records: records.len() as u64,
            valid_len,
        });
        out.records.extend(records);
        if let Some(bytes_dropped) = torn {
            out.torn = Some(TornTail {
                segment: path.clone(),
                valid_len,
                bytes_dropped,
            });
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Journal writer tuning.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Rotate to a new segment once the current one reaches this many
    /// bytes (header + records).
    pub segment_bytes: u64,
    /// Records between `write(2)` flushes (group commit). 1 = every
    /// record reaches the OS before `append` returns. A crash loses
    /// at most the unflushed tail, which the sender re-feeds from
    /// `next_seq` after recovery — the ack a sender trusts is always
    /// the on-disk scan, so a larger batch only widens the re-send
    /// window, never breaks exactly-once.
    pub flush_every: u64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            segment_bytes: 8 * 1024 * 1024,
            flush_every: 256,
        }
    }
}

/// Appends records to a journal directory, rotating segments and
/// group-committing. Dropping the writer does **not** flush — that is
/// deliberate, so an in-process simulated crash loses its buffered
/// tail exactly like a killed process would; call [`flush`]
/// (`JournalWriter::flush`) on every graceful path.
pub struct JournalWriter {
    dir: PathBuf,
    cfg: JournalConfig,
    /// Open current segment file (writes go through `buf`).
    current: Option<File>,
    /// Bytes appended but not yet handed to the OS. Records encode
    /// straight into this buffer — one copy from event to `write(2)`.
    buf: Vec<u8>,
    /// Logical segment length: on-disk bytes plus `buf`.
    current_len: u64,
    current_start: u64,
    next_seq: u64,
    unflushed: u64,
}

impl JournalWriter {
    /// Open `dir` for appending: scan what exists, physically
    /// truncate a torn tail off the final segment, and position after
    /// the last valid record. Returns the writer and the scan (whose
    /// records recovery replays). Creates the directory if missing.
    pub fn open(
        dir: impl Into<PathBuf>,
        cfg: JournalConfig,
    ) -> Result<(JournalWriter, JournalScan), JournalError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| JournalError::io(&dir, e))?;
        let scan_result = scan(&dir)?;
        if let Some(torn) = &scan_result.torn {
            let f = OpenOptions::new()
                .write(true)
                .open(&torn.segment)
                .map_err(|e| JournalError::io(&torn.segment, e))?;
            f.set_len(torn.valid_len)
                .map_err(|e| JournalError::io(&torn.segment, e))?;
            f.sync_all()
                .map_err(|e| JournalError::io(&torn.segment, e))?;
        }
        let mut w = JournalWriter {
            dir,
            cfg,
            current: None,
            buf: Vec::with_capacity(WRITE_BUF),
            current_len: 0,
            current_start: 0,
            next_seq: scan_result.next_seq(),
            unflushed: 0,
        };
        // Reopen the last segment for appending if it has room; a
        // fully-truncated (headerless) final segment is rewritten
        // from scratch by the next append.
        if let Some(info) = scan_result.segments.last() {
            if info.valid_len >= HEADER_LEN && info.valid_len < w.cfg.segment_bytes {
                let f = OpenOptions::new()
                    .append(true)
                    .open(&info.path)
                    .map_err(|e| JournalError::io(&info.path, e))?;
                w.current = Some(f);
                w.current_len = info.valid_len;
                w.current_start = info.start_seq;
            } else if info.valid_len < HEADER_LEN {
                std::fs::remove_file(&info.path).map_err(|e| JournalError::io(&info.path, e))?;
            }
        }
        Ok((w, scan_result))
    }

    /// Seq the next appended record will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn open_segment(&mut self) -> Result<(), JournalError> {
        let path = self.dir.join(segment_name(self.next_seq));
        let f = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)
            .map_err(|e| JournalError::io(&path, e))?;
        self.current = Some(f);
        self.buf.extend_from_slice(MAGIC);
        self.buf.extend_from_slice(&self.next_seq.to_le_bytes());
        self.current_len = HEADER_LEN;
        self.current_start = self.next_seq;
        Ok(())
    }

    /// Append one record; returns its journal seq. Rotates and
    /// group-commits per the config.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, JournalError> {
        self.append_with(|buf| buf.extend_from_slice(payload))
    }

    /// Append one record whose payload `fill` writes directly into
    /// the journal's own buffer — the zero-intermediate-copy path the
    /// serve hot loop uses. The frame (length + checksum) is
    /// back-filled around whatever `fill` appended.
    pub fn append_with(&mut self, fill: impl FnOnce(&mut Vec<u8>)) -> Result<u64, JournalError> {
        if self.current.is_none() || self.current_len >= self.cfg.segment_bytes {
            self.flush()?;
            self.current = None;
            self.open_segment()?;
        }
        let seq = self.next_seq;
        let base = self.buf.len();
        self.buf.extend_from_slice(&[0u8; FRAME_LEN as usize]);
        fill(&mut self.buf);
        let payload_len = self.buf.len() - base - FRAME_LEN as usize;
        debug_assert!(payload_len as u64 <= MAX_RECORD_LEN as u64);
        let sum = checksum32(&self.buf[base + FRAME_LEN as usize..]);
        self.buf[base..base + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
        self.buf[base + 4..base + FRAME_LEN as usize].copy_from_slice(&sum.to_le_bytes());
        self.current_len += FRAME_LEN + payload_len as u64;
        self.next_seq += 1;
        self.unflushed += 1;
        if self.unflushed >= self.cfg.flush_every.max(1) || self.buf.len() >= WRITE_BUF {
            self.flush()?;
        }
        Ok(seq)
    }

    /// Push buffered records to the OS (`write(2)`): after this, a
    /// process kill cannot lose them (power loss still can — there is
    /// deliberately no fsync on the hot path).
    pub fn flush(&mut self) -> Result<(), JournalError> {
        if !self.buf.is_empty() {
            let f = self
                .current
                .as_mut()
                .unwrap_or_else(|| unreachable!("buffered bytes always have an open segment"));
            f.write_all(&self.buf)
                .map_err(|e| JournalError::io(&self.dir, e))?;
            self.buf.clear();
        }
        self.unflushed = 0;
        Ok(())
    }

    /// Discard the writer *without* flushing buffered records — the
    /// in-process equivalent of `kill -9` for the chaos harness.
    /// (Plain `drop` has the same effect — the buffer is the writer's
    /// own and nothing flushes it implicitly — but the harness calls
    /// this to make the intent unmissable.)
    pub fn abandon(mut self) {
        self.buf.clear();
        self.current.take();
    }

    /// Delete whole segments every record of which has seq `< seq` —
    /// called after a snapshot covering that prefix is durable. The
    /// segment containing `seq` (and the live one) always survive.
    pub fn prune_through(&mut self, seq: u64) -> Result<u64, JournalError> {
        let segs = list_segments(&self.dir)?;
        let mut removed = 0;
        for window in segs.windows(2) {
            let (start, path) = &window[0];
            let (next_start, _) = &window[1];
            if *next_start <= seq && *start != self.current_start {
                std::fs::remove_file(path).map_err(|e| JournalError::io(path, e))?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vqd-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn incremental_checksum_matches_one_shot_at_any_split() {
        // Pseudo-random payload long enough to cross several 16-byte
        // chunk boundaries, split every way a streamer might.
        let mut data = Vec::with_capacity(133);
        let mut s = 0x1234_5678_9abc_def0u64;
        while data.len() < 133 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            data.push(s as u8);
        }
        for len in [0usize, 1, 7, 8, 15, 16, 17, 32, 133] {
            let d = &data[..len];
            let want = checksum32(d);
            for piece in [1usize, 3, 8, 16, 19, 133] {
                let mut c = Checksum32::new(len as u64);
                for p in d.chunks(piece) {
                    c.update(p);
                }
                assert_eq!(c.finish(), want, "len={len} piece={piece}");
            }
        }
    }

    #[test]
    fn checksum_separates_close_inputs() {
        // Single-bit flips, truncation and zero-padding must all
        // change the sum — these are exactly the corruptions scan()
        // leans on it to catch.
        let base = b"record-payload-0123456789";
        let sum = checksum32(base);
        for i in 0..base.len() * 8 {
            let mut flipped = base.to_vec();
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(checksum32(&flipped), sum, "bit {i} flip must change sum");
        }
        for cut in 0..base.len() {
            assert_ne!(checksum32(&base[..cut]), sum, "truncation at {cut}");
        }
        assert_ne!(checksum32(b""), checksum32(&[0u8]));
        assert_ne!(checksum32(&[0u8; 7]), checksum32(&[0u8; 8]));
        assert_ne!(checksum32(&[0u8; 8]), checksum32(&[0u8; 16]));
        // Deterministic across calls.
        assert_eq!(checksum32(base), sum);
    }

    #[test]
    fn write_read_round_trip_with_rotation() {
        let dir = tmpdir("roundtrip");
        let cfg = JournalConfig {
            segment_bytes: 64, // force many rotations
            flush_every: 1,
        };
        let (mut w, scan0) = JournalWriter::open(&dir, cfg).unwrap();
        assert_eq!(scan0.next_seq(), 0);
        let payloads: Vec<Vec<u8>> = (0..20)
            .map(|i| format!("record-{i}-{}", "x".repeat(i % 7)).into_bytes())
            .collect();
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(w.append(p).unwrap(), i as u64);
        }
        w.flush().unwrap();
        let s = scan(&dir).unwrap();
        assert!(s.segments.len() > 1, "64-byte segments must rotate");
        assert_eq!(s.records, payloads);
        assert_eq!(s.next_seq(), 20);
        assert!(s.torn.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_and_truncated_never_a_panic() {
        let dir = tmpdir("torn");
        let (mut w, _) = JournalWriter::open(&dir, JournalConfig::default()).unwrap();
        for i in 0..5u32 {
            w.append(format!("payload-{i}").as_bytes()).unwrap();
        }
        w.flush().unwrap();
        drop(w);
        // Tear the file mid-record at every possible byte length.
        let seg = list_segments(&dir).unwrap().pop().unwrap().1;
        let full = std::fs::read(&seg).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&seg, &full[..cut]).unwrap();
            let s = scan(&dir).unwrap();
            assert!(s.records.len() <= 5);
            for (i, r) in s.records.iter().enumerate() {
                assert_eq!(r, format!("payload-{i}").as_bytes(), "cut={cut}");
            }
            // Reopening the writer truncates and appending resumes.
            let (mut w2, s2) = JournalWriter::open(&dir, JournalConfig::default()).unwrap();
            assert_eq!(s2.records.len(), s.records.len(), "cut={cut}");
            let seq = w2.append(b"after-recovery").unwrap();
            assert_eq!(seq, s.next_seq(), "cut={cut}");
            w2.flush().unwrap();
            let s3 = scan(&dir).unwrap();
            assert_eq!(s3.records.last().unwrap(), b"after-recovery");
            assert!(s3.torn.is_none(), "cut={cut}: truncation must heal");
            // Restore the original for the next cut.
            std::fs::write(&seg, &full).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_payload_flips_are_caught_by_crc() {
        let dir = tmpdir("flip");
        let (mut w, _) = JournalWriter::open(&dir, JournalConfig::default()).unwrap();
        w.append(b"aaaa").unwrap();
        w.append(b"bbbb").unwrap();
        w.flush().unwrap();
        drop(w);
        let seg = list_segments(&dir).unwrap().pop().unwrap().1;
        let mut bytes = std::fs::read(&seg).unwrap();
        // Flip one payload byte of the FIRST record: the damaged
        // record and everything after it is dropped as the tail.
        let off = HEADER_LEN as usize + FRAME_LEN as usize;
        bytes[off] ^= 0x40;
        std::fs::write(&seg, &bytes).unwrap();
        let s = scan(&dir).unwrap();
        assert!(s.records.is_empty(), "damaged first record drops the tail");
        assert!(s.torn.is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_journal_corruption_in_non_final_segment_is_a_typed_error() {
        let dir = tmpdir("midcorrupt");
        let cfg = JournalConfig {
            segment_bytes: 48,
            flush_every: 1,
        };
        let (mut w, _) = JournalWriter::open(&dir, cfg).unwrap();
        for i in 0..10u32 {
            w.append(format!("record-number-{i}").as_bytes()).unwrap();
        }
        w.flush().unwrap();
        drop(w);
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 2);
        let first = &segs[0].1;
        let mut bytes = std::fs::read(first).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        std::fs::write(first, &bytes).unwrap();
        match scan(&dir) {
            Err(JournalError::Corrupt { segment, .. }) => assert_eq!(&segment, first),
            other => panic!("expected Corrupt error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_through_keeps_covering_segments() {
        let dir = tmpdir("prune");
        let cfg = JournalConfig {
            segment_bytes: 48,
            flush_every: 1,
        };
        let (mut w, _) = JournalWriter::open(&dir, cfg).unwrap();
        for i in 0..12u32 {
            w.append(format!("record-number-{i}").as_bytes()).unwrap();
        }
        w.flush().unwrap();
        let before = list_segments(&dir).unwrap().len();
        assert!(before >= 3);
        let cut = 7;
        w.prune_through(cut).unwrap();
        let s = scan(&dir).unwrap();
        assert!(s.first_seq() <= cut, "record {cut} must survive pruning");
        assert_eq!(s.next_seq(), 12);
        for seq in cut..12 {
            assert_eq!(
                s.record(seq).unwrap(),
                format!("record-number-{seq}").as_bytes()
            );
        }
        assert!(s.segments.len() < before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_missing_directories_scan_empty() {
        let dir = tmpdir("empty");
        let s = scan(&dir).unwrap();
        assert_eq!(s.next_seq(), 0);
        std::fs::create_dir_all(&dir).unwrap();
        let s = scan(&dir).unwrap();
        assert_eq!(s.next_seq(), 0);
        assert!(s.torn.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
