//! # vqd-probes — vantage-point instrumentation
//!
//! The measurement layer of the framework: everything a probe deployed
//! at the mobile device, the home router/AP or the content server can
//! observe, reconstructed passively and aggregated per video session.
//!
//! * [`tstat`] — per-flow TCP analysis from packet taps (the `tstat`
//!   equivalent): counts, retransmissions, out-of-order, RTT via
//!   timestamp echo, windows, MSS, first-payload delay.
//! * [`sampler`] — 1 Hz OS/hardware (CPU, memory, I/O) and link/PHY
//!   (throughput, drops, MAC retries, RSSI, rate, association)
//!   sampling with avg/min/max/std aggregation.
//! * [`vantage`] — assembly of one probe's view into named metric
//!   vectors (`"mobile.tcp.s2c.retx_pkts"`, …) and the
//!   [`ProbeSet`](vantage::ProbeSet) packet observer that feeds every
//!   vantage point from the simulator's taps.
//! * [`event`] — the JSONL probe-event wire format
//!   ([`ProbeEvent`](event::ProbeEvent)) consumed by the streaming
//!   serving daemon (`vqd serve`), with typed parse errors.
//! * [`journal`] — the write-ahead event journal behind `vqd serve
//!   --journal`: length-prefixed CRC-checked records in rotating
//!   segments, torn-tail tolerant, read-only scannable.
//! * [`degrade`] — deterministic probe-fault injection
//!   ([`DegradePlan`](degrade::DegradePlan)): VP dropout, group loss,
//!   truncation, corruption and clock skew applied to collected metric
//!   vectors, for the robustness sweeps of `vqd-core`.
//!
//! Application-layer QoE (stalls, startup delay) is deliberately *not*
//! collected here: it lives in `vqd-video` and is used only to label
//! the ground truth, mirroring the paper's methodology.

pub mod degrade;
pub mod event;
pub mod journal;
pub mod sampler;
pub mod tstat;
pub mod vantage;

pub use degrade::{DegradeKind, DegradePlan};
pub use event::{EventKind, EventParseError, ProbeEvent};
pub use journal::{JournalConfig, JournalError, JournalScan, JournalWriter};
pub use sampler::{HwAccum, NicAccum, PhyAccum, SamplerApp};
pub use tstat::{DirStats, FlowAnalyzer};
pub use vantage::{ProbeSet, VpData, VpHandle};
