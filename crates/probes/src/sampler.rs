//! Periodic OS/hardware and link/PHY sampling.
//!
//! The paper's probes read `/proc`-style hardware state and NIC/radio
//! counters once per second and aggregate them per video flow
//! (average/min/max/std). [`SamplerApp`] is the simulated equivalent:
//! it ticks at 1 Hz and fills the accumulators inside each vantage
//! point's shared [`VpData`](crate::vantage::VpData).

use vqd_simnet::engine::{App, Ctl};
use vqd_simnet::ids::{HostId, LinkId};
use vqd_simnet::stats::Welford;
use vqd_simnet::time::SimDuration;

use crate::vantage::VpHandle;

/// Accumulated OS/hardware samples.
#[derive(Debug, Default, Clone)]
pub struct HwAccum {
    /// CPU utilisation, `[0, 1]`.
    pub cpu: Welford,
    /// Free memory, MiB.
    pub mem_free: Welford,
    /// Fraction of memory free.
    pub mem_free_frac: Welford,
    /// I/O pressure, `[0, 1]`.
    pub io: Welford,
}

/// Accumulated per-NIC samples (one NIC = the link pair to a peer).
#[derive(Debug, Clone)]
pub struct NicAccum {
    /// Stable role label ("wlan", "wan", "lan", or "nic<i>") — feature
    /// names must mean the same interface role across topologies.
    pub label: String,
    /// Egress one-way link (from == this host).
    pub link_out: LinkId,
    /// Ingress one-way link (to == this host).
    pub link_in: Option<LinkId>,
    /// Peer on the other end.
    pub peer: HostId,
    /// True if the NIC is a WLAN attachment.
    pub wireless: bool,
    /// Transmit throughput samples, bit/s.
    pub tx_bps: Welford,
    /// Receive throughput samples, bit/s.
    pub rx_bps: Welford,
    /// Transmit utilisation vs line rate, `[0, 1]`.
    pub tx_util: Welford,
    /// Receive utilisation vs line rate, `[0, 1]`.
    pub rx_util: Welford,
    /// Queue (congestion) drops on the egress link over the window.
    pub tail_drops: u64,
    /// Random/MAC-exhausted losses on the egress link.
    pub loss_drops: u64,
    /// MAC retransmissions on the egress link.
    pub mac_retx: u64,
    prev_out_bytes: u64,
    prev_in_bytes: u64,
    prev_tail: u64,
    prev_loss: u64,
    prev_retx: u64,
}

impl NicAccum {
    fn new(
        label: String,
        link_out: LinkId,
        link_in: Option<LinkId>,
        peer: HostId,
        wireless: bool,
    ) -> Self {
        NicAccum {
            label,
            link_out,
            link_in,
            peer,
            wireless,
            tx_bps: Welford::new(),
            rx_bps: Welford::new(),
            tx_util: Welford::new(),
            rx_util: Welford::new(),
            tail_drops: 0,
            loss_drops: 0,
            mac_retx: 0,
            prev_out_bytes: 0,
            prev_in_bytes: 0,
            prev_tail: 0,
            prev_loss: 0,
            prev_retx: 0,
        }
    }
}

/// Accumulated radio samples (WLAN stations / the AP's view of them).
#[derive(Debug, Default, Clone)]
pub struct PhyAccum {
    /// RSSI, dBm (1 Hz samples, as in the paper).
    pub rssi: Welford,
    /// SNR, dB.
    pub snr: Welford,
    /// Negotiated PHY rate, bit/s.
    pub phy_rate: Welford,
    /// Medium busy fraction.
    pub busy: Welford,
    /// Total disconnections observed so far.
    pub disconnections: u64,
    /// Samples taken while disassociated.
    pub disconnected_samples: u64,
}

/// 1 Hz sampler application covering a set of vantage points.
pub struct SamplerApp {
    vps: Vec<VpHandle>,
    /// Sampling period (1 s in the paper).
    pub interval: SimDuration,
}

impl SamplerApp {
    /// Sampler over the given vantage points.
    pub fn new(vps: Vec<VpHandle>) -> Self {
        SamplerApp {
            vps,
            interval: SimDuration::from_secs(1),
        }
    }

    fn discover_nics(vp: &VpHandle, ctl: &Ctl) {
        let mut vp = vp.borrow_mut();
        if !vp.nics.is_empty() {
            return;
        }
        let host = vp.host;
        let net = ctl.net();
        let mut next_idx = 0usize;
        for (i, l) in net.links.iter().enumerate() {
            if l.from == host {
                let out = LinkId(i as u32);
                let peer = l.to;
                let link_in = net.link_between(peer, host);
                let wireless = l.medium.is_some();
                let label = vp
                    .nic_labels
                    .iter()
                    .find(|(lid, _)| *lid == out)
                    .map(|(_, n)| n.clone())
                    .unwrap_or_else(|| {
                        if wireless {
                            "wlan".to_string()
                        } else {
                            let n = format!("nic{next_idx}");
                            n
                        }
                    });
                next_idx += 1;
                vp.nics
                    .push(NicAccum::new(label, out, link_in, peer, wireless));
            }
        }
    }

    fn sample_vp(vp: &VpHandle, ctl: &Ctl, dt_s: f64) {
        let mut vp = vp.borrow_mut();
        let host = vp.host;
        let net = ctl.net();
        let h = &net.hosts[host.idx()];
        vp.hw.cpu.add(h.cpu.utilization());
        vp.hw.mem_free.add(h.mem.free_mb());
        vp.hw.mem_free_frac.add(h.mem.free_frac());
        vp.hw.io.add(h.io_load);

        let mut phy_medium = None;
        for nic in &mut vp.nics {
            let out = &net.links[nic.link_out.idx()];
            let out_bytes = out.ctr.enq_bytes;
            let tx_bps = (out_bytes - nic.prev_out_bytes) as f64 * 8.0 / dt_s;
            nic.prev_out_bytes = out_bytes;
            nic.tx_bps.add(tx_bps);
            nic.tx_util.add((tx_bps / out.cfg.rate_bps as f64).min(1.0));
            nic.tail_drops += out.ctr.drop_tail_pkts - nic.prev_tail;
            nic.prev_tail = out.ctr.drop_tail_pkts;
            nic.loss_drops += out.ctr.drop_loss_pkts - nic.prev_loss;
            nic.prev_loss = out.ctr.drop_loss_pkts;
            nic.mac_retx += out.ctr.mac_retx - nic.prev_retx;
            nic.prev_retx = out.ctr.mac_retx;
            if let Some(li) = nic.link_in {
                let inc = &net.links[li.idx()];
                let in_bytes = inc.ctr.delivered_bytes;
                let rx_bps = (in_bytes - nic.prev_in_bytes) as f64 * 8.0 / dt_s;
                nic.prev_in_bytes = in_bytes;
                nic.rx_bps.add(rx_bps);
                nic.rx_util.add((rx_bps / inc.cfg.rate_bps as f64).min(1.0));
            }
            if nic.wireless && phy_medium.is_none() {
                phy_medium = out.medium;
            }
        }

        // Radio view: a station samples itself; the AP samples every
        // associated device (averaging across them).
        if let Some(m) = phy_medium {
            let medium = net.medium(m);
            vp.phy.busy.add(medium.busy_fraction(net.now()));
            let snaps: Vec<_> = match medium.snapshot(host) {
                Some(s) => vec![s],
                None => medium
                    .stations()
                    .iter()
                    .filter_map(|&s| medium.snapshot(s))
                    .collect(),
            };
            let mut disc = 0;
            for s in &snaps {
                vp.phy.rssi.add(s.rssi_dbm);
                vp.phy.snr.add(s.snr_db);
                vp.phy.phy_rate.add(s.phy_rate_bps as f64);
                if !s.connected {
                    vp.phy.disconnected_samples += 1;
                }
                disc += s.disconnections;
            }
            vp.phy.disconnections = disc;
        }
    }
}

impl App for SamplerApp {
    fn start(&mut self, ctl: &mut Ctl) {
        for vp in &self.vps {
            Self::discover_nics(vp, ctl);
        }
        let iv = self.interval;
        ctl.timer(iv, 0);
    }

    fn on_timer(&mut self, _token: u64, ctl: &mut Ctl) {
        let dt = self.interval.as_secs_f64();
        for vp in &self.vps {
            Self::sample_vp(vp, ctl, dt);
        }
        let iv = self.interval;
        ctl.timer(iv, 0);
    }
}
