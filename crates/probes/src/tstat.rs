//! Passive per-flow TCP analysis — the `tstat` equivalent.
//!
//! A [`FlowAnalyzer`] reconstructs transport metrics for one TCP flow
//! from the packets passing one tap point, with no access to endpoint
//! state: retransmissions and hole-fills are inferred from sequence
//! overlap, RTT from RFC 1323 timestamp echo matching, windows and MSS
//! read off the headers. Each vantage point therefore sees *its own*
//! version of the flow — losses upstream of the tap are invisible,
//! RTTs are measured from the tap outward — which is precisely what
//! makes multi-VP diagnosis informative.

use std::collections::VecDeque;

use vqd_simnet::packet::TcpHdr;
use vqd_simnet::stats::Welford;
use vqd_simnet::time::SimTime;

/// Merged-interval tracker used to classify re-seen sequence ranges.
///
/// Intervals are kept in a sorted `Vec` rather than a tree: in-order
/// traffic keeps the set at one interval, loss episodes a handful, so
/// binary search over a contiguous array beats pointer-chasing on
/// every data segment.
#[derive(Debug, Default, Clone)]
struct SeqTracker {
    /// Seen intervals `[start, end)`, merged, sorted by start.
    seen: Vec<(u64, u64)>,
    /// Highest end ever seen.
    pub high: u64,
}

/// Classification of a data segment at the tap.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum SegKind {
    /// Advances the highest sequence: normal in-order transmission.
    InOrder,
    /// Entirely previously-seen bytes: a retransmission.
    Retx,
    /// Below the highest sequence but (partly) new: fills a hole left
    /// by an upstream loss — "out-of-order" in tstat terms.
    HoleFill,
}

impl SeqTracker {
    fn classify(&mut self, seq: u64, len: u32) -> SegKind {
        let end = seq + len as u64;
        let kind = if seq >= self.high {
            SegKind::InOrder
        } else if self.covered(seq, end) {
            SegKind::Retx
        } else {
            SegKind::HoleFill
        };
        self.insert(seq, end);
        self.high = self.high.max(end);
        kind
    }

    fn covered(&self, seq: u64, end: u64) -> bool {
        // The interval starting at or before `seq`.
        let i = self.seen.partition_point(|&(s, _)| s <= seq);
        i > 0 && self.seen[i - 1].1 >= end
    }

    fn insert(&mut self, seq: u64, end: u64) {
        let mut start = seq;
        let mut stop = end;
        // Merge with predecessor.
        let mut i = self.seen.partition_point(|&(s, _)| s <= start);
        if i > 0 && self.seen[i - 1].1 >= start {
            i -= 1;
            start = self.seen[i].0;
            stop = stop.max(self.seen[i].1);
        }
        // Merge with successors starting inside `[start, stop]`
        // (intervals are disjoint, so none can reach past the run).
        let bound = stop;
        let mut j = i;
        while j < self.seen.len() && self.seen[j].0 <= bound {
            stop = stop.max(self.seen[j].1);
            j += 1;
        }
        if i == j {
            self.seen.insert(i, (start, stop));
        } else {
            self.seen[i] = (start, stop);
            self.seen.drain(i + 1..j);
        }
    }
}

/// Per-direction statistics.
#[derive(Debug, Default, Clone)]
pub struct DirStats {
    /// All packets.
    pub pkts: u64,
    /// Wire bytes (headers included).
    pub bytes: u64,
    /// Payload-carrying packets.
    pub data_pkts: u64,
    /// Payload bytes.
    pub data_bytes: u64,
    /// Inferred retransmitted packets.
    pub retx_pkts: u64,
    /// Inferred retransmitted bytes.
    pub retx_bytes: u64,
    /// Hole-filling (out-of-order) packets.
    pub ooo_pkts: u64,
    /// Pure ACKs (no payload).
    pub pure_acks: u64,
    /// Duplicate ACKs.
    pub dup_acks: u64,
    /// Zero-window advertisements.
    pub zero_wnd: u64,
    /// Advertised receive window, bytes.
    pub wnd: Welford,
    /// MSS advertised on the SYN.
    pub mss: u32,
    /// RTT from this tap to the receiver of this direction and back,
    /// seconds.
    pub rtt: Welford,
    /// Packet sizes, bytes.
    pub pkt_size: Welford,
    /// Packet inter-arrival times at the tap, seconds.
    pub interarrival: Welford,
    /// When the first payload byte of this direction passed the tap.
    pub first_payload: Option<SimTime>,
    last_pkt_at: Option<SimTime>,
    last_ack_seen: u64,
    tracker: SeqTracker,
    /// Outstanding `(tsval, tap time)` pairs awaiting echo, sorted by
    /// tsval. tsvals are sender clocks, so insertion is almost always
    /// a push at the back and echoes match near the front — a deque
    /// beats a tree map on both ends.
    pending_ts: VecDeque<(SimTime, SimTime)>,
}

/// Passive analyzer of one flow at one tap point.
#[derive(Debug, Default, Clone)]
pub struct FlowAnalyzer {
    /// Direction 0: client→server, direction 1: server→client.
    pub dir: [DirStats; 2],
    /// First packet of the flow seen at the tap.
    pub first_seen: Option<SimTime>,
    /// Most recent packet.
    pub last_seen: SimTime,
    /// When the first SYN passed.
    pub syn_at: Option<SimTime>,
    /// SYN packets seen (>1 ⇒ handshake retries).
    pub syn_count: u64,
    /// FINs seen (both directions).
    pub fin_count: u64,
    /// Destination port of the flow.
    pub dst_port: u16,
}

impl FlowAnalyzer {
    /// Feed one packet observed at the tap.
    pub fn observe(&mut self, now: SimTime, hdr: &TcpHdr) {
        self.first_seen.get_or_insert(now);
        self.last_seen = now;
        if hdr.flags.syn {
            self.syn_at.get_or_insert(now);
            self.syn_count += 1;
        }
        if hdr.flags.fin {
            self.fin_count += 1;
        }
        let d = if hdr.from_initiator { 0 } else { 1 };
        // RTT matching first: an ACK in direction d echoes tsvals
        // recorded for the *other* direction.
        if hdr.flags.ack && hdr.tsecr != SimTime::ZERO {
            let other = &mut self.dir[1 - d];
            if let Ok(i) = other
                .pending_ts
                .binary_search_by_key(&hdr.tsecr, |&(k, _)| k)
            {
                let (_, sent) = other.pending_ts.remove(i).unwrap_or_default();
                other.rtt.add(now.since(sent).as_secs_f64());
            }
            // GC stale entries (never echoed, e.g. lost downstream).
            while other.pending_ts.len() > 512 {
                other.pending_ts.pop_front();
            }
        }
        let ds = &mut self.dir[d];
        ds.pkts += 1;
        ds.bytes += hdr.len as u64 + vqd_simnet::packet::TCP_HEADER_BYTES as u64;
        ds.pkt_size
            .add(hdr.len as f64 + vqd_simnet::packet::TCP_HEADER_BYTES as f64);
        if let Some(prev) = ds.last_pkt_at {
            ds.interarrival.add(now.since(prev).as_secs_f64());
        }
        ds.last_pkt_at = Some(now);
        if hdr.flags.syn && hdr.mss > 0 {
            ds.mss = hdr.mss;
        }
        ds.wnd.add(hdr.wnd as f64);
        if hdr.wnd == 0 {
            ds.zero_wnd += 1;
        }
        if hdr.len > 0 {
            ds.data_pkts += 1;
            ds.data_bytes += hdr.len as u64;
            ds.first_payload.get_or_insert(now);
            match ds.tracker.classify(hdr.seq, hdr.len) {
                SegKind::InOrder => {}
                SegKind::Retx => {
                    ds.retx_pkts += 1;
                    ds.retx_bytes += hdr.len as u64;
                }
                SegKind::HoleFill => ds.ooo_pkts += 1,
            }
            // Data segments may be RTT-timed via their tsval.
            match ds.pending_ts.back_mut() {
                Some(&mut (k, ref mut v)) if k == hdr.tsval => *v = now,
                Some(&mut (k, _)) if k < hdr.tsval => ds.pending_ts.push_back((hdr.tsval, now)),
                None => ds.pending_ts.push_back((hdr.tsval, now)),
                _ => match ds.pending_ts.binary_search_by_key(&hdr.tsval, |&(k, _)| k) {
                    Ok(i) => ds.pending_ts[i].1 = now,
                    Err(i) => ds.pending_ts.insert(i, (hdr.tsval, now)),
                },
            }
        } else if hdr.flags.ack && !hdr.flags.syn {
            ds.pure_acks += 1;
            if hdr.ack == ds.last_ack_seen && hdr.ack > 0 {
                ds.dup_acks += 1;
            }
        }
        if hdr.flags.ack {
            ds.last_ack_seen = ds.last_ack_seen.max(hdr.ack);
        }
    }

    /// Flow duration at the tap, seconds.
    pub fn duration_s(&self) -> f64 {
        match self.first_seen {
            Some(t0) => self.last_seen.since(t0).as_secs_f64(),
            None => 0.0,
        }
    }

    /// Delay from the first SYN to the first server payload byte at
    /// this tap — the paper's "first packet arrival" feature.
    pub fn first_payload_delay_s(&self) -> f64 {
        match (self.syn_at, self.dir[1].first_payload) {
            (Some(syn), Some(fp)) => fp.since(syn).as_secs_f64(),
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqd_simnet::ids::FlowId;
    use vqd_simnet::packet::TcpFlags;

    fn hdr(from_initiator: bool, seq: u64, len: u32, ack: u64, flags: TcpFlags, ts: u64) -> TcpHdr {
        TcpHdr {
            flow: FlowId(0),
            from_initiator,
            dport: 80,
            sport: 40000,
            seq,
            ack,
            len,
            flags,
            wnd: 65535,
            mss: 1460,
            tsval: SimTime(ts),
            tsecr: SimTime::ZERO,
            is_retx: false,
        }
    }

    #[test]
    fn counts_directions_separately() {
        let mut a = FlowAnalyzer::default();
        a.observe(SimTime(0), &hdr(true, 0, 0, 0, TcpFlags::SYN, 1));
        a.observe(SimTime(10), &hdr(false, 0, 0, 1, TcpFlags::SYN_ACK, 2));
        a.observe(SimTime(20), &hdr(true, 1, 100, 1, TcpFlags::DATA, 3));
        a.observe(SimTime(30), &hdr(false, 1, 1000, 101, TcpFlags::DATA, 4));
        assert_eq!(a.dir[0].data_pkts, 1);
        assert_eq!(a.dir[0].data_bytes, 100);
        assert_eq!(a.dir[1].data_pkts, 1);
        assert_eq!(a.dir[1].data_bytes, 1000);
        assert_eq!(a.syn_count, 2);
    }

    #[test]
    fn detects_retransmission_and_holefill() {
        let mut a = FlowAnalyzer::default();
        // In-order 0..1000, 1000..2000, then hole 3000..4000 (2000..3000
        // lost upstream), then the hole fill 2000..3000, then a true
        // retransmission of 0..1000.
        a.observe(SimTime(0), &hdr(false, 0, 1000, 0, TcpFlags::DATA, 1));
        a.observe(SimTime(1), &hdr(false, 1000, 1000, 0, TcpFlags::DATA, 2));
        a.observe(SimTime(2), &hdr(false, 3000, 1000, 0, TcpFlags::DATA, 3));
        a.observe(SimTime(3), &hdr(false, 2000, 1000, 0, TcpFlags::DATA, 4));
        a.observe(SimTime(4), &hdr(false, 0, 1000, 0, TcpFlags::DATA, 5));
        let d = &a.dir[1];
        assert_eq!(d.data_pkts, 5);
        assert_eq!(d.ooo_pkts, 1, "hole fill");
        assert_eq!(d.retx_pkts, 1, "true retx");
        assert_eq!(d.retx_bytes, 1000);
    }

    #[test]
    fn rtt_from_timestamp_echo() {
        let mut a = FlowAnalyzer::default();
        // Server data with tsval=100 at t=1ms; client ACK echoing 100
        // at t=21ms → 20 ms RTT sample for the s2c direction.
        a.observe(
            SimTime(1_000_000),
            &hdr(false, 0, 1000, 0, TcpFlags::DATA, 100),
        );
        let mut ack = hdr(true, 1, 0, 1000, TcpFlags::DATA, 200);
        ack.tsecr = SimTime(100);
        a.observe(SimTime(21_000_000), &ack);
        assert_eq!(a.dir[1].rtt.count(), 1);
        assert!((a.dir[1].rtt.mean() - 0.020).abs() < 1e-9);
    }

    #[test]
    fn dup_acks_counted() {
        let mut a = FlowAnalyzer::default();
        for i in 0..4 {
            a.observe(SimTime(i), &hdr(true, 1, 0, 5000, TcpFlags::DATA, i));
        }
        // First ACK at 5000 sets the baseline; 3 duplicates follow.
        assert_eq!(a.dir[0].dup_acks, 3);
        assert_eq!(a.dir[0].pure_acks, 4);
    }

    #[test]
    fn first_payload_delay() {
        let mut a = FlowAnalyzer::default();
        a.observe(
            SimTime::from_millis(5),
            &hdr(true, 0, 0, 0, TcpFlags::SYN, 1),
        );
        a.observe(
            SimTime::from_millis(55),
            &hdr(false, 0, 0, 1, TcpFlags::SYN_ACK, 2),
        );
        a.observe(
            SimTime::from_millis(205),
            &hdr(false, 1, 1000, 1, TcpFlags::DATA, 3),
        );
        assert!((a.first_payload_delay_s() - 0.200).abs() < 1e-9);
        assert!((a.duration_s() - 0.200).abs() < 1e-9);
    }

    #[test]
    fn zero_window_tracked() {
        let mut a = FlowAnalyzer::default();
        let mut h = hdr(true, 1, 0, 1000, TcpFlags::DATA, 1);
        h.wnd = 0;
        a.observe(SimTime(0), &h);
        assert_eq!(a.dir[0].zero_wnd, 1);
        assert_eq!(a.dir[0].wnd.min(), 0.0);
    }

    #[test]
    fn seq_tracker_merges_intervals() {
        let mut t = SeqTracker::default();
        assert_eq!(t.classify(0, 100), SegKind::InOrder);
        assert_eq!(t.classify(200, 100), SegKind::InOrder);
        // 100..200 fills the hole and merges all three.
        assert_eq!(t.classify(100, 100), SegKind::HoleFill);
        // Everything covered now.
        assert_eq!(t.classify(50, 200), SegKind::Retx);
        assert_eq!(t.seen.len(), 1);
    }
}
