//! Vantage points: assembling a probe's view into a named metric
//! vector.
//!
//! A [`VpData`] holds everything one probe (mobile / router / server)
//! measured during a run: tstat-style analyzers for each video flow it
//! saw, hardware samples, NIC samples and radio samples.
//! [`VpData::metrics_for`] flattens that into `(name, value)` pairs
//! namespaced `"<vp>.<group>.<metric>"` — the raw feature columns the
//! detection system consumes. A feature a probe cannot measure (RSSI at
//! the server) is simply absent, which is how VP subsets and partial
//! deployments (Section 6.2 of the paper) are expressed.

use std::cell::RefCell;
use std::rc::Rc;

use vqd_simnet::engine::{PacketObserver, TapDir, TapPoint};
use vqd_simnet::ids::{FlowId, HostId};
use vqd_simnet::packet::{Packet, TransportHdr};
use vqd_simnet::time::SimTime;

use crate::sampler::{HwAccum, NicAccum, PhyAccum};
use crate::tstat::{DirStats, FlowAnalyzer};

/// All data one vantage point collected during a run.
#[derive(Debug)]
pub struct VpData {
    /// Probe name — becomes the feature-name prefix ("mobile", …).
    pub name: String,
    /// Host the probe runs on.
    pub host: HostId,
    /// Only flows to these server ports are analyzed (the video flows;
    /// empty = analyze everything).
    pub video_ports: Vec<u16>,
    /// Per-flow tstat analyzers. A session has a handful of flows at
    /// most, so a linear scan beats hashing on the per-packet path.
    pub flows: Vec<(FlowId, FlowAnalyzer)>,
    /// Hardware samples.
    pub hw: HwAccum,
    /// NIC samples (discovered by the sampler on first tick).
    pub nics: Vec<NicAccum>,
    /// Optional role labels for egress links, set before the run by
    /// whoever knows the topology (testbed/deployment code).
    pub nic_labels: Vec<(vqd_simnet::ids::LinkId, String)>,
    /// Radio samples (empty for wired-only hosts).
    pub phy: PhyAccum,
}

/// Shared handle to a vantage point's data.
pub type VpHandle = Rc<RefCell<VpData>>;

impl VpData {
    /// Create a probe for `host` watching the given server ports.
    pub fn new(name: &str, host: HostId, video_ports: &[u16]) -> VpHandle {
        Rc::new(RefCell::new(VpData {
            name: name.to_string(),
            host,
            video_ports: video_ports.to_vec(),
            flows: Vec::new(),
            hw: HwAccum::default(),
            nics: Vec::new(),
            nic_labels: Vec::new(),
            phy: PhyAccum::default(),
        }))
    }

    /// Assign a stable role label ("wan", "lan", "wlan") to the NIC
    /// whose egress link is `link` — keeps feature names comparable
    /// across different topologies.
    pub fn label_nic(vp: &VpHandle, link: vqd_simnet::ids::LinkId, label: &str) {
        vp.borrow_mut().nic_labels.push((link, label.to_string()));
    }

    fn push(out: &mut Vec<(String, f64)>, vp: &str, name: &str, v: f64) {
        out.push((format!("{vp}.{name}"), v));
    }

    fn dir_metrics(out: &mut Vec<(String, f64)>, vp: &str, tag: &str, d: &DirStats, dur_s: f64) {
        let p = |out: &mut Vec<(String, f64)>, n: &str, v: f64| {
            Self::push(out, vp, &format!("tcp.{tag}.{n}"), v);
        };
        p(out, "pkts", d.pkts as f64);
        p(out, "bytes", d.bytes as f64);
        p(out, "data_pkts", d.data_pkts as f64);
        p(out, "data_bytes", d.data_bytes as f64);
        p(out, "retx_pkts", d.retx_pkts as f64);
        p(out, "retx_bytes", d.retx_bytes as f64);
        p(out, "ooo_pkts", d.ooo_pkts as f64);
        p(out, "pure_acks", d.pure_acks as f64);
        p(out, "dup_acks", d.dup_acks as f64);
        p(out, "zero_wnd", d.zero_wnd as f64);
        p(out, "wnd_avg", d.wnd.mean());
        p(out, "wnd_min", d.wnd.min());
        p(out, "wnd_max", d.wnd.max());
        p(out, "wnd_std", d.wnd.std());
        p(out, "mss", d.mss as f64);
        p(out, "rtt_avg", d.rtt.mean());
        p(out, "rtt_min", d.rtt.min());
        p(out, "rtt_max", d.rtt.max());
        p(out, "rtt_std", d.rtt.std());
        p(out, "rtt_cnt", d.rtt.count() as f64);
        p(out, "pkt_size_avg", d.pkt_size.mean());
        p(out, "pkt_size_std", d.pkt_size.std());
        p(out, "iat_avg", d.interarrival.mean());
        p(out, "iat_max", d.interarrival.max());
        p(out, "iat_std", d.interarrival.std());
        let tput = if dur_s > 0.0 {
            d.data_bytes as f64 * 8.0 / dur_s
        } else {
            0.0
        };
        p(out, "throughput_bps", tput);
    }

    /// Flush this probe's sampling totals and per-flow tstat states
    /// into the global observability recorder. Called once per session
    /// by the extraction code (after [`metrics_for`]); write-only, so
    /// it cannot perturb the collected view.
    ///
    /// [`metrics_for`]: VpData::metrics_for
    pub fn flush_obs(&self) {
        if !vqd_obs::enabled() {
            return;
        }
        let r = vqd_obs::recorder();
        r.counter_add("probes.samples.hw", self.hw.cpu.count());
        r.counter_add("probes.samples.phy", self.phy.rssi.count());
        let nic_samples: u64 = self.nics.iter().map(|n| n.tx_bps.count()).sum();
        r.counter_add("probes.samples.nic", nic_samples);
        for (_, a) in &self.flows {
            // tstat-style flow-state taxonomy: did this tap see the
            // handshake, and did the flow close while observed?
            let key = match (a.syn_count > 0, a.fin_count > 0) {
                (true, true) => "probes.tstat.flows_complete",
                (true, false) => "probes.tstat.flows_open",
                (false, _) => "probes.tstat.flows_midstream",
            };
            r.counter_add(key, 1);
        }
    }

    /// Flatten this probe's view of `flow` into named metrics. Returns
    /// `None` if the probe never saw the flow (e.g. the router probe in
    /// a cellular session).
    pub fn metrics_for(&self, flow: FlowId) -> Option<Vec<(String, f64)>> {
        let a = self
            .flows
            .iter()
            .find(|(f, _)| *f == flow)
            .map(|(_, a)| a)?;
        let vp = self.name.as_str();
        let mut out = Vec::with_capacity(96);
        let dur = a.duration_s();

        // Transport layer (both directions).
        Self::dir_metrics(&mut out, vp, "c2s", &a.dir[0], dur);
        Self::dir_metrics(&mut out, vp, "s2c", &a.dir[1], dur);
        Self::push(&mut out, vp, "tcp.duration_s", dur);
        Self::push(
            &mut out,
            vp,
            "tcp.first_payload_delay",
            a.first_payload_delay_s(),
        );
        Self::push(&mut out, vp, "tcp.syn_count", a.syn_count as f64);
        Self::push(&mut out, vp, "tcp.fin_count", a.fin_count as f64);
        Self::push(
            &mut out,
            vp,
            "tcp.total_pkts",
            (a.dir[0].pkts + a.dir[1].pkts) as f64,
        );
        Self::push(
            &mut out,
            vp,
            "tcp.total_data_bytes",
            (a.dir[0].data_bytes + a.dir[1].data_bytes) as f64,
        );

        // OS/hardware layer.
        let hw = &self.hw;
        for (n, w) in [
            ("cpu", &hw.cpu),
            ("mem_free", &hw.mem_free),
            ("mem_free_frac", &hw.mem_free_frac),
            ("io", &hw.io),
        ] {
            Self::push(&mut out, vp, &format!("hw.{n}_avg"), w.mean());
            Self::push(&mut out, vp, &format!("hw.{n}_min"), w.min());
            Self::push(&mut out, vp, &format!("hw.{n}_max"), w.max());
            Self::push(&mut out, vp, &format!("hw.{n}_std"), w.std());
        }

        // Link layer, per NIC (role-labelled).
        for nic in self.nics.iter() {
            let g = nic.label.clone();
            for (n, w) in [
                ("tx_bps", &nic.tx_bps),
                ("rx_bps", &nic.rx_bps),
                ("tx_util", &nic.tx_util),
                ("rx_util", &nic.rx_util),
            ] {
                Self::push(&mut out, vp, &format!("{g}.{n}_avg"), w.mean());
                Self::push(&mut out, vp, &format!("{g}.{n}_max"), w.max());
                Self::push(&mut out, vp, &format!("{g}.{n}_std"), w.std());
            }
            Self::push(
                &mut out,
                vp,
                &format!("{g}.tail_drops"),
                nic.tail_drops as f64,
            );
            Self::push(
                &mut out,
                vp,
                &format!("{g}.loss_drops"),
                nic.loss_drops as f64,
            );
            Self::push(&mut out, vp, &format!("{g}.mac_retx"), nic.mac_retx as f64);
        }

        // PHY/radio layer (only when a WLAN is attached).
        if self.phy.rssi.count() > 0 {
            let phy = &self.phy;
            Self::push(&mut out, vp, "phy.rssi_avg", phy.rssi.mean());
            Self::push(&mut out, vp, "phy.rssi_min", phy.rssi.min());
            Self::push(&mut out, vp, "phy.rssi_max", phy.rssi.max());
            Self::push(&mut out, vp, "phy.rssi_std", phy.rssi.std());
            Self::push(&mut out, vp, "phy.snr_avg", phy.snr.mean());
            Self::push(&mut out, vp, "phy.rate_avg", phy.phy_rate.mean());
            Self::push(&mut out, vp, "phy.rate_min", phy.phy_rate.min());
            Self::push(&mut out, vp, "phy.busy_avg", phy.busy.mean());
            Self::push(&mut out, vp, "phy.busy_max", phy.busy.max());
            Self::push(
                &mut out,
                vp,
                "phy.disconnections",
                phy.disconnections as f64,
            );
            Self::push(
                &mut out,
                vp,
                "phy.disconnected_samples",
                phy.disconnected_samples as f64,
            );
        }
        Some(out)
    }
}

/// The packet-tap observer feeding every vantage point.
pub struct ProbeSet {
    vps: Vec<VpHandle>,
    /// `host.idx() → index into vps`, densely indexed. Most taps are on
    /// hosts without a probe (ISP, backbone, neighbour stations); this
    /// lets `observe` skip them without borrowing any vantage point.
    /// Only populated when each probed host has exactly one probe (true
    /// for every topology in the repo); otherwise `observe` falls back
    /// to scanning `vps`.
    by_host: Option<Vec<Option<u32>>>,
}

impl ProbeSet {
    /// Observer over the given vantage points.
    pub fn new(vps: Vec<VpHandle>) -> Self {
        let mut by_host: Vec<Option<u32>> = Vec::new();
        let mut unique = true;
        for (i, vp) in vps.iter().enumerate() {
            let h = vp.borrow().host.idx();
            if by_host.len() <= h {
                by_host.resize(h + 1, None);
            }
            if by_host[h].is_some() {
                unique = false;
            }
            by_host[h] = Some(i as u32);
        }
        ProbeSet {
            vps,
            by_host: unique.then_some(by_host),
        }
    }

    /// Handles (for constructing the matching
    /// [`SamplerApp`](crate::sampler::SamplerApp) and for extraction).
    pub fn handles(&self) -> Vec<VpHandle> {
        self.vps.clone()
    }

    /// The vantage point named `name`.
    pub fn vp(&self, name: &str) -> Option<VpHandle> {
        self.vps.iter().find(|v| v.borrow().name == name).cloned()
    }
}

impl PacketObserver for ProbeSet {
    fn observe(&mut self, now: SimTime, tap: TapPoint, pkt: &Packet) {
        let TransportHdr::Tcp(hdr) = &pkt.hdr else {
            return;
        };
        // A transit host (the router) sees every forwarded packet at
        // two taps: ingress Rx and egress Tx. Count each packet once -
        // on Rx, plus Tx for locally originated traffic - the view of
        // a tstat instance bound to one monitoring interface.
        if tap.dir == TapDir::Tx && pkt.src != tap.host {
            return;
        }
        let feed = |vp: &mut VpData| {
            if !vp.video_ports.is_empty() && !vp.video_ports.contains(&hdr.dport) {
                return;
            }
            let i = match vp.flows.iter().position(|(f, _)| *f == hdr.flow) {
                Some(i) => i,
                None => {
                    vp.flows.push((hdr.flow, FlowAnalyzer::default()));
                    vp.flows.len() - 1
                }
            };
            let a = &mut vp.flows[i].1;
            a.observe(now, hdr);
            a.dst_port = hdr.dport;
        };
        match &self.by_host {
            Some(map) => {
                let Some(Some(i)) = map.get(tap.host.idx()) else {
                    return;
                };
                feed(&mut self.vps[*i as usize].borrow_mut());
            }
            None => {
                for vp in &self.vps {
                    let mut vp = vp.borrow_mut();
                    if vp.host == tap.host {
                        feed(&mut vp);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::SamplerApp;
    use vqd_simnet::engine::{App, Ctl, Harness, TcpEvent};
    use vqd_simnet::link::LinkConfig;
    use vqd_simnet::tcp::Side;
    use vqd_simnet::topology::TopologyBuilder;

    /// Minimal fetcher: client pulls `reply` bytes from a server app.
    struct Fetch {
        a: HostId,
        b: HostId,
        reply: u64,
    }
    impl App for Fetch {
        fn start(&mut self, ctl: &mut Ctl) {
            let f = ctl.tcp_connect(self.a, self.b, 80);
            ctl.tcp_send(f, 300);
        }
        fn on_tcp(&mut self, ev: TcpEvent, ctl: &mut Ctl) {
            match ev {
                TcpEvent::DataAvailable { flow, side, .. } => {
                    ctl.tcp_read_at(flow, side, u64::MAX);
                    if side == Side::Server {
                        ctl.tcp_send_from(flow, Side::Server, self.reply);
                        ctl.tcp_close_from(flow, Side::Server);
                    }
                }
                TcpEvent::PeerFin { flow, side } => {
                    ctl.tcp_read_at(flow, side, u64::MAX);
                    ctl.tcp_close_from(flow, side);
                }
                _ => {}
            }
        }
    }

    fn run_three_hop() -> (Vec<VpHandle>, FlowId) {
        let mut tb = TopologyBuilder::new();
        let m = tb.add_host("mobile");
        let r = tb.add_host("router");
        let s = tb.add_host("server");
        tb.add_duplex_link(m, r, LinkConfig::ethernet(50_000_000));
        let mut wan = LinkConfig::dsl_nominal();
        wan.loss = 0.03;
        wan.loss_burst = 2.0;
        tb.add_duplex_link(r, s, wan);
        let net = tb.build();
        let vps = vec![
            VpData::new("mobile", m, &[80]),
            VpData::new("router", r, &[80]),
            VpData::new("server", s, &[80]),
        ];
        let obs = ProbeSet::new(vps.clone());
        let mut sim = Harness::with_observer(net, obs);
        sim.add_app(Box::new(Fetch {
            a: m,
            b: s,
            reply: 400_000,
        }));
        sim.add_app(Box::new(SamplerApp::new(vps.clone())));
        sim.run_until(SimTime::from_secs(30));
        (vps, FlowId(0))
    }

    #[test]
    fn all_vps_see_the_flow() {
        let (vps, flow) = run_three_hop();
        for vp in &vps {
            let vp = vp.borrow();
            let m = vp
                .metrics_for(flow)
                .unwrap_or_else(|| panic!("{} missing flow", vp.name));
            assert!(m.len() > 80, "{} has {} metrics", vp.name, m.len());
            // All names carry the VP prefix.
            assert!(m.iter().all(|(n, _)| n.starts_with(&vp.name)));
            // Data flowed server→client.
            let bytes = m
                .iter()
                .find(|(n, _)| n.ends_with("tcp.s2c.data_bytes"))
                .unwrap()
                .1;
            assert!(bytes >= 400_000.0, "{}: {}", vp.name, bytes);
        }
    }

    #[test]
    fn loss_location_differentiates_vps() {
        // Loss is on the WAN (router↔server): the server tap sees its
        // own retransmissions; the mobile tap sees hole-fills but every
        // arriving segment once... while the router, upstream of the
        // lossy hop for s→c traffic, misses the dropped copies too.
        let (vps, flow) = run_three_hop();
        let get = |vp: &VpHandle, name: &str| -> f64 {
            let vp = vp.borrow();
            vp.metrics_for(flow)
                .unwrap()
                .iter()
                .find(|(n, _)| n.contains(name))
                .map(|(_, v)| *v)
                .unwrap()
        };
        let srv_retx = get(&vps[2], "tcp.s2c.retx_pkts");
        assert!(srv_retx > 0.0, "server must see retransmissions");
        // The mobile sees the retransmitted copies as hole fills (it
        // never saw the originals).
        let mob_ooo = get(&vps[0], "tcp.s2c.ooo_pkts");
        assert!(mob_ooo > 0.0, "mobile must see out-of-order fills");
        // RTT at the server spans the whole path and is ≥ the WAN RTT.
        let srv_rtt = get(&vps[2], "tcp.s2c.rtt_avg");
        assert!(srv_rtt > 0.08, "server rtt {srv_rtt}");
        // RTT at the mobile for c2s data (its ACK loop) is tiny... the
        // mobile measures s2c RTT as ~0 (data arrives, its own ACK
        // leaves immediately); its view of the *c2s* direction spans
        // the path.
        let mob_rtt_c2s = get(&vps[0], "tcp.c2s.rtt_avg");
        assert!(mob_rtt_c2s > 0.08, "mobile c2s rtt {mob_rtt_c2s}");
    }

    #[test]
    fn hw_and_nic_sampling_filled() {
        let (vps, flow) = run_three_hop();
        let vp = vps[1].borrow(); // router
        assert!(vp.hw.cpu.count() > 10);
        assert_eq!(vp.nics.len(), 2, "router has two NICs");
        let m = vp.metrics_for(flow).unwrap();
        let util = m
            .iter()
            .find(|(n, _)| n.contains("nic1.tx_bps_avg") || n.contains("nic0.tx_bps_avg"))
            .unwrap()
            .1;
        assert!(util > 0.0);
    }

    #[test]
    fn port_filter_excludes_background() {
        let (vps, _) = run_three_hop();
        // Only one flow (port 80) was analyzed per VP.
        for vp in &vps {
            assert_eq!(vp.borrow().flows.len(), 1);
        }
    }

    #[test]
    fn missing_flow_returns_none() {
        let (vps, _) = run_three_hop();
        assert!(vps[0].borrow().metrics_for(FlowId(99)).is_none());
    }
}
