//! Property-based tests of the passive flow analyzer.

use proptest::prelude::*;

use vqd_probes::FlowAnalyzer;
use vqd_simnet::ids::FlowId;
use vqd_simnet::packet::{TcpFlags, TcpHdr};
use vqd_simnet::time::SimTime;

fn hdr(from_initiator: bool, seq: u64, len: u32, ts: u64) -> TcpHdr {
    TcpHdr {
        flow: FlowId(0),
        from_initiator,
        dport: 80,
        sport: 40000,
        seq,
        ack: 0,
        len,
        flags: TcpFlags::DATA,
        wnd: 65535,
        mss: 1460,
        tsval: SimTime(ts),
        tsecr: SimTime::ZERO,
        is_retx: false,
    }
}

proptest! {
    /// Conservation: data_pkts = in-order + retx + holefill, and byte
    /// counters track payload exactly, for arbitrary segment streams.
    #[test]
    fn counter_conservation(
        segs in proptest::collection::vec((0u64..50, 1u32..1500), 1..300)
    ) {
        let mut a = FlowAnalyzer::default();
        let mut total_bytes = 0u64;
        for (i, &(block, len)) in segs.iter().enumerate() {
            let h = hdr(false, block * 1500, len, i as u64 + 1);
            a.observe(SimTime(i as u64 * 1000), &h);
            total_bytes += len as u64;
        }
        let d = &a.dir[1];
        prop_assert_eq!(d.data_pkts, segs.len() as u64);
        prop_assert_eq!(d.data_bytes, total_bytes);
        prop_assert!(d.retx_pkts + d.ooo_pkts <= d.data_pkts);
        prop_assert_eq!(d.pkt_size.count(), segs.len() as u64);
    }

    /// A strictly in-order stream never reports retransmissions or
    /// out-of-order segments.
    #[test]
    fn in_order_stream_is_clean(lens in proptest::collection::vec(1u32..1460, 1..200)) {
        let mut a = FlowAnalyzer::default();
        let mut seq = 0u64;
        for (i, &len) in lens.iter().enumerate() {
            a.observe(SimTime(i as u64), &hdr(false, seq, len, i as u64 + 1));
            seq += len as u64;
        }
        prop_assert_eq!(a.dir[1].retx_pkts, 0);
        prop_assert_eq!(a.dir[1].ooo_pkts, 0);
    }

    /// Replaying any already-seen segment is always classified as a
    /// retransmission.
    #[test]
    fn replay_is_retx(
        lens in proptest::collection::vec(1u32..1460, 2..50),
        pick in any::<prop::sample::Index>(),
    ) {
        let mut a = FlowAnalyzer::default();
        let mut offsets = Vec::new();
        let mut seq = 0u64;
        for (i, &len) in lens.iter().enumerate() {
            offsets.push((seq, len));
            a.observe(SimTime(i as u64), &hdr(false, seq, len, i as u64 + 1));
            seq += len as u64;
        }
        let before = a.dir[1].retx_pkts;
        let (s, l) = offsets[pick.index(offsets.len())];
        a.observe(SimTime(10_000), &hdr(false, s, l, 9999));
        prop_assert_eq!(a.dir[1].retx_pkts, before + 1);
    }

    /// Duration is non-negative and monotone with observation count.
    #[test]
    fn duration_monotone(times in proptest::collection::vec(0u64..1_000_000_000, 1..100)) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut a = FlowAnalyzer::default();
        let mut last = 0.0;
        for (i, &t) in sorted.iter().enumerate() {
            a.observe(SimTime(t), &hdr(true, i as u64, 1, i as u64 + 1));
            let d = a.duration_s();
            prop_assert!(d >= last);
            last = d;
        }
    }
}
