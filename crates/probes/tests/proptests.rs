//! Property-based tests of the passive flow analyzer.

use proptest::prelude::*;

use vqd_probes::FlowAnalyzer;
use vqd_simnet::ids::FlowId;
use vqd_simnet::packet::{TcpFlags, TcpHdr};
use vqd_simnet::time::SimTime;

fn hdr(from_initiator: bool, seq: u64, len: u32, ts: u64) -> TcpHdr {
    TcpHdr {
        flow: FlowId(0),
        from_initiator,
        dport: 80,
        sport: 40000,
        seq,
        ack: 0,
        len,
        flags: TcpFlags::DATA,
        wnd: 65535,
        mss: 1460,
        tsval: SimTime(ts),
        tsecr: SimTime::ZERO,
        is_retx: false,
    }
}

proptest! {
    /// Conservation: data_pkts = in-order + retx + holefill, and byte
    /// counters track payload exactly, for arbitrary segment streams.
    #[test]
    fn counter_conservation(
        segs in proptest::collection::vec((0u64..50, 1u32..1500), 1..300)
    ) {
        let mut a = FlowAnalyzer::default();
        let mut total_bytes = 0u64;
        for (i, &(block, len)) in segs.iter().enumerate() {
            let h = hdr(false, block * 1500, len, i as u64 + 1);
            a.observe(SimTime(i as u64 * 1000), &h);
            total_bytes += len as u64;
        }
        let d = &a.dir[1];
        prop_assert_eq!(d.data_pkts, segs.len() as u64);
        prop_assert_eq!(d.data_bytes, total_bytes);
        prop_assert!(d.retx_pkts + d.ooo_pkts <= d.data_pkts);
        prop_assert_eq!(d.pkt_size.count(), segs.len() as u64);
    }

    /// A strictly in-order stream never reports retransmissions or
    /// out-of-order segments.
    #[test]
    fn in_order_stream_is_clean(lens in proptest::collection::vec(1u32..1460, 1..200)) {
        let mut a = FlowAnalyzer::default();
        let mut seq = 0u64;
        for (i, &len) in lens.iter().enumerate() {
            a.observe(SimTime(i as u64), &hdr(false, seq, len, i as u64 + 1));
            seq += len as u64;
        }
        prop_assert_eq!(a.dir[1].retx_pkts, 0);
        prop_assert_eq!(a.dir[1].ooo_pkts, 0);
    }

    /// Replaying any already-seen segment is always classified as a
    /// retransmission.
    #[test]
    fn replay_is_retx(
        lens in proptest::collection::vec(1u32..1460, 2..50),
        pick in any::<prop::sample::Index>(),
    ) {
        let mut a = FlowAnalyzer::default();
        let mut offsets = Vec::new();
        let mut seq = 0u64;
        for (i, &len) in lens.iter().enumerate() {
            offsets.push((seq, len));
            a.observe(SimTime(i as u64), &hdr(false, seq, len, i as u64 + 1));
            seq += len as u64;
        }
        let before = a.dir[1].retx_pkts;
        let (s, l) = offsets[pick.index(offsets.len())];
        a.observe(SimTime(10_000), &hdr(false, s, l, 9999));
        prop_assert_eq!(a.dir[1].retx_pkts, before + 1);
    }

    /// Duration is non-negative and monotone with observation count.
    #[test]
    fn duration_monotone(times in proptest::collection::vec(0u64..1_000_000_000, 1..100)) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut a = FlowAnalyzer::default();
        let mut last = 0.0;
        for (i, &t) in sorted.iter().enumerate() {
            a.observe(SimTime(t), &hdr(true, i as u64, 1, i as u64 + 1));
            let d = a.duration_s();
            prop_assert!(d >= last);
            last = d;
        }
    }
}

// ---------------------------------------------------------------------------
// Write-ahead journal: write → rotate → truncate tail → read.
// ---------------------------------------------------------------------------

/// A fresh scratch directory per proptest case (cases run interleaved
/// across threads, so the process id alone is not unique enough).
fn journal_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "vqd-journal-prop-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

proptest! {
    /// The WAL invariant chain: arbitrary payloads written across
    /// rotated segments read back exactly; chopping bytes off the
    /// final segment yields a clean record prefix (torn tail, never a
    /// panic or a hard error); reopening the writer truncates the
    /// debris and appends continue seamlessly.
    #[test]
    fn journal_write_rotate_truncate_read(
        payloads in proptest::collection::vec(
            proptest::collection::vec(proptest::prelude::any::<u8>(), 0..200), 1..50),
        segment_bytes in 64u64..512,
        chop in 1u64..96,
        more in proptest::collection::vec(
            proptest::collection::vec(proptest::prelude::any::<u8>(), 0..120), 0..8),
    ) {
        use vqd_probes::journal::{self, JournalConfig, JournalWriter};

        let dir = journal_dir();
        let cfg = JournalConfig { segment_bytes, flush_every: 1 };

        // Write: every append acks its seq, flush_every=1 makes all
        // of it durable.
        let (mut w, scan0) = JournalWriter::open(&dir, cfg.clone()).unwrap();
        prop_assert_eq!(scan0.next_seq(), 0);
        for (i, p) in payloads.iter().enumerate() {
            prop_assert_eq!(w.append(p).unwrap(), i as u64);
        }
        w.flush().unwrap();
        drop(w);

        // Read: bit-exact, in order, across however many segments the
        // small rotation size produced.
        let full = journal::scan(&dir).unwrap();
        prop_assert!(full.torn.is_none());
        prop_assert_eq!(full.records.len(), payloads.len());
        for (i, p) in payloads.iter().enumerate() {
            prop_assert_eq!(full.record(i as u64), Some(p.as_slice()));
        }

        // Truncate: chop bytes off the final segment, as a crash
        // mid-write would. The scan still returns a clean prefix.
        let last = full.segments.last().unwrap().path.clone();
        let len = std::fs::metadata(&last).unwrap().len();
        let cut_len = len.saturating_sub(chop);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&last)
            .unwrap()
            .set_len(cut_len)
            .unwrap();
        let cut = journal::scan(&dir).unwrap();
        prop_assert!(cut.next_seq() <= full.next_seq());
        for i in cut.first_seq()..cut.next_seq() {
            prop_assert_eq!(cut.record(i), Some(payloads[i as usize].as_slice()));
        }

        // Recover: the writer open truncates the debris; appends pick
        // up at the surviving seq and read back alongside the prefix.
        let (mut w2, scan2) = JournalWriter::open(&dir, cfg).unwrap();
        let base = scan2.next_seq();
        prop_assert_eq!(base, cut.next_seq());
        for (i, p) in more.iter().enumerate() {
            prop_assert_eq!(w2.append(p).unwrap(), base + i as u64);
        }
        w2.flush().unwrap();
        drop(w2);
        let fin = journal::scan(&dir).unwrap();
        prop_assert!(fin.torn.is_none());
        prop_assert_eq!(fin.next_seq(), base + more.len() as u64);
        for i in 0..base {
            prop_assert_eq!(fin.record(i), Some(payloads[i as usize].as_slice()));
        }
        for (i, p) in more.iter().enumerate() {
            prop_assert_eq!(fin.record(base + i as u64), Some(p.as_slice()));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
