//! The discrete-event engine: central network state, the event queue,
//! application plumbing and passive observation taps.
//!
//! [`Network`] owns every host, link, shared medium and TCP flow.
//! Events are a plain enum processed in one dispatcher, ordered by
//! `(time, sequence)` so runs are bit-for-bit deterministic for a given
//! seed. The queue is a hierarchical timer wheel (see [`crate::sched`])
//! with the original binary heap retained as a differential oracle.
//! User logic implements [`App`]; measurement implements
//! [`PacketObserver`] and is offered every packet at every NIC tap,
//! plus every drop — exactly the visibility a mirror-port `tstat`
//! deployment has.

use std::collections::VecDeque;

use crate::host::Host;
use crate::ids::{AppId, FlowId, HostId, LinkId, MediumId};
use crate::link::{EnqueueOutcome, LinkCounters, OneWayLink};
use crate::medium::{MediumGrant, SharedMedium};
use crate::packet::{Packet, TransportHdr, UdpHdr};
use crate::rng::SimRng;
use crate::sched::{default_scheduler, EventQueue, SchedStats, SchedulerKind};
use crate::tcp::{FlowState, Side, TcpActions, TcpAppEvent, TcpFlow};
use crate::time::{SimDuration, SimTime};
use crate::udp::UdpTable;

pub use crate::tcp::TcpAppEvent as TcpEvent;

/// Direction of a packet at a tap point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapDir {
    /// The host is sending the packet out of this link.
    Tx,
    /// The host received the packet from this link.
    Rx,
}

/// Where a packet was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapPoint {
    /// The host whose NIC saw the packet.
    pub host: HostId,
    /// The link the packet was travelling on.
    pub link: LinkId,
    /// Direction relative to `host`.
    pub dir: TapDir,
}

/// Why a packet vanished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropKind {
    /// Drop-tail queue overflow (congestion).
    Queue,
    /// Random loss or exhausted MAC retries.
    Loss,
    /// No route to the destination.
    NoRoute,
}

/// Passive packet observation: sees every packet at every NIC.
pub trait PacketObserver {
    /// A packet passed tap point `tap`.
    fn observe(&mut self, now: SimTime, tap: TapPoint, pkt: &Packet);
    /// A packet was dropped on `link`.
    fn on_drop(&mut self, _now: SimTime, _link: LinkId, _pkt: &Packet, _kind: DropKind) {}
}

/// Observer that ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;
impl PacketObserver for NullObserver {
    fn observe(&mut self, _now: SimTime, _tap: TapPoint, _pkt: &Packet) {}
}

/// A UDP datagram delivered to a bound socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpEvent {
    /// Host the datagram arrived at.
    pub host: HostId,
    /// Destination port.
    pub dst_port: u16,
    /// Source host.
    pub src: HostId,
    /// Source port.
    pub src_port: u16,
    /// Payload bytes.
    pub len: u32,
}

/// Simulation application logic (video players, traffic generators,
/// fault controllers, probes' periodic samplers, …).
#[allow(unused_variables)]
pub trait App {
    /// Called once when the harness starts running.
    fn start(&mut self, ctl: &mut Ctl) {}
    /// A timer scheduled via [`Ctl::timer`] fired.
    fn on_timer(&mut self, token: u64, ctl: &mut Ctl) {}
    /// A TCP event for a flow this app owns/listens on.
    fn on_tcp(&mut self, ev: TcpEvent, ctl: &mut Ctl) {}
    /// A UDP datagram for a port this app bound.
    fn on_udp(&mut self, ev: UdpEvent, ctl: &mut Ctl) {}
}

/// Scheduled event kinds (internal).
#[derive(Debug)]
enum Ev {
    /// A link's transmitter finished serialising its in-flight packet.
    LinkTxDone { link: LinkId },
    /// A packet completed propagation and arrives at the link's far end.
    Deliver { link: LinkId, pkt: Packet },
    /// TCP retransmission/persist timer entry. `wheel_gen` identifies
    /// the entry against its per-flow [`TimerSlot`]; a mismatch means
    /// the entry was superseded and is dropped without touching the
    /// flow.
    TcpTimer {
        flow: FlowId,
        side: Side,
        wheel_gen: u64,
    },
    /// Application timer.
    AppTimer { app: AppId, token: u64 },
    /// Periodic shared-medium state update.
    MediumTick { medium: MediumId },
}

/// The deadline a TCP timer slot is armed for.
#[derive(Debug, Clone, Copy)]
struct TimerTarget {
    /// Absolute deadline.
    at: SimTime,
    /// The flow's `timer_gen` at arm time (validity check at fire).
    gen: u64,
    /// The engine sequence number drawn at arm time — the entry fires
    /// at exactly `(at, seq)`, the same total-order key the heap
    /// engine gave the arm's own queue entry.
    seq: u64,
}

/// Per-(flow, side) retransmission-timer slot. Instead of one queue
/// entry per re-arm (TCP re-arms on every ACK, so the heap used to
/// fill up with dead gen-checked entries), each slot keeps at most one
/// live queue entry and lazily hops it forward when it fires early.
#[derive(Debug, Default, Clone, Copy)]
struct TimerSlot {
    /// The armed deadline, or `None` when disarmed/fired.
    target: Option<TimerTarget>,
    /// The queue entry currently in flight for this slot: its
    /// scheduled time and `wheel_gen`, or `None` if no entry queued.
    sched: Option<(SimTime, u64)>,
    /// Monotonic counter distinguishing this slot's queue entries.
    wheel_gen: u64,
}

fn side_ix(side: Side) -> usize {
    match side {
        Side::Client => 0,
        Side::Server => 1,
    }
}

/// Summary of a flow for quick assertions and session accounting.
#[derive(Debug, Clone, Copy)]
pub struct FlowSummary {
    /// Lifecycle state.
    pub state: FlowState,
    /// True if the flow closed cleanly.
    pub complete: bool,
    /// Application bytes delivered to the client-side reader.
    pub client_bytes_read: u64,
    /// When the flow was opened.
    pub opened_at: SimTime,
    /// When the handshake completed, if it did.
    pub established_at: Option<SimTime>,
    /// When the flow closed, if it did.
    pub closed_at: Option<SimTime>,
}

/// Pending application notification (queued during dispatch, drained by
/// the harness loop).
enum AppNote {
    Tcp(AppId, TcpEvent),
    Udp(AppId, UdpEvent),
}

/// Reusable simulation storage. Corpus generation runs hundreds of
/// sessions per worker thread; recycling the event queue and the big
/// vectors between sessions (instead of reallocating from scratch)
/// keeps each session allocation-light. Obtain networks from an arena
/// via [`Network::new_in`] and return the storage at session end with
/// [`Harness::recycle_into`].
#[derive(Default)]
pub struct SimArena {
    queue: Option<EventQueue<Ev>>,
    hosts: Vec<Host>,
    links: Vec<OneWayLink>,
    media: Vec<Box<dyn SharedMedium>>,
    flows: Vec<TcpFlow>,
    flow_owner: Vec<AppId>,
    listeners: Vec<(HostId, u16, AppId)>,
    wifi_outcome: Vec<Option<MediumGrant>>,
    tcp_timers: Vec<[TimerSlot; 2]>,
    notes: VecDeque<AppNote>,
    actions_pool: Vec<TcpActions>,
    apps: Vec<Box<dyn App>>,
}

/// The network: all simulation state and the event queue.
pub struct Network {
    /// Hosts (indexed by [`HostId`]).
    pub hosts: Vec<Host>,
    /// One-way links (indexed by [`LinkId`]).
    pub links: Vec<OneWayLink>,
    media: Vec<Box<dyn SharedMedium>>,
    flows: Vec<TcpFlow>,
    flow_owner: Vec<AppId>,
    listeners: Vec<(HostId, u16, AppId)>,
    udp: UdpTable,
    queue: EventQueue<Ev>,
    /// Per-flow `[client, server]` retransmission-timer slots.
    tcp_timers: Vec<[TimerSlot; 2]>,
    /// Queued events that are neither medium ticks nor timer entries
    /// (maintained for [`Harness::idle`]).
    pending_other: usize,
    stats: SchedStats,
    seq: u64,
    now: SimTime,
    rng: SimRng,
    /// Outcome of the in-flight wireless transmission, per link.
    wifi_outcome: Vec<Option<MediumGrant>>,
    /// Default TCP receive buffer for new flows (bytes).
    pub tcp_rcv_buf: u32,
    notes: VecDeque<AppNote>,
    /// Spare [`TcpActions`] buffers. Every segment delivery fills and
    /// drains one; recycling them keeps the per-packet path free of
    /// `Vec` allocations.
    actions_pool: Vec<TcpActions>,
    next_eph_port: u16,
}

impl Network {
    /// An empty network with the given RNG seed (used for link jitter
    /// and loss draws; apps should use their own seeds).
    pub fn new(seed: u64) -> Self {
        Self::new_in(seed, &mut SimArena::default())
    }

    /// An empty network drawing its storage from `arena` (see
    /// [`SimArena`]). The recycled buffers are empty but keep their
    /// previous capacity.
    pub fn new_in(seed: u64, arena: &mut SimArena) -> Self {
        let kind = default_scheduler();
        let queue = match arena.queue.take() {
            Some(q) if q.kind() == kind => q,
            _ => EventQueue::new(kind),
        };
        Network {
            hosts: std::mem::take(&mut arena.hosts),
            links: std::mem::take(&mut arena.links),
            media: std::mem::take(&mut arena.media),
            flows: std::mem::take(&mut arena.flows),
            flow_owner: std::mem::take(&mut arena.flow_owner),
            listeners: std::mem::take(&mut arena.listeners),
            udp: UdpTable::new(),
            queue,
            tcp_timers: std::mem::take(&mut arena.tcp_timers),
            pending_other: 0,
            stats: SchedStats::default(),
            seq: 0,
            now: SimTime::ZERO,
            rng: SimRng::seed_from_u64(seed),
            wifi_outcome: std::mem::take(&mut arena.wifi_outcome),
            tcp_rcv_buf: 256 * 1024,
            notes: std::mem::take(&mut arena.notes),
            actions_pool: std::mem::take(&mut arena.actions_pool),
            next_eph_port: 40_000,
        }
    }

    /// Flush this network's accumulated counters into the global
    /// observability recorder. Called once per session from
    /// [`recycle_into`] — never from the event loop — so the per-event
    /// path stays untouched. Purely write-only: nothing here feeds
    /// back into simulation state, RNG draws or event order.
    ///
    /// [`recycle_into`]: Network::recycle_into
    fn flush_obs(&self) {
        if !vqd_obs::enabled() {
            return;
        }
        let r = vqd_obs::recorder();
        let s = &self.stats;
        r.counter_add("simnet.sched.scheduled", s.scheduled);
        r.counter_add("simnet.sched.dispatched", s.dispatched);
        r.counter_add("simnet.sched.timer_arms", s.timer_arms);
        r.counter_add("simnet.sched.timer_cancelled", s.timer_cancelled);
        r.counter_add("simnet.sched.timer_rescheduled", s.timer_rescheduled);
        r.counter_add("simnet.sched.timer_stale", s.timer_stale);
        // Occupancy histograms are keyed by scheduler kind so wheel
        // and heap runs stay comparable side by side.
        let (mean_key, peak_key) = match self.queue.kind() {
            SchedulerKind::TimerWheel => (
                "simnet.sched.wheel.occupancy_mean",
                "simnet.sched.wheel.occupancy_peak",
            ),
            SchedulerKind::BinaryHeap => (
                "simnet.sched.heap.occupancy_mean",
                "simnet.sched.heap.occupancy_peak",
            ),
        };
        if s.dispatched > 0 {
            r.hist_record(mean_key, s.occupancy_sum as f64 / s.dispatched as f64);
            r.hist_record(peak_key, s.occupancy_peak as f64);
        }
        let mut ctr = LinkCounters::default();
        for link in &self.links {
            let c = &link.ctr;
            ctr.enq_pkts += c.enq_pkts;
            ctr.enq_bytes += c.enq_bytes;
            ctr.drop_tail_pkts += c.drop_tail_pkts;
            ctr.drop_loss_pkts += c.drop_loss_pkts;
            ctr.delivered_pkts += c.delivered_pkts;
            ctr.delivered_bytes += c.delivered_bytes;
            ctr.mac_retx += c.mac_retx;
        }
        r.counter_add("simnet.link.enq_pkts", ctr.enq_pkts);
        r.counter_add("simnet.link.enq_bytes", ctr.enq_bytes);
        r.counter_add("simnet.link.drop_tail_pkts", ctr.drop_tail_pkts);
        r.counter_add("simnet.link.drop_loss_pkts", ctr.drop_loss_pkts);
        r.counter_add("simnet.link.delivered_pkts", ctr.delivered_pkts);
        r.counter_add("simnet.link.delivered_bytes", ctr.delivered_bytes);
        r.counter_add("simnet.link.mac_retx", ctr.mac_retx);
        let retx: u64 = self
            .flows
            .iter()
            .map(|f| {
                f.endpoint(Side::Client).stats.retx_pkts + f.endpoint(Side::Server).stats.retx_pkts
            })
            .sum();
        r.counter_add("simnet.tcp.retx_pkts", retx);
        r.counter_add("simnet.sessions", 1);
    }

    /// Return this network's storage to `arena` for the next session.
    pub fn recycle_into(mut self, arena: &mut SimArena) {
        self.flush_obs();
        self.queue.reset();
        arena.queue = Some(self.queue);
        self.hosts.clear();
        arena.hosts = self.hosts;
        self.links.clear();
        arena.links = self.links;
        self.media.clear();
        arena.media = self.media;
        self.flows.clear();
        arena.flows = self.flows;
        self.flow_owner.clear();
        arena.flow_owner = self.flow_owner;
        self.listeners.clear();
        arena.listeners = self.listeners;
        self.wifi_outcome.clear();
        arena.wifi_outcome = self.wifi_outcome;
        self.tcp_timers.clear();
        arena.tcp_timers = self.tcp_timers;
        self.notes.clear();
        arena.notes = self.notes;
        arena.actions_pool = self.actions_pool;
    }

    /// A cleared [`TcpActions`] buffer from the pool (or a fresh one).
    fn take_actions(&mut self) -> TcpActions {
        self.actions_pool.pop().unwrap_or_default()
    }

    /// Return a drained buffer to the pool, keeping its capacity.
    fn put_actions(&mut self, mut out: TcpActions) {
        out.packets.clear();
        out.timers.clear();
        out.events.clear();
        self.actions_pool.push(out);
    }

    /// Switch the event-queue implementation. Only legal while the
    /// queue is empty (i.e. before any medium/app/flow is added);
    /// differential tests use this to run the same scenario on both
    /// the wheel and the heap oracle.
    ///
    /// # Panics
    /// If events are already queued.
    pub fn set_scheduler(&mut self, kind: SchedulerKind) {
        if self.queue.kind() != kind {
            assert!(
                self.queue.is_empty(),
                "cannot switch scheduler with events queued"
            );
            self.queue = EventQueue::new(kind);
        }
    }

    /// Which event-queue implementation this network runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.queue.kind()
    }

    /// Scheduler observability counters for this network.
    pub fn sched_stats(&self) -> SchedStats {
        self.stats
    }

    /// Number of queued events (including lazily cancelled timers).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Add a host; returns its id.
    pub fn add_host(&mut self, host: Host) -> HostId {
        self.hosts.push(host);
        HostId(self.hosts.len() as u32 - 1)
    }

    /// Add a one-way link; returns its id.
    pub fn add_link(&mut self, link: OneWayLink) -> LinkId {
        self.links.push(link);
        self.wifi_outcome.push(None);
        LinkId(self.links.len() as u32 - 1)
    }

    /// Add a shared medium and start its 1 Hz tick.
    pub fn add_medium(&mut self, medium: Box<dyn SharedMedium>) -> MediumId {
        self.media.push(medium);
        let id = MediumId(self.media.len() as u32 - 1);
        self.schedule(SimDuration::from_secs(1), Ev::MediumTick { medium: id });
        id
    }

    /// Mutable access to a medium's concrete model (for fault
    /// injectors; downcast via `as_any_mut`).
    pub fn medium_mut(&mut self, id: MediumId) -> &mut dyn SharedMedium {
        &mut *self.media[id.idx()]
    }

    /// Read access to a medium.
    pub fn medium(&self, id: MediumId) -> &dyn SharedMedium {
        &*self.media[id.idx()]
    }

    /// Number of media attached.
    pub fn medium_count(&self) -> usize {
        self.media.len()
    }

    /// A flow by id.
    pub fn flow(&self, id: FlowId) -> Option<&TcpFlow> {
        self.flows.get(id.idx())
    }

    /// Quick summary of a flow.
    pub fn flow_stats(&self, id: FlowId) -> Option<FlowSummary> {
        self.flows.get(id.idx()).map(|f| FlowSummary {
            state: f.state,
            complete: f.complete,
            client_bytes_read: f.endpoint(Side::Client).bytes_read(),
            opened_at: f.opened_at,
            established_at: f.established_at,
            closed_at: f.closed_at,
        })
    }

    /// The one-way link from `a` to `b`, if they are adjacent.
    pub fn link_between(&self, a: HostId, b: HostId) -> Option<LinkId> {
        self.links
            .iter()
            .position(|l| l.from == a && l.to == b)
            .map(|i| LinkId(i as u32))
    }

    /// Smallest egress payload MTU of `host` (the MSS it advertises).
    fn host_mss(&self, host: HostId) -> u32 {
        self.links
            .iter()
            .filter(|l| l.from == host)
            .map(|l| l.cfg.mtu_payload)
            .min()
            .unwrap_or(1460)
    }

    fn schedule(&mut self, delay: SimDuration, ev: Ev) {
        let at = self.now + delay;
        self.seq += 1;
        if !matches!(ev, Ev::MediumTick { .. } | Ev::TcpTimer { .. }) {
            self.pending_other += 1;
        }
        self.stats.scheduled += 1;
        self.queue.push(at.0, self.seq, ev);
    }

    /// Arm (or re-arm) the retransmission timer for `(flow, side)`.
    ///
    /// Draws a sequence number exactly like `schedule` did when every
    /// arm pushed its own queue entry — the shared seq stream, and
    /// therefore every downstream RNG draw and corpus byte, is
    /// unchanged — but only enqueues when the slot has no entry or its
    /// entry is later than the new deadline. The common re-arm-on-ACK
    /// case just updates the slot target and lets the queued entry hop
    /// forward lazily when it fires.
    fn arm_tcp_timer(&mut self, flow: FlowId, side: Side, gen: u64, delay: SimDuration) {
        let at = self.now + delay;
        self.seq += 1;
        let seq = self.seq;
        self.stats.timer_arms += 1;
        let slot = &mut self.tcp_timers[flow.idx()][side_ix(side)];
        slot.target = Some(TimerTarget { at, gen, seq });
        let need_entry = match slot.sched {
            None => true,
            Some((s, _)) => s > at,
        };
        if need_entry {
            slot.wheel_gen += 1;
            let wheel_gen = slot.wheel_gen;
            slot.sched = Some((at, wheel_gen));
            self.stats.scheduled += 1;
            self.queue.push(
                at.0,
                seq,
                Ev::TcpTimer {
                    flow,
                    side,
                    wheel_gen,
                },
            );
        }
    }

    /// True if any flow still has a validly armed retransmission
    /// timer (i.e. one that will actually fire, not a cancelled slot).
    fn any_live_tcp_timer(&self) -> bool {
        self.tcp_timers.iter().zip(&self.flows).any(|(slots, f)| {
            [Side::Client, Side::Server].iter().any(|&side| {
                slots[side_ix(side)]
                    .target
                    .is_some_and(|tg| f.timer_valid(side, tg.gen))
            })
        })
    }

    // ------------------------------------------------------------------
    // Packet movement
    // ------------------------------------------------------------------

    /// Inject a packet at its source host (route lookup + first hop).
    fn inject<O: PacketObserver + ?Sized>(&mut self, pkt: Packet, obs: &mut O) {
        let src = pkt.src;
        self.forward_from(src, pkt, obs);
    }

    /// Forward `pkt` out of `host` toward `pkt.dst`.
    fn forward_from<O: PacketObserver + ?Sized>(&mut self, host: HostId, pkt: Packet, obs: &mut O) {
        let Some(link_id) = self.hosts[host.idx()].route_to(pkt.dst) else {
            obs.on_drop(self.now, LinkId(u32::MAX), &pkt, DropKind::NoRoute);
            return;
        };
        obs.observe(
            self.now,
            TapPoint {
                host,
                link: link_id,
                dir: TapDir::Tx,
            },
            &pkt,
        );
        let link = &mut self.links[link_id.idx()];
        match link.enqueue(pkt) {
            EnqueueOutcome::AcceptedIdle => self.start_tx(link_id),
            EnqueueOutcome::AcceptedQueued => {}
            EnqueueOutcome::Dropped => {
                // Counter already incremented inside enqueue; the
                // observer is told so router-side probes can count
                // local congestion drops. We need the packet back for
                // that — reconstructing is cheap since enqueue consumed
                // it only on success.
            }
        }
    }

    fn start_tx(&mut self, link_id: LinkId) {
        let (busy_for, grant) = {
            let link = &mut self.links[link_id.idx()];
            let medium = link.medium;
            let shared = link.shared_to_dst;
            let (pkt_size, pkt_dst) = {
                let p = link.begin_tx();
                (p.size, p.dst)
            };
            let from = link.from;
            let to = if shared { pkt_dst } else { link.to };
            match medium {
                None => {
                    let d = SimDuration::tx_time(pkt_size as u64, link.cfg.rate_bps);
                    link.ctr.busy_ns += d.0;
                    (d, None)
                }
                Some(m) => {
                    let g =
                        self.media[m.idx()].transmit(self.now, from, to, pkt_size, &mut self.rng);
                    let link = &mut self.links[link_id.idx()];
                    link.ctr.busy_ns += (g.access_delay + g.airtime).0;
                    link.ctr.mac_retx += g.mac_retries as u64;
                    (g.access_delay + g.airtime, Some(g))
                }
            }
        };
        self.wifi_outcome[link_id.idx()] = grant;
        self.schedule(busy_for, Ev::LinkTxDone { link: link_id });
    }

    fn link_tx_done<O: PacketObserver + ?Sized>(&mut self, link_id: LinkId, obs: &mut O) {
        let grant = self.wifi_outcome[link_id.idx()].take();
        let (pkt, delivered, delay) = {
            let link = &mut self.links[link_id.idx()];
            let pkt = link.finish_tx();
            match grant {
                Some(g) => {
                    // Wireless: medium already decided success; tiny
                    // propagation.
                    (pkt, g.delivered, SimDuration::from_micros(2))
                }
                None => {
                    let lost = link.sample_loss(&mut self.rng);
                    let delay = link.sample_delay(&mut self.rng);
                    (pkt, !lost, delay)
                }
            }
        };
        if delivered {
            // FIFO guarantee: never deliver before an earlier packet on
            // the same link.
            let link = &mut self.links[link_id.idx()];
            let at = (self.now + delay).max(link.last_delivery);
            link.last_delivery = at;
            let delay = at - self.now;
            self.schedule(delay, Ev::Deliver { link: link_id, pkt });
        } else {
            self.links[link_id.idx()].ctr.drop_loss_pkts += 1;
            obs.on_drop(self.now, link_id, &pkt, DropKind::Loss);
        }
        if self.links[link_id.idx()].has_backlog() {
            self.start_tx(link_id);
        }
    }

    fn deliver<O: PacketObserver + ?Sized>(&mut self, link_id: LinkId, pkt: Packet, obs: &mut O) {
        let l = &self.links[link_id.idx()];
        let to = if l.shared_to_dst { pkt.dst } else { l.to };
        {
            let link = &mut self.links[link_id.idx()];
            link.ctr.delivered_pkts += 1;
            link.ctr.delivered_bytes += pkt.size as u64;
        }
        obs.observe(
            self.now,
            TapPoint {
                host: to,
                link: link_id,
                dir: TapDir::Rx,
            },
            &pkt,
        );
        if pkt.dst != to {
            // Transit hop: forward on.
            self.forward_from(to, pkt, obs);
            return;
        }
        // Local delivery.
        match pkt.hdr {
            TransportHdr::Tcp(hdr) => {
                let mut out = self.take_actions();
                let Some(flow) = self.flows.get_mut(hdr.flow.idx()) else {
                    self.put_actions(out);
                    return;
                };
                let Some(side) = flow.side_of(to) else {
                    self.put_actions(out);
                    return;
                };
                flow.on_segment(side, &hdr, self.now, &mut out);
                self.apply_tcp_actions(hdr.flow, &mut out, obs);
                self.put_actions(out);
            }
            TransportHdr::Udp(hdr) => {
                if let Some(owner) = self.udp.lookup(to, hdr.dst_port) {
                    self.notes.push_back(AppNote::Udp(
                        owner,
                        UdpEvent {
                            host: to,
                            dst_port: hdr.dst_port,
                            src: pkt.src,
                            src_port: hdr.src_port,
                            len: hdr.len,
                        },
                    ));
                }
            }
        }
    }

    /// Apply and drain one [`TcpActions`] batch; the caller returns the
    /// emptied buffer to the pool via [`Network::put_actions`].
    fn apply_tcp_actions<O: PacketObserver + ?Sized>(
        &mut self,
        flow: FlowId,
        out: &mut TcpActions,
        obs: &mut O,
    ) {
        for t in out.timers.drain(..) {
            self.arm_tcp_timer(flow, t.side, t.gen, t.delay);
        }
        for ev in out.events.drain(..) {
            self.route_tcp_event(flow, ev);
        }
        for pkt in out.packets.drain(..) {
            self.inject(pkt, obs);
        }
    }

    fn route_tcp_event(&mut self, flow: FlowId, ev: TcpAppEvent) {
        let owner = self.flow_owner[flow.idx()];
        // Lazy listener lookup: listeners may register after the flow
        // was opened (app start order is arbitrary).
        let listener = {
            let f = &self.flows[flow.idx()];
            let (h, p) = (f.host(Side::Server), f.dst_port);
            self.listeners
                .iter()
                .find(|(lh, lp, _)| *lh == h && *lp == p)
                .map(|(_, _, a)| *a)
        };
        let server_side = listener.unwrap_or(owner);
        let by_side = |side: Side| match side {
            Side::Client => owner,
            Side::Server => server_side,
        };
        match ev {
            TcpAppEvent::Incoming { .. } => self.notes.push_back(AppNote::Tcp(server_side, ev)),
            TcpAppEvent::Connected { .. } => self.notes.push_back(AppNote::Tcp(owner, ev)),
            TcpAppEvent::DataAvailable { side, .. }
            | TcpAppEvent::SendDrained { side, .. }
            | TcpAppEvent::PeerFin { side, .. } => {
                self.notes.push_back(AppNote::Tcp(by_side(side), ev))
            }
            TcpAppEvent::Closed { .. } | TcpAppEvent::Aborted { .. } => {
                self.notes.push_back(AppNote::Tcp(owner, ev));
                if let Some(l) = listener {
                    if l != owner {
                        self.notes.push_back(AppNote::Tcp(l, ev));
                    }
                }
            }
        }
    }

    fn handle<O: PacketObserver + ?Sized>(&mut self, ev: Ev, seq: u64, obs: &mut O) {
        match ev {
            Ev::LinkTxDone { link } => self.link_tx_done(link, obs),
            Ev::Deliver { link, pkt } => self.deliver(link, pkt, obs),
            Ev::TcpTimer {
                flow,
                side,
                wheel_gen,
            } => {
                let slot = &mut self.tcp_timers[flow.idx()][side_ix(side)];
                // Superseded entry (a newer one was queued for an
                // earlier deadline): drop without any flow work.
                match slot.sched {
                    Some((_, wg)) if wg == wheel_gen => {}
                    _ => {
                        self.stats.timer_stale += 1;
                        return;
                    }
                }
                slot.sched = None;
                let Some(target) = slot.target else {
                    self.stats.timer_cancelled += 1;
                    return;
                };
                if target.at > self.now || (target.at == self.now && target.seq > seq) {
                    // Re-armed since this entry was queued: hop it to
                    // the stored `(at, seq)` — the exact total-order
                    // key the heap engine gave the surviving arm.
                    slot.wheel_gen += 1;
                    let wheel_gen = slot.wheel_gen;
                    slot.sched = Some((target.at, wheel_gen));
                    self.stats.timer_rescheduled += 1;
                    self.stats.scheduled += 1;
                    self.queue.push(
                        target.at.0,
                        target.seq,
                        Ev::TcpTimer {
                            flow,
                            side,
                            wheel_gen,
                        },
                    );
                    return;
                }
                slot.target = None;
                let mut out = self.take_actions();
                let Some(f) = self.flows.get_mut(flow.idx()) else {
                    self.put_actions(out);
                    return;
                };
                if !f.timer_valid(side, target.gen) {
                    self.stats.timer_cancelled += 1;
                    self.put_actions(out);
                    return;
                }
                f.on_timeout(side, self.now, &mut out);
                self.apply_tcp_actions(flow, &mut out, obs);
                self.put_actions(out);
            }
            Ev::AppTimer { app, token } => {
                // Routed by the harness (it owns the apps); stash as a
                // note using the UDP slot would be wrong — handled in
                // Harness::run_until directly.
                unreachable!("AppTimer handled by harness: {app} {token}")
            }
            Ev::MediumTick { medium } => {
                self.media[medium.idx()].on_tick(self.now, &mut self.rng);
                self.schedule(SimDuration::from_secs(1), Ev::MediumTick { medium });
            }
        }
    }
}

/// Control surface handed to applications. Wraps the network plus the
/// observer so any packets the app's actions produce are also taped.
pub struct Ctl<'a> {
    net: &'a mut Network,
    obs: &'a mut dyn PacketObserver,
    app: AppId,
}

impl<'a> Ctl<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.net.now
    }

    /// This app's id.
    pub fn app_id(&self) -> AppId {
        self.app
    }

    /// Schedule a timer for this app after `delay`; `token` is returned
    /// in [`App::on_timer`].
    pub fn timer(&mut self, delay: SimDuration, token: u64) {
        let app = self.app;
        self.net.schedule(delay, Ev::AppTimer { app, token });
    }

    /// Open a TCP connection from `client` to `server`:`dst_port`.
    /// This app owns the flow; a listener registered on the server
    /// port receives the server-side events.
    pub fn tcp_connect(&mut self, client: HostId, server: HostId, dst_port: u16) -> FlowId {
        let id = FlowId(self.net.flows.len() as u32);
        let mss_c = self.net.host_mss(client);
        let mss_s = self.net.host_mss(server);
        let src_port = self.net.next_eph_port;
        self.net.next_eph_port = self.net.next_eph_port.wrapping_add(1).max(40_000);
        let rcv = self.net.tcp_rcv_buf;
        let mut flow = TcpFlow::new(id, client, server, dst_port, src_port, mss_c, mss_s, rcv);
        let mut out = self.net.take_actions();
        flow.open(self.net.now, &mut out);
        self.net.flows.push(flow);
        self.net.flow_owner.push(self.app);
        self.net.tcp_timers.push([TimerSlot::default(); 2]);
        self.net.apply_tcp_actions(id, &mut out, self.obs);
        self.net.put_actions(out);
        id
    }

    /// Register this app as the listener for (host, port).
    pub fn tcp_listen(&mut self, host: HostId, port: u16) {
        let app = self.app;
        self.net.listeners.push((host, port, app));
    }

    /// Queue `bytes` of application data for sending from `side`.
    pub fn tcp_send_from(&mut self, flow: FlowId, side: Side, bytes: u64) {
        let mut out = self.net.take_actions();
        let Some(f) = self.net.flows.get_mut(flow.idx()) else {
            self.net.put_actions(out);
            return;
        };
        f.app_send(side, bytes, self.net.now, &mut out);
        self.net.apply_tcp_actions(flow, &mut out, self.obs);
        self.net.put_actions(out);
    }

    /// Convenience: queue data from the client side.
    pub fn tcp_send(&mut self, flow: FlowId, bytes: u64) {
        self.tcp_send_from(flow, Side::Client, bytes);
    }

    /// Read up to `max` in-order bytes at `side`; returns the count.
    pub fn tcp_read_at(&mut self, flow: FlowId, side: Side, max: u64) -> u64 {
        let mut out = self.net.take_actions();
        let Some(f) = self.net.flows.get_mut(flow.idx()) else {
            self.net.put_actions(out);
            return 0;
        };
        let n = f.app_read(side, max, self.net.now, &mut out);
        self.net.apply_tcp_actions(flow, &mut out, self.obs);
        self.net.put_actions(out);
        n
    }

    /// Convenience: read at the client side.
    pub fn tcp_read(&mut self, flow: FlowId, max: u64) -> u64 {
        self.tcp_read_at(flow, Side::Client, max)
    }

    /// Half-close `side` after everything queued has been sent.
    pub fn tcp_close_from(&mut self, flow: FlowId, side: Side) {
        let mut out = self.net.take_actions();
        let Some(f) = self.net.flows.get_mut(flow.idx()) else {
            self.net.put_actions(out);
            return;
        };
        f.app_close(side, self.net.now, &mut out);
        self.net.apply_tcp_actions(flow, &mut out, self.obs);
        self.net.put_actions(out);
    }

    /// Convenience used by client-driven flows: close the client side
    /// after the queued data drains.
    pub fn tcp_close_after_send(&mut self, flow: FlowId) {
        self.tcp_close_from(flow, Side::Client);
    }

    /// Abort a flow immediately.
    pub fn tcp_abort(&mut self, flow: FlowId) {
        let mut out = self.net.take_actions();
        let Some(f) = self.net.flows.get_mut(flow.idx()) else {
            self.net.put_actions(out);
            return;
        };
        f.abort(self.net.now, &mut out);
        self.net.apply_tcp_actions(flow, &mut out, self.obs);
        self.net.put_actions(out);
    }

    /// Send a UDP datagram.
    pub fn udp_send(&mut self, src: HostId, dst: HostId, src_port: u16, dst_port: u16, len: u32) {
        let pkt = Packet::udp(
            src,
            dst,
            UdpHdr {
                dst_port,
                src_port,
                len,
            },
            self.net.now,
        );
        self.net.inject(pkt, self.obs);
    }

    /// Bind a UDP port for this app.
    pub fn udp_bind(&mut self, host: HostId, port: u16) {
        let app = self.app;
        self.net.udp.bind(host, port, app);
    }

    /// Immutable network access (hosts, links, flows, media).
    pub fn net(&self) -> &Network {
        self.net
    }

    /// Mutable host access (resource models).
    pub fn host_mut(&mut self, h: HostId) -> &mut Host {
        &mut self.net.hosts[h.idx()]
    }

    /// Mutable link access (fault injectors reshape links live).
    pub fn link_mut(&mut self, l: LinkId) -> &mut OneWayLink {
        &mut self.net.links[l.idx()]
    }

    /// Mutable medium access (fault injectors reconfigure the WLAN).
    pub fn medium_mut(&mut self, m: MediumId) -> &mut dyn SharedMedium {
        self.net.medium_mut(m)
    }
}

/// The harness: network + applications + observer, plus the run loop.
pub struct Harness<O: PacketObserver = NullObserver> {
    /// The network under simulation.
    pub net: Network,
    /// The passive observer (probe taps).
    pub obs: O,
    apps: Vec<Box<dyn App>>,
    started: bool,
}

impl Harness<NullObserver> {
    /// Harness without packet observation; reseeds the network RNG.
    pub fn new(mut net: Network, seed: u64) -> Self {
        net.rng = SimRng::seed_from_u64(seed);
        Harness {
            net,
            obs: NullObserver,
            apps: Vec::new(),
            started: false,
        }
    }
}

impl<O: PacketObserver> Harness<O> {
    /// Harness with a packet observer.
    pub fn with_observer(net: Network, obs: O) -> Self {
        Harness {
            net,
            obs,
            apps: Vec::new(),
            started: false,
        }
    }

    /// Harness with a packet observer, reusing `arena`'s app storage.
    pub fn with_observer_in(net: Network, obs: O, arena: &mut SimArena) -> Self {
        Harness {
            net,
            obs,
            apps: std::mem::take(&mut arena.apps),
            started: false,
        }
    }

    /// Tear the session down, returning all reusable storage to
    /// `arena` (see [`SimArena`]); yields the observer so callers can
    /// still extract measurements.
    pub fn recycle_into(mut self, arena: &mut SimArena) -> O {
        self.net.recycle_into(arena);
        self.apps.clear();
        arena.apps = self.apps;
        self.obs
    }

    /// Scheduler observability counters (events dispatched, scheduled,
    /// timer cancellations, …). Pair with a wall clock and
    /// [`SchedStats::events_per_sec`] for throughput.
    pub fn sched_stats(&self) -> SchedStats {
        self.net.sched_stats()
    }

    /// Register an application; returns its id.
    pub fn add_app(&mut self, app: Box<dyn App>) -> AppId {
        self.apps.push(app);
        AppId(self.apps.len() as u32 - 1)
    }

    fn drain_notes(&mut self) {
        while let Some(note) = self.net.notes.pop_front() {
            match note {
                AppNote::Tcp(app, ev) => {
                    let mut a = std::mem::replace(&mut self.apps[app.idx()], Box::new(NoApp));
                    let mut ctl = Ctl {
                        net: &mut self.net,
                        obs: &mut self.obs,
                        app,
                    };
                    a.on_tcp(ev, &mut ctl);
                    self.apps[app.idx()] = a;
                }
                AppNote::Udp(app, ev) => {
                    let mut a = std::mem::replace(&mut self.apps[app.idx()], Box::new(NoApp));
                    let mut ctl = Ctl {
                        net: &mut self.net,
                        obs: &mut self.obs,
                        app,
                    };
                    a.on_udp(ev, &mut ctl);
                    self.apps[app.idx()] = a;
                }
            }
        }
    }

    /// Run the simulation until simulated time `t` (inclusive). Events
    /// scheduled past `t` stay queued for subsequent calls.
    pub fn run_until(&mut self, t: SimTime) {
        if !self.started {
            self.started = true;
            for i in 0..self.apps.len() {
                let app = AppId(i as u32);
                let mut a = std::mem::replace(&mut self.apps[i], Box::new(NoApp));
                let mut ctl = Ctl {
                    net: &mut self.net,
                    obs: &mut self.obs,
                    app,
                };
                a.start(&mut ctl);
                self.apps[i] = a;
            }
        }
        self.drain_notes();
        while let Some((at, seq, ev)) = self.net.queue.pop_before(t.0) {
            self.net.now = SimTime(at);
            self.net.stats.dispatched += 1;
            let occ = self.net.queue.len() as u64;
            self.net.stats.occupancy_sum += occ;
            if occ > self.net.stats.occupancy_peak {
                self.net.stats.occupancy_peak = occ;
            }
            if !matches!(ev, Ev::MediumTick { .. } | Ev::TcpTimer { .. }) {
                self.net.pending_other -= 1;
            }
            match ev {
                Ev::AppTimer { app, token } => {
                    let mut a = std::mem::replace(&mut self.apps[app.idx()], Box::new(NoApp));
                    let mut ctl = Ctl {
                        net: &mut self.net,
                        obs: &mut self.obs,
                        app,
                    };
                    a.on_timer(token, &mut ctl);
                    self.apps[app.idx()] = a;
                }
                other => self.net.handle(other, seq, &mut self.obs),
            }
            self.drain_notes();
        }
        if self.net.now < t {
            self.net.now = t;
        }
    }

    /// True if the simulation is quiescent: no packets in flight, no
    /// app timers pending, and no *validly armed* TCP timer. Self-
    /// rescheduling medium ticks and lazily cancelled timer entries
    /// still sitting in the queue do not count.
    pub fn idle(&self) -> bool {
        self.net.pending_other == 0 && !self.net.any_live_tcp_timer()
    }
}

/// Placeholder swapped in while an app's callback runs (any events it
/// would receive in that window would indicate an engine bug).
struct NoApp;
impl App for NoApp {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::topology::TopologyBuilder;

    /// Client fetches `n` bytes from a server app over one wire.
    struct Client {
        client: HostId,
        server: HostId,
        got: u64,
        flow: Option<FlowId>,
        done_at: Option<SimTime>,
    }
    impl App for Client {
        fn start(&mut self, ctl: &mut Ctl) {
            let f = ctl.tcp_connect(self.client, self.server, 80);
            self.flow = Some(f);
        }
        fn on_tcp(&mut self, ev: TcpEvent, ctl: &mut Ctl) {
            match ev {
                TcpEvent::Connected { flow } => {
                    // "GET": send a tiny request then wait for data.
                    ctl.tcp_send(flow, 300);
                }
                TcpEvent::DataAvailable { flow, .. } => {
                    self.got += ctl.tcp_read(flow, u64::MAX);
                }
                TcpEvent::PeerFin { flow, side } => {
                    self.got += ctl.tcp_read_at(flow, side, u64::MAX);
                    ctl.tcp_close_from(flow, side);
                }
                TcpEvent::Closed { .. } => self.done_at = Some(ctl.now()),
                _ => {}
            }
        }
    }

    /// Server responds to any request with `reply` bytes then FIN.
    struct Server {
        host: HostId,
        reply: u64,
    }
    impl App for Server {
        fn start(&mut self, ctl: &mut Ctl) {
            let h = self.host;
            ctl.tcp_listen(h, 80);
        }
        fn on_tcp(&mut self, ev: TcpEvent, ctl: &mut Ctl) {
            match ev {
                TcpEvent::DataAvailable { flow, side, .. } if side == Side::Server => {
                    ctl.tcp_read_at(flow, side, u64::MAX);
                    ctl.tcp_send_from(flow, Side::Server, self.reply);
                    ctl.tcp_close_from(flow, Side::Server);
                }
                _ => {}
            }
        }
    }

    fn two_host_net(cfg: LinkConfig) -> (Network, HostId, HostId) {
        let mut tb = TopologyBuilder::new();
        let a = tb.add_host("client");
        let b = tb.add_host("server");
        tb.add_duplex_link(a, b, cfg);
        (tb.build(), a, b)
    }

    #[test]
    fn request_response_over_clean_wire() {
        let (net, a, b) = two_host_net(LinkConfig::ethernet(10_000_000));
        let mut sim = Harness::new(net, 1);
        sim.add_app(Box::new(Client {
            client: a,
            server: b,
            got: 0,
            flow: None,
            done_at: None,
        }));
        sim.add_app(Box::new(Server {
            host: b,
            reply: 500_000,
        }));
        sim.run_until(SimTime::from_secs(30));
        let fs = sim.net.flow_stats(FlowId(0)).unwrap();
        assert!(fs.complete, "state={:?}", fs.state);
        // ~500 kB at 10 Mbit/s ≈ 0.4 s + handshake.
        let dur = fs.closed_at.unwrap().since(fs.opened_at).as_secs_f64();
        assert!(dur > 0.3 && dur < 3.0, "dur={dur}");
    }

    #[test]
    fn transfer_survives_lossy_link() {
        // Loss on the server→client (data) direction only: cumulative
        // ACKs absorb reverse-path drops without forcing a resend, so
        // a duplex-lossy link can complete with zero retransmissions
        // for seeds whose drops all land on the ACK path (as seed 7's
        // do) — which is exactly what this test must not depend on.
        let mut lossy = LinkConfig::ethernet(5_000_000);
        lossy.loss = 0.02;
        let mut tb = TopologyBuilder::new();
        let a = tb.add_host("client");
        let b = tb.add_host("server");
        tb.add_duplex_link_asym(a, b, LinkConfig::ethernet(5_000_000), lossy);
        let net = tb.build();
        let mut sim = Harness::new(net, 7);
        sim.add_app(Box::new(Client {
            client: a,
            server: b,
            got: 0,
            flow: None,
            done_at: None,
        }));
        sim.add_app(Box::new(Server {
            host: b,
            reply: 300_000,
        }));
        sim.run_until(SimTime::from_secs(120));
        let fs = sim.net.flow_stats(FlowId(0)).unwrap();
        assert!(
            fs.complete,
            "lossy transfer must still finish: {:?}",
            fs.state
        );
        let f = sim.net.flow(FlowId(0)).unwrap();
        assert!(
            f.endpoint(Side::Server).stats.retx_pkts > 0,
            "2% loss must cause retransmissions"
        );
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| -> (u64, u64) {
            let mut cfg = LinkConfig::ethernet(5_000_000);
            cfg.loss = 0.01;
            cfg.jitter_sd = SimDuration::from_millis(3);
            let (net, a, b) = two_host_net(cfg);
            let mut sim = Harness::new(net, seed);
            sim.add_app(Box::new(Client {
                client: a,
                server: b,
                got: 0,
                flow: None,
                done_at: None,
            }));
            sim.add_app(Box::new(Server {
                host: b,
                reply: 400_000,
            }));
            sim.run_until(SimTime::from_secs(60));
            let f = sim.net.flow(FlowId(0)).unwrap();
            (
                f.endpoint(Side::Server).stats.retx_pkts,
                f.closed_at.map(|t| t.0).unwrap_or(0),
            )
        };
        assert_eq!(run(3), run(3));
        // Different seeds should (with these parameters) differ.
        assert_ne!(run(3).1, run(4).1);
    }

    #[test]
    fn bottleneck_queue_causes_congestion_drops() {
        // 100 Mbit/s feeding a 2 Mbit/s bottleneck with a small queue.
        let mut tb = TopologyBuilder::new();
        let a = tb.add_host("client");
        let r = tb.add_host("router");
        let b = tb.add_host("server");
        tb.add_duplex_link(a, r, LinkConfig::ethernet(100_000_000));
        let mut thin = LinkConfig::ethernet(2_000_000);
        thin.queue_bytes = 16_000;
        tb.add_duplex_link(r, b, thin);
        let net = tb.build();
        let mut sim = Harness::new(net, 5);
        sim.add_app(Box::new(Client {
            client: a,
            server: b,
            got: 0,
            flow: None,
            done_at: None,
        }));
        sim.add_app(Box::new(Server {
            host: b,
            reply: 2_000_000,
        }));
        sim.run_until(SimTime::from_secs(60));
        let fs = sim.net.flow_stats(FlowId(0)).unwrap();
        assert!(fs.complete);
        // The server→router direction of the bottleneck is congested.
        let lb = sim.net.link_between(b, r).unwrap();
        assert!(
            sim.net.links[lb.idx()].ctr.drop_tail_pkts > 0,
            "expected tail drops at the bottleneck"
        );
        let f = sim.net.flow(FlowId(0)).unwrap();
        assert!(f.endpoint(Side::Server).stats.retx_pkts > 0);
    }

    #[test]
    fn udp_flood_reaches_bound_port() {
        struct Blaster {
            src: HostId,
            dst: HostId,
        }
        impl App for Blaster {
            fn start(&mut self, ctl: &mut Ctl) {
                ctl.timer(SimDuration::from_millis(1), 0);
            }
            fn on_timer(&mut self, _t: u64, ctl: &mut Ctl) {
                ctl.udp_send(self.src, self.dst, 1000, 5001, 1200);
                if ctl.now() < SimTime::from_millis(100) {
                    ctl.timer(SimDuration::from_millis(1), 0);
                }
            }
        }
        struct Sink {
            host: HostId,
            got: std::rc::Rc<std::cell::Cell<u32>>,
        }
        impl App for Sink {
            fn start(&mut self, ctl: &mut Ctl) {
                let h = self.host;
                ctl.udp_bind(h, 5001);
            }
            fn on_udp(&mut self, ev: UdpEvent, _ctl: &mut Ctl) {
                assert_eq!(ev.dst_port, 5001);
                self.got.set(self.got.get() + 1);
            }
        }
        let (net, a, b) = two_host_net(LinkConfig::ethernet(10_000_000));
        let got = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut sim = Harness::new(net, 1);
        sim.add_app(Box::new(Blaster { src: a, dst: b }));
        sim.add_app(Box::new(Sink {
            host: b,
            got: got.clone(),
        }));
        sim.run_until(SimTime::from_secs(1));
        assert!(got.get() >= 99, "got {}", got.get());
    }

    #[test]
    fn observer_sees_all_taps() {
        #[derive(Default)]
        struct Counter {
            tx: u64,
            rx: u64,
        }
        impl PacketObserver for Counter {
            fn observe(&mut self, _n: SimTime, tap: TapPoint, _p: &Packet) {
                match tap.dir {
                    TapDir::Tx => self.tx += 1,
                    TapDir::Rx => self.rx += 1,
                }
            }
        }
        let (net, a, b) = two_host_net(LinkConfig::ethernet(10_000_000));
        let mut sim = Harness::with_observer(net, Counter::default());
        sim.add_app(Box::new(Client {
            client: a,
            server: b,
            got: 0,
            flow: None,
            done_at: None,
        }));
        sim.add_app(Box::new(Server {
            host: b,
            reply: 50_000,
        }));
        sim.run_until(SimTime::from_secs(10));
        assert!(sim.obs.tx > 40);
        // No loss: every transmitted packet was received.
        assert_eq!(sim.obs.tx, sim.obs.rx);
    }

    #[test]
    fn idle_ignores_medium_ticks_and_cancelled_timers() {
        use crate::medium::PerfectMedium;

        // A shared medium keeps a MediumTick self-rescheduling once per
        // simulated second forever, and a completed TCP flow leaves its
        // last (lazily cancelled) timer entry sitting in the wheel.
        // Neither must keep `idle()` false once the transfer is done.
        let mut tb = TopologyBuilder::new();
        let sta = tb.add_host("station");
        let ap = tb.add_host("ap");
        let medium = tb.add_medium(Box::new(PerfectMedium::new(54_000_000)));
        tb.add_wireless(sta, ap, medium, 1460);
        let mut sim = Harness::new(tb.build(), 11);
        sim.add_app(Box::new(Client {
            client: sta,
            server: ap,
            got: 0,
            flow: None,
            done_at: None,
        }));
        sim.add_app(Box::new(Server {
            host: ap,
            reply: 200_000,
        }));

        // Mid-transfer: packets in flight, so not idle.
        sim.run_until(SimTime::from_millis(30));
        assert!(!sim.idle(), "mid-transfer must not be idle");

        sim.run_until(SimTime::from_secs(60));
        let fs = sim.net.flow_stats(FlowId(0)).unwrap();
        assert!(fs.complete, "state={:?}", fs.state);
        // The medium tick is still queued (it reschedules itself
        // forever), yet the simulation is quiescent.
        assert!(!sim.net.queue.is_empty(), "medium tick should be queued");
        assert!(
            sim.idle(),
            "medium ticks/cancelled timers must not block idle"
        );
    }

    #[test]
    fn zero_delay_timers_fire_in_schedule_order() {
        use std::cell::RefCell;
        use std::rc::Rc;

        // Same-timestamp events must dispatch in schedule (seq) order,
        // including a zero-delay timer armed from *within* a timer
        // callback at that same instant: it goes to the back of the
        // line, not the front.
        struct Ticker {
            order: Rc<RefCell<Vec<u64>>>,
        }
        impl App for Ticker {
            fn start(&mut self, ctl: &mut Ctl) {
                ctl.timer(SimDuration::from_millis(1), 99);
                ctl.timer(SimDuration::ZERO, 1);
                ctl.timer(SimDuration::ZERO, 2);
                ctl.timer(SimDuration::ZERO, 3);
            }
            fn on_timer(&mut self, token: u64, ctl: &mut Ctl) {
                self.order.borrow_mut().push(token);
                if token == 1 {
                    ctl.timer(SimDuration::ZERO, 4);
                }
            }
        }
        let (net, _, _) = two_host_net(LinkConfig::ethernet(10_000_000));
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Harness::new(net, 1);
        sim.add_app(Box::new(Ticker {
            order: Rc::clone(&order),
        }));
        sim.run_until(SimTime::from_millis(2));
        assert_eq!(*order.borrow(), vec![1, 2, 3, 4, 99]);
    }

    #[test]
    fn wheel_and_heap_dispatch_identical_traces() {
        use crate::sched::SchedulerKind;

        // The full per-packet tap trace — every (time, host, link,
        // direction) tuple, in dispatch order — must be identical under
        // the timer wheel and the binary-heap oracle. Loss makes this a
        // meaningful workout: TCP retransmission timers are armed,
        // rescheduled and lazily cancelled throughout.
        struct Recorder {
            log: Vec<(SimTime, TapPoint)>,
        }
        impl PacketObserver for Recorder {
            fn observe(&mut self, now: SimTime, tap: TapPoint, _p: &Packet) {
                self.log.push((now, tap));
            }
        }
        let run = |kind: SchedulerKind| -> (Vec<(SimTime, TapPoint)>, SchedStats) {
            let mut lossy = LinkConfig::ethernet(5_000_000);
            lossy.loss = 0.02;
            let mut tb = TopologyBuilder::new();
            let a = tb.add_host("client");
            let b = tb.add_host("server");
            tb.add_duplex_link_asym(a, b, LinkConfig::ethernet(5_000_000), lossy);
            let mut net = tb.build();
            net.set_scheduler(kind);
            net.rng = SimRng::seed_from_u64(7);
            let mut sim = Harness::with_observer(net, Recorder { log: Vec::new() });
            sim.add_app(Box::new(Client {
                client: a,
                server: b,
                got: 0,
                flow: None,
                done_at: None,
            }));
            sim.add_app(Box::new(Server {
                host: b,
                reply: 300_000,
            }));
            sim.run_until(SimTime::from_secs(120));
            assert!(sim.net.flow_stats(FlowId(0)).unwrap().complete);
            let stats = sim.sched_stats();
            (sim.obs.log, stats)
        };
        let (wheel, wheel_stats) = run(SchedulerKind::TimerWheel);
        let (heap, _) = run(SchedulerKind::BinaryHeap);
        assert!(
            wheel_stats.timer_rescheduled > 0,
            "lossy run should exercise TCP timer rescheduling"
        );
        assert!(!wheel.is_empty());
        assert_eq!(wheel, heap, "wheel and heap packet traces diverge");
    }
}
