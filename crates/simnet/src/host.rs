//! Hosts: end systems and routers.
//!
//! A host carries a forwarding table (static routes computed by the
//! [`TopologyBuilder`](crate::topology::TopologyBuilder)) and the
//! OS/hardware resource models the paper's probes sample: CPU
//! utilisation, free memory and I/O pressure. Applications and fault
//! injectors register *demand slots* against these models; the video
//! player asks the CPU model for decode headroom, and the `stress`-style
//! fault occupies slots exactly like the real tool occupies cores.

use crate::ids::{HostId, LinkId};

/// Multi-core CPU with named demand slots.
///
/// Demand is expressed in *cores* (a demand of `1.0` keeps one core
/// fully busy). Total utilisation is clamped to the core count; when the
/// CPU is oversubscribed every consumer gets a proportional share.
#[derive(Debug, Clone)]
pub struct CpuModel {
    /// Number of cores (fractional values are allowed for throttled
    /// devices).
    pub cores: f64,
    demands: Vec<(u64, f64)>,
    next_token: u64,
}

impl CpuModel {
    /// A CPU with the given core count.
    pub fn new(cores: f64) -> Self {
        assert!(cores > 0.0);
        CpuModel {
            cores,
            demands: Vec::new(),
            next_token: 0,
        }
    }

    /// Register a demand slot; returns a token used to update/remove it.
    pub fn register(&mut self, initial_cores: f64) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        self.demands.push((t, initial_cores.max(0.0)));
        t
    }

    /// Update the demand of a slot (no-op for unknown tokens).
    pub fn set_demand(&mut self, token: u64, cores: f64) {
        if let Some(e) = self.demands.iter_mut().find(|e| e.0 == token) {
            e.1 = cores.max(0.0);
        }
    }

    /// Remove a slot.
    pub fn remove(&mut self, token: u64) {
        self.demands.retain(|e| e.0 != token);
    }

    /// Sum of all demands, in cores (not clamped).
    pub fn total_demand(&self) -> f64 {
        self.demands.iter().map(|e| e.1).sum()
    }

    /// Utilisation in `[0, 1]` — what `/proc/stat` would report.
    pub fn utilization(&self) -> f64 {
        (self.total_demand() / self.cores).min(1.0)
    }

    /// The share of `want` cores a consumer actually receives, given
    /// everything else running (proportional fair share under
    /// oversubscription).
    pub fn granted(&self, want: f64, own_token: Option<u64>) -> f64 {
        let others: f64 = self
            .demands
            .iter()
            .filter(|e| Some(e.0) != own_token)
            .map(|e| e.1)
            .sum();
        let total = others + want;
        if total <= self.cores {
            want
        } else {
            want * self.cores / total
        }
    }
}

/// Memory with named usage slots; the probe samples `free`.
#[derive(Debug, Clone)]
pub struct MemoryModel {
    /// Installed memory in MiB.
    pub total_mb: f64,
    /// Memory used by the OS and pre-existing apps in MiB.
    pub baseline_mb: f64,
    used: Vec<(u64, f64)>,
    next_token: u64,
}

impl MemoryModel {
    /// A memory model with the given size and baseline occupancy.
    pub fn new(total_mb: f64, baseline_mb: f64) -> Self {
        assert!(total_mb > 0.0 && baseline_mb >= 0.0);
        MemoryModel {
            total_mb,
            baseline_mb,
            used: Vec::new(),
            next_token: 0,
        }
    }

    /// Register a usage slot; returns its token.
    pub fn register(&mut self, initial_mb: f64) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        self.used.push((t, initial_mb.max(0.0)));
        t
    }

    /// Update a slot's usage.
    pub fn set_used(&mut self, token: u64, mb: f64) {
        if let Some(e) = self.used.iter_mut().find(|e| e.0 == token) {
            e.1 = mb.max(0.0);
        }
    }

    /// Remove a slot.
    pub fn remove(&mut self, token: u64) {
        self.used.retain(|e| e.0 != token);
    }

    /// Free memory in MiB (floored at zero).
    pub fn free_mb(&self) -> f64 {
        (self.total_mb - self.baseline_mb - self.used.iter().map(|e| e.1).sum::<f64>()).max(0.0)
    }

    /// Fraction of memory free, in `[0, 1]`.
    pub fn free_frac(&self) -> f64 {
        self.free_mb() / self.total_mb
    }
}

/// A host in the topology.
#[derive(Debug, Clone)]
pub struct Host {
    /// Human-readable name ("mobile-1", "router", "server", …).
    pub name: String,
    /// CPU resource model.
    pub cpu: CpuModel,
    /// Memory resource model.
    pub mem: MemoryModel,
    /// I/O pressure in `[0, 1]` (disk/flash contention; adds decode
    /// jitter on the mobile).
    pub io_load: f64,
    /// Forwarding table: `fwd[dst.idx()]` = outgoing one-way link.
    pub fwd: Vec<Option<LinkId>>,
}

impl Host {
    /// A host with default (generous) hardware: 4 cores, 2 GiB RAM.
    pub fn new(name: impl Into<String>) -> Self {
        Host {
            name: name.into(),
            cpu: CpuModel::new(4.0),
            mem: MemoryModel::new(2048.0, 512.0),
            io_load: 0.0,
            fwd: Vec::new(),
        }
    }

    /// Outgoing link toward `dst`, if reachable.
    pub fn route_to(&self, dst: HostId) -> Option<LinkId> {
        self.fwd.get(dst.idx()).copied().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_utilization_clamps() {
        let mut cpu = CpuModel::new(2.0);
        let a = cpu.register(1.0);
        assert!((cpu.utilization() - 0.5).abs() < 1e-12);
        cpu.set_demand(a, 5.0);
        assert_eq!(cpu.utilization(), 1.0);
        cpu.remove(a);
        assert_eq!(cpu.utilization(), 0.0);
    }

    #[test]
    fn cpu_proportional_share() {
        let mut cpu = CpuModel::new(2.0);
        let _bg = cpu.register(3.0); // stress-style load
                                     // A decoder wanting 1 core gets 2 * 1/(3+1) = 0.5 cores.
        let got = cpu.granted(1.0, None);
        assert!((got - 0.5).abs() < 1e-12);
        // With headroom it gets everything it asks for.
        let mut idle = CpuModel::new(4.0);
        assert_eq!(idle.granted(1.0, None), 1.0);
        let t = idle.register(1.0);
        // Excluding our own existing demand avoids double counting.
        assert_eq!(idle.granted(1.0, Some(t)), 1.0);
    }

    #[test]
    fn memory_floor_at_zero() {
        let mut m = MemoryModel::new(1024.0, 512.0);
        let t = m.register(600.0);
        assert_eq!(m.free_mb(), 0.0);
        m.set_used(t, 100.0);
        assert!((m.free_mb() - 412.0).abs() < 1e-9);
        m.remove(t);
        assert!((m.free_frac() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn route_lookup() {
        let mut h = Host::new("r");
        h.fwd = vec![None, Some(LinkId(7))];
        assert_eq!(h.route_to(HostId(1)), Some(LinkId(7)));
        assert_eq!(h.route_to(HostId(0)), None);
        assert_eq!(h.route_to(HostId(9)), None);
    }

    #[test]
    fn unknown_token_is_noop() {
        let mut cpu = CpuModel::new(1.0);
        cpu.set_demand(42, 1.0);
        assert_eq!(cpu.utilization(), 0.0);
        let mut m = MemoryModel::new(100.0, 0.0);
        m.set_used(42, 50.0);
        assert_eq!(m.free_mb(), 100.0);
    }
}
