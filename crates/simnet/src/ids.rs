//! Typed identifiers for simulator entities.
//!
//! Every entity lives in a dense `Vec` inside the
//! [`Network`](crate::engine::Network); identifiers are indices wrapped
//! in newtypes so they cannot be confused with one another.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Index into the backing storage.
            #[inline]
            pub fn idx(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A host (end system or router) in the topology.
    HostId, "h"
);
id_type!(
    /// A one-way link. Duplex links are pairs of these.
    LinkId, "l"
);
id_type!(
    /// A network interface on a host (one per attached link/medium).
    IfaceId, "if"
);
id_type!(
    /// A TCP flow (a connection between two hosts).
    FlowId, "f"
);
id_type!(
    /// An application registered with the harness.
    AppId, "app"
);
id_type!(
    /// A shared wireless medium (one per WLAN broadcast domain).
    MediumId, "m"
);
id_type!(
    /// A UDP binding (host, port) that receives datagrams.
    UdpSockId, "u"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_distinct_types_and_display() {
        let h = HostId(3);
        let l = LinkId(3);
        assert_eq!(h.idx(), 3);
        assert_eq!(format!("{h}"), "h3");
        assert_eq!(format!("{l}"), "l3");
    }

    #[test]
    fn ids_hash_and_order() {
        let mut s = HashSet::new();
        s.insert(FlowId(1));
        s.insert(FlowId(2));
        s.insert(FlowId(1));
        assert_eq!(s.len(), 2);
        assert!(FlowId(1) < FlowId(2));
    }
}
