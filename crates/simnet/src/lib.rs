//! # vqd-simnet — deterministic packet-level network simulator
//!
//! A discrete-event simulator purpose-built to reproduce the testbed of
//! *"Identifying the Root Cause of Video Streaming Issues on Mobile
//! Devices"* (CoNEXT 2015): hosts with CPU/memory resource models, wired
//! duplex links with rate/delay/jitter/loss and drop-tail queues (the
//! `tc`/`netem` equivalent), a pluggable shared-medium abstraction for
//! 802.11 WLANs, a packet-level TCP Reno implementation, UDP, and a set
//! of background-traffic generators (the `iperf`/D-ITG equivalent).
//!
//! ## Design
//!
//! * **Deterministic.** Every run is a pure function of the seed: events
//!   are ordered by `(time, sequence-number)` and all randomness flows
//!   from [`rand::rngs::SmallRng`] instances seeded from a single root.
//! * **Central-state dispatch.** [`Network`](engine::Network) owns all
//!   hosts, links, flows and media; events are a plain `enum` matched in
//!   one dispatcher. There are no `Rc<RefCell<…>>` webs.
//! * **Synchronous.** The workload is CPU-bound simulation; following
//!   the guidance of the Tokio documentation itself, no async runtime is
//!   used.
//! * **Apps and observers plug in from above.** User logic implements
//!   [`engine::App`]; passive measurement implements
//!   [`engine::PacketObserver`] and sees every packet at every tap
//!   point, exactly like running `tstat` on a mirror port.
//!
//! ## Quick example
//!
//! ```
//! use vqd_simnet::prelude::*;
//!
//! // Two hosts joined by a 10 Mbit/s wire; send 1 MiB over TCP.
//! let mut tb = TopologyBuilder::new();
//! let a = tb.add_host("client");
//! let b = tb.add_host("server");
//! tb.add_duplex_link(a, b, LinkConfig::ethernet(10_000_000));
//! let net = tb.build();
//!
//! struct Sender;
//! impl App for Sender {
//!     fn start(&mut self, ctl: &mut Ctl) {
//!         let flow = ctl.tcp_connect(HostId(0), HostId(1), 80);
//!         ctl.tcp_send(flow, 1 << 20);
//!         ctl.tcp_close_after_send(flow);
//!     }
//!     fn on_tcp(&mut self, ev: TcpEvent, ctl: &mut Ctl) {
//!         match ev {
//!             // Drain arriving data as fast as possible.
//!             TcpEvent::DataAvailable { flow, side, .. } => {
//!                 ctl.tcp_read_at(flow, side, u64::MAX);
//!             }
//!             // Close our half once the peer is done.
//!             TcpEvent::PeerFin { flow, side } => ctl.tcp_close_from(flow, side),
//!             _ => {}
//!         }
//!     }
//! }
//!
//! let mut sim = Harness::new(net, 42);
//! sim.add_app(Box::new(Sender));
//! sim.run_until(SimTime::from_secs(30));
//! assert!(sim.net.flow_stats(FlowId(0)).unwrap().complete);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod engine;
pub mod host;
pub mod ids;
pub mod link;
pub mod medium;
pub mod packet;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod tcp;
pub mod time;
pub mod topology;
pub mod traffic;
pub mod udp;

/// Convenient glob import of the commonly used simulator types.
pub mod prelude {
    pub use crate::engine::{
        App, Ctl, Harness, NullObserver, PacketObserver, SimArena, TapDir, TapPoint, TcpEvent,
        UdpEvent,
    };
    pub use crate::host::{CpuModel, Host, MemoryModel};
    pub use crate::ids::{AppId, FlowId, HostId, IfaceId, LinkId, MediumId};
    pub use crate::link::LinkConfig;
    pub use crate::medium::{MediumGrant, PhySnapshot, SharedMedium};
    pub use crate::packet::{Packet, TransportHdr};
    pub use crate::rng::SimRng;
    pub use crate::sched::{SchedStats, SchedulerKind};
    pub use crate::stats::Welford;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::TopologyBuilder;
    pub use crate::traffic::{AppMix, MixKind, UdpFlood};
}
