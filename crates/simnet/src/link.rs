//! One-way links with rate, delay, jitter, loss and drop-tail queues.
//!
//! This is the `tc`/`netem` equivalent of the paper's testbed: a token
//! of bandwidth (serialisation at `rate_bps`), a normally-jittered
//! propagation delay, Bernoulli random loss, and a finite FIFO queue
//! whose overflow produces congestion loss. Link parameter presets
//! reproduce **Table 3** of the paper exactly (DSL: 7.8 Mbit/s,
//! 50±20 ms, 0.75±0.5 %; Mobile: 5.22 Mbit/s, 100±30 ms, 1.4±1 %).

use std::collections::VecDeque;

use crate::ids::{HostId, MediumId};
use crate::packet::Packet;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Static configuration of a one-way link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Serialisation rate in bits/second.
    pub rate_bps: u64,
    /// Mean one-way propagation delay.
    pub delay: SimDuration,
    /// Standard deviation of the per-packet normal delay jitter.
    pub jitter_sd: SimDuration,
    /// Average random loss rate. Losses are drawn from a two-state
    /// Gilbert–Elliott process with mean burst length
    /// [`LinkConfig::loss_burst`], matching the bursty character of
    /// real access-link loss (independent per-packet loss at these
    /// rates would unrealistically cap TCP throughput).
    pub loss: f64,
    /// Mean number of consecutive packets lost per loss episode.
    pub loss_burst: f64,
    /// Drop-tail queue limit in bytes.
    pub queue_bytes: u32,
    /// Maximum transport payload per packet on this link (MSS source).
    pub mtu_payload: u32,
}

impl LinkConfig {
    /// Clean wired Ethernet at the given rate: sub-millisecond delay,
    /// no jitter, no random loss, 256 KiB buffer.
    pub fn ethernet(rate_bps: u64) -> Self {
        LinkConfig {
            rate_bps,
            delay: SimDuration::from_micros(200),
            jitter_sd: SimDuration::ZERO,
            loss: 0.0,
            loss_burst: 4.0,
            queue_bytes: 256 * 1024,
            mtu_payload: 1460,
        }
    }

    /// LAN segment preset (Table 2, "LAN shaping"): 802.11-class rates
    /// between 1 and 70 Mbit/s, 1 ms delay, 0 % loss.
    pub fn lan_shaped(rate_bps: u64) -> Self {
        LinkConfig {
            rate_bps,
            delay: SimDuration::from_millis(1),
            jitter_sd: SimDuration::ZERO,
            loss: 0.0,
            loss_burst: 4.0,
            queue_bytes: 128 * 1024,
            mtu_payload: 1460,
        }
    }

    /// Nominal DSL broadband link, Table 3 row 1: 7.8 Mbit/s, 50 ms
    /// mean delay with ±20 ms normal jitter, 0.75 % loss.
    pub fn dsl_nominal() -> Self {
        LinkConfig {
            rate_bps: 7_800_000,
            delay: SimDuration::from_millis(50),
            // "50±20ms" — we interpret the indicated range as ±2σ,
            // i.e. σ = 10 ms, so ~95 % of packets fall inside it.
            jitter_sd: SimDuration::from_millis(10),
            loss: 0.0075,
            loss_burst: 5.0,
            queue_bytes: 96 * 1024,
            mtu_payload: 1460,
        }
    }

    /// DSL link with per-session parameters drawn from the Table 3
    /// distributions ("delay and loss … follow a normal distribution
    /// within the indicated ranges").
    pub fn dsl(rng: &mut SimRng) -> Self {
        let mut c = Self::dsl_nominal();
        c.delay = SimDuration::from_secs_f64(rng.normal_min(0.050, 0.010, 0.005));
        c.loss = rng.normal_min(0.0075, 0.0025, 0.0).min(0.05);
        c
    }

    /// Nominal cellular (3G-class) link, Table 3 row 2: 5.22 Mbit/s,
    /// 100 ms ± 30 ms, 1.4 % loss.
    pub fn mobile_nominal() -> Self {
        LinkConfig {
            rate_bps: 5_220_000,
            delay: SimDuration::from_millis(100),
            jitter_sd: SimDuration::from_millis(15),
            loss: 0.014,
            loss_burst: 5.0,
            queue_bytes: 96 * 1024,
            mtu_payload: 1400,
        }
    }

    /// Cellular link with per-session parameter draws (see [`Self::dsl`]).
    pub fn mobile(rng: &mut SimRng) -> Self {
        let mut c = Self::mobile_nominal();
        c.delay = SimDuration::from_secs_f64(rng.normal_min(0.100, 0.015, 0.010));
        c.loss = rng.normal_min(0.014, 0.005, 0.0).min(0.08);
        c
    }

    /// Fast backbone segment (content-provider side of the WAN).
    pub fn backbone() -> Self {
        LinkConfig {
            rate_bps: 1_000_000_000,
            delay: SimDuration::from_millis(10),
            jitter_sd: SimDuration::from_millis(1),
            loss: 0.0,
            loss_burst: 4.0,
            queue_bytes: 1024 * 1024,
            mtu_payload: 1460,
        }
    }
}

/// Per-link monotone counters, readable by probes.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkCounters {
    /// Packets accepted into the queue.
    pub enq_pkts: u64,
    /// Bytes accepted into the queue.
    pub enq_bytes: u64,
    /// Packets dropped because the queue was full (congestion loss).
    pub drop_tail_pkts: u64,
    /// Packets dropped by random loss / exhausted MAC retries.
    pub drop_loss_pkts: u64,
    /// Packets delivered to the far end.
    pub delivered_pkts: u64,
    /// Bytes delivered to the far end.
    pub delivered_bytes: u64,
    /// Link-layer (MAC) retransmissions performed, wireless only.
    pub mac_retx: u64,
    /// Cumulative time the transmitter was busy, in ns.
    pub busy_ns: u64,
}

/// Dynamic state of a one-way link.
#[derive(Debug, Clone)]
pub struct OneWayLink {
    /// Static parameters (mutable — fault injectors reshape links).
    pub cfg: LinkConfig,
    /// Transmitting host.
    pub from: HostId,
    /// Receiving host.
    pub to: HostId,
    /// Shared wireless medium, if this is a WLAN attachment. When set,
    /// serialisation time, extra queueing-for-airtime and loss are
    /// decided by the medium model instead of `cfg.rate_bps`/`cfg.loss`.
    pub medium: Option<MediumId>,
    /// AP downlink semantics: one queue serves every associated
    /// station and each packet is delivered to its own destination
    /// (real APs have a single transmit queue per radio — this is what
    /// makes WLAN congestion starve everyone behind the same AP).
    pub shared_to_dst: bool,
    queue: VecDeque<Packet>,
    queued_bytes: u32,
    /// Packet currently being serialised, if any.
    in_flight: Option<Packet>,
    /// Latest scheduled delivery time — links are FIFO, so jittered
    /// delays never reorder packets (they compress into bursts
    /// instead, like a real queueing path).
    pub last_delivery: SimTime,
    /// Gilbert–Elliott loss state: currently inside a loss burst.
    loss_bad: bool,
    /// Counters for probes.
    pub ctr: LinkCounters,
}

/// Result of offering a packet to a link queue.
#[derive(Debug, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Accepted and the transmitter was idle: caller must start
    /// transmission.
    AcceptedIdle,
    /// Accepted behind other packets.
    AcceptedQueued,
    /// Dropped at the tail (queue full).
    Dropped,
}

impl OneWayLink {
    /// Create an idle link.
    pub fn new(from: HostId, to: HostId, cfg: LinkConfig) -> Self {
        OneWayLink {
            cfg,
            from,
            to,
            medium: None,
            shared_to_dst: false,
            queue: VecDeque::new(),
            queued_bytes: 0,
            in_flight: None,
            last_delivery: SimTime::ZERO,
            loss_bad: false,
            ctr: LinkCounters::default(),
        }
    }

    /// Offer a packet to the queue.
    pub fn enqueue(&mut self, pkt: Packet) -> EnqueueOutcome {
        if self.queued_bytes + pkt.size > self.cfg.queue_bytes {
            self.ctr.drop_tail_pkts += 1;
            return EnqueueOutcome::Dropped;
        }
        self.ctr.enq_pkts += 1;
        self.ctr.enq_bytes += pkt.size as u64;
        self.queued_bytes += pkt.size;
        self.queue.push_back(pkt);
        if self.in_flight.is_none() && self.queue.len() == 1 {
            EnqueueOutcome::AcceptedIdle
        } else {
            EnqueueOutcome::AcceptedQueued
        }
    }

    /// Pop the head of the queue into the in-flight slot. Returns a
    /// reference to it. Panics if called while busy or empty (engine
    /// bug).
    pub fn begin_tx(&mut self) -> &Packet {
        assert!(self.in_flight.is_none(), "link already transmitting");
        let pkt = self.queue.pop_front().expect("begin_tx on empty queue");
        self.queued_bytes -= pkt.size;
        self.in_flight.insert(pkt)
    }

    /// Finish the in-flight transmission, returning the packet.
    pub fn finish_tx(&mut self) -> Packet {
        self.in_flight
            .take()
            .expect("finish_tx with nothing in flight")
    }

    /// Whether another packet is waiting behind the transmitter.
    pub fn has_backlog(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Whether the transmitter is serialising a packet right now.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Bytes currently sitting in the queue (not counting in-flight).
    pub fn backlog_bytes(&self) -> u32 {
        self.queued_bytes
    }

    /// Sample the per-packet propagation delay (mean + truncated normal
    /// jitter).
    pub fn sample_delay(&self, rng: &mut SimRng) -> SimDuration {
        if self.cfg.jitter_sd == SimDuration::ZERO {
            return self.cfg.delay;
        }
        let d = rng.normal_min(
            self.cfg.delay.as_secs_f64(),
            self.cfg.jitter_sd.as_secs_f64(),
            0.0,
        );
        SimDuration::from_secs_f64(d)
    }

    /// Random-loss draw for one packet (Gilbert–Elliott: in the bad
    /// state every packet is lost; transitions keep the long-run loss
    /// rate at `cfg.loss` with mean burst length `cfg.loss_burst`).
    pub fn sample_loss(&mut self, rng: &mut SimRng) -> bool {
        let p = self.cfg.loss.clamp(0.0, 0.95);
        if p <= 0.0 {
            self.loss_bad = false;
            return false;
        }
        let burst = self.cfg.loss_burst.max(1.0);
        if self.loss_bad {
            // Leave the burst with probability 1/burst.
            if rng.chance(1.0 / burst) {
                self.loss_bad = false;
                return false;
            }
            return true;
        }
        // Enter a burst so that the stationary loss rate is `p`:
        // p_gb = p / (burst * (1 - p)).
        let p_gb = (p / (burst * (1.0 - p))).min(1.0);
        if rng.chance(p_gb) {
            self.loss_bad = true;
            return true;
        }
        false
    }

    /// Long-run utilisation of the transmitter in `[0, 1]` over the
    /// window `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.0 == 0 {
            return 0.0;
        }
        (self.ctr.busy_ns as f64 / now.0 as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FlowId;
    use crate::packet::{TcpFlags, TcpHdr};

    fn pkt(size_payload: u32) -> Packet {
        Packet::tcp(
            HostId(0),
            HostId(1),
            TcpHdr {
                flow: FlowId(0),
                from_initiator: true,
                dport: 80,
                sport: 40000,
                seq: 0,
                ack: 0,
                len: size_payload,
                flags: TcpFlags::DATA,
                wnd: 65535,
                mss: 1460,
                tsval: SimTime::ZERO,
                tsecr: SimTime::ZERO,
                is_retx: false,
            },
            SimTime::ZERO,
        )
    }

    #[test]
    fn enqueue_until_full_then_tail_drop() {
        let mut cfg = LinkConfig::ethernet(10_000_000);
        cfg.queue_bytes = 4000;
        let mut l = OneWayLink::new(HostId(0), HostId(1), cfg);
        assert_eq!(l.enqueue(pkt(1460)), EnqueueOutcome::AcceptedIdle);
        assert_eq!(l.enqueue(pkt(1460)), EnqueueOutcome::AcceptedQueued);
        // Third 1512-byte packet exceeds the 4000-byte budget.
        assert_eq!(l.enqueue(pkt(1460)), EnqueueOutcome::Dropped);
        assert_eq!(l.ctr.drop_tail_pkts, 1);
        assert_eq!(l.ctr.enq_pkts, 2);
    }

    #[test]
    fn tx_cycle() {
        let mut l = OneWayLink::new(HostId(0), HostId(1), LinkConfig::ethernet(1_000_000));
        l.enqueue(pkt(100));
        l.enqueue(pkt(200));
        assert!(!l.is_busy());
        let first = l.begin_tx().payload_len();
        assert_eq!(first, 100);
        assert!(l.is_busy());
        assert!(l.has_backlog());
        let done = l.finish_tx();
        assert_eq!(done.payload_len(), 100);
        assert!(!l.is_busy());
    }

    #[test]
    #[should_panic(expected = "empty queue")]
    fn begin_tx_on_empty_panics() {
        let mut l = OneWayLink::new(HostId(0), HostId(1), LinkConfig::ethernet(1_000_000));
        l.begin_tx();
    }

    #[test]
    fn delay_sampling_respects_zero_jitter() {
        let l = OneWayLink::new(HostId(0), HostId(1), LinkConfig::ethernet(1_000_000));
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(l.sample_delay(&mut rng), SimDuration::from_micros(200));
    }

    #[test]
    fn dsl_preset_matches_table3() {
        let c = LinkConfig::dsl_nominal();
        assert_eq!(c.rate_bps, 7_800_000);
        assert_eq!(c.delay, SimDuration::from_millis(50));
        assert!((c.loss - 0.0075).abs() < 1e-12);
        let m = LinkConfig::mobile_nominal();
        assert_eq!(m.rate_bps, 5_220_000);
        assert_eq!(m.delay, SimDuration::from_millis(100));
        assert!((m.loss - 0.014).abs() < 1e-12);
    }

    #[test]
    fn sampled_presets_stay_positive() {
        let mut rng = SimRng::seed_from_u64(42);
        for _ in 0..200 {
            let d = LinkConfig::dsl(&mut rng);
            assert!(d.delay >= SimDuration::from_millis(5));
            assert!((0.0..=0.05).contains(&d.loss));
            let m = LinkConfig::mobile(&mut rng);
            assert!(m.delay >= SimDuration::from_millis(10));
            assert!((0.0..=0.08).contains(&m.loss));
        }
    }

    #[test]
    fn utilization_tracks_busy_time() {
        let mut l = OneWayLink::new(HostId(0), HostId(1), LinkConfig::ethernet(1_000_000));
        l.ctr.busy_ns = 500_000_000;
        assert!((l.utilization(SimTime::from_secs(1)) - 0.5).abs() < 1e-12);
        assert_eq!(l.utilization(SimTime::ZERO), 0.0);
    }
}
