//! Shared-medium abstraction for wireless links.
//!
//! Wired links serialise packets at their own private rate; stations on
//! a WLAN instead *contend* for shared airtime, their PHY rate depends
//! on signal quality, and frames can be corrupted and retried at the MAC
//! layer. The engine delegates all of that to a [`SharedMedium`]
//! implementation (the real 802.11 model lives in the `vqd-wireless`
//! crate; this module only defines the contract plus a trivial
//! [`PerfectMedium`] used in unit tests).

use std::any::Any;

use crate::ids::HostId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// What the medium decided about one frame transmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MediumGrant {
    /// Time spent waiting for the medium (busy airtime of other
    /// stations, DIFS/backoff, and any failed attempts before the final
    /// one).
    pub access_delay: SimDuration,
    /// Airtime of the final transmission attempt — the link's
    /// transmitter is considered busy for `access_delay + airtime`.
    pub airtime: SimDuration,
    /// Whether the frame ultimately got through (false = dropped after
    /// the retry limit).
    pub delivered: bool,
    /// Number of MAC-layer retransmissions performed (0 = first try).
    pub mac_retries: u32,
}

/// Instantaneous PHY-layer state of one station, as sampled by probes
/// once per second (the paper's RSSI collection interval).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhySnapshot {
    /// Received signal strength at the station, dBm.
    pub rssi_dbm: f64,
    /// Signal-to-noise ratio, dB.
    pub snr_db: f64,
    /// Negotiated PHY rate, bits/second.
    pub phy_rate_bps: u64,
    /// Whether the station is currently associated.
    pub connected: bool,
    /// Cumulative disconnection/handover events since start.
    pub disconnections: u64,
}

/// A broadcast domain shared by an AP and its stations.
pub trait SharedMedium {
    /// Account one frame of `bytes` payload from `from` to `to` at
    /// `now`, advancing internal busy-time state. Deterministic given
    /// the RNG.
    fn transmit(
        &mut self,
        now: SimTime,
        from: HostId,
        to: HostId,
        bytes: u32,
        rng: &mut SimRng,
    ) -> MediumGrant;

    /// PHY state of `station`, if it is part of this medium.
    fn snapshot(&self, station: HostId) -> Option<PhySnapshot>;

    /// Fraction of recent airtime the medium was busy (all stations +
    /// external interference), `[0, 1]`.
    fn busy_fraction(&self, now: SimTime) -> f64;

    /// Periodic state update hook (fading, mobility, handover); called
    /// by the engine once per simulated second.
    fn on_tick(&mut self, _now: SimTime, _rng: &mut SimRng) {}

    /// Hosts currently associated as stations (probes at the AP sample
    /// the PHY state of every connected device, as the paper's router
    /// probe does).
    fn stations(&self) -> Vec<HostId> {
        Vec::new()
    }

    /// Downcast support so fault injectors can reconfigure concrete
    /// medium models through the engine.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// An idealised medium: fixed rate, no contention, no loss. Used by
/// simnet's own tests and as a placeholder before `vqd-wireless`
/// attaches the real model.
#[derive(Debug, Clone)]
pub struct PerfectMedium {
    /// PHY rate applied to every frame.
    pub rate_bps: u64,
    /// Time the transmitter is busy until (shared across stations).
    busy_until: SimTime,
    /// Cumulative busy ns, for `busy_fraction`.
    busy_ns: u64,
}

impl PerfectMedium {
    /// A perfect medium at the given rate.
    pub fn new(rate_bps: u64) -> Self {
        PerfectMedium {
            rate_bps,
            busy_until: SimTime::ZERO,
            busy_ns: 0,
        }
    }
}

impl SharedMedium for PerfectMedium {
    fn transmit(
        &mut self,
        now: SimTime,
        _from: HostId,
        _to: HostId,
        bytes: u32,
        _rng: &mut SimRng,
    ) -> MediumGrant {
        let airtime = SimDuration::tx_time(bytes as u64, self.rate_bps);
        let start = now.max(self.busy_until);
        let access_delay = start - now;
        self.busy_until = start + airtime;
        self.busy_ns += airtime.0;
        MediumGrant {
            access_delay,
            airtime,
            delivered: true,
            mac_retries: 0,
        }
    }

    fn snapshot(&self, _station: HostId) -> Option<PhySnapshot> {
        Some(PhySnapshot {
            rssi_dbm: -40.0,
            snr_db: 45.0,
            phy_rate_bps: self.rate_bps,
            connected: true,
            disconnections: 0,
        })
    }

    fn busy_fraction(&self, now: SimTime) -> f64 {
        if now.0 == 0 {
            0.0
        } else {
            (self.busy_ns as f64 / now.0 as f64).min(1.0)
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_medium_serialises_across_stations() {
        let mut m = PerfectMedium::new(8_000_000); // 1 byte/us
        let mut rng = SimRng::seed_from_u64(0);
        let g1 = m.transmit(SimTime::ZERO, HostId(0), HostId(1), 1000, &mut rng);
        assert_eq!(g1.access_delay, SimDuration::ZERO);
        assert_eq!(g1.airtime, SimDuration::from_millis(1));
        assert!(g1.delivered);
        // Second frame from a different station must wait for the first.
        let g2 = m.transmit(SimTime::ZERO, HostId(2), HostId(1), 1000, &mut rng);
        assert_eq!(g2.access_delay, SimDuration::from_millis(1));
    }

    #[test]
    fn busy_fraction_reflects_airtime() {
        let mut m = PerfectMedium::new(8_000_000);
        let mut rng = SimRng::seed_from_u64(0);
        for _ in 0..500 {
            m.transmit(SimTime::ZERO, HostId(0), HostId(1), 1000, &mut rng);
        }
        // 500 ms of airtime over a 1 s window.
        let f = m.busy_fraction(SimTime::from_secs(1));
        assert!((f - 0.5).abs() < 1e-9, "{f}");
    }

    #[test]
    fn snapshot_is_healthy() {
        let m = PerfectMedium::new(54_000_000);
        let s = m.snapshot(HostId(0)).unwrap();
        assert!(s.connected);
        assert_eq!(s.phy_rate_bps, 54_000_000);
    }
}
