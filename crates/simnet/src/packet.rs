//! Packets and transport headers.
//!
//! The simulator moves whole packets, not bytes. A [`Packet`] carries
//! network addressing (source/destination host), a total wire size and a
//! transport header. Payload *contents* are never materialised — TCP
//! tracks byte ranges by sequence number, which is all both the
//! protocol machinery and the tstat-style observers need.

use crate::ids::{FlowId, HostId};
use crate::time::SimTime;

/// Fixed per-packet header overhead (IP + TCP incl. timestamp option),
/// matching what a real capture would count on the wire.
pub const TCP_HEADER_BYTES: u32 = 52;
/// Fixed per-packet overhead for UDP datagrams (IP + UDP).
pub const UDP_HEADER_BYTES: u32 = 28;

/// TCP segment flags. Only the flags the model uses are represented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// Connection-open.
    pub syn: bool,
    /// Sender has no more data.
    pub fin: bool,
    /// Acknowledgement number is valid (set on everything but the first SYN).
    pub ack: bool,
}

impl TcpFlags {
    /// Plain data/ack segment.
    pub const DATA: TcpFlags = TcpFlags {
        syn: false,
        fin: false,
        ack: true,
    };
    /// Initial SYN.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        fin: false,
        ack: false,
    };
    /// SYN-ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        fin: false,
        ack: true,
    };
    /// FIN(+ACK).
    pub const FIN: TcpFlags = TcpFlags {
        syn: false,
        fin: true,
        ack: true,
    };
}

/// A TCP segment header.
///
/// `seq`/`ack` are absolute byte offsets from the start of each
/// direction's stream (initial sequence numbers are zero — the
/// simulation does not need ISN randomisation and observers are easier
/// to validate without it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHdr {
    /// Flow this segment belongs to.
    pub flow: FlowId,
    /// True if sent by the connection initiator (client→server).
    pub from_initiator: bool,
    /// Server-side (destination) port of the connection.
    pub dport: u16,
    /// Client-side (ephemeral) port of the connection.
    pub sport: u16,
    /// First payload byte offset carried by this segment.
    pub seq: u64,
    /// Cumulative acknowledgement (next expected byte from the peer).
    pub ack: u64,
    /// Payload bytes in this segment.
    pub len: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Advertised receive window in bytes.
    pub wnd: u32,
    /// Sender's MSS advertisement (only meaningful on SYN segments).
    pub mss: u32,
    /// Timestamp value (send time) — RFC 1323-style, used for RTT
    /// measurement by endpoints *and* by passive observers.
    pub tsval: SimTime,
    /// Timestamp echo (the `tsval` of the segment being acknowledged).
    pub tsecr: SimTime,
    /// True when this is a retransmission (set by the sender; real
    /// tstat infers this — our observers infer it too and this field is
    /// used only to validate their inference in tests).
    pub is_retx: bool,
}

/// A UDP datagram header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHdr {
    /// Destination port (selects the receiving socket binding).
    pub dst_port: u16,
    /// Source port.
    pub src_port: u16,
    /// Payload bytes.
    pub len: u32,
}

/// Transport-layer header of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportHdr {
    /// A TCP segment.
    Tcp(TcpHdr),
    /// A UDP datagram.
    Udp(UdpHdr),
}

/// A packet in flight.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Originating host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Total wire size in bytes (payload + transport/IP overhead).
    pub size: u32,
    /// Transport header.
    pub hdr: TransportHdr,
    /// Time the packet was first created (for end-to-end latency
    /// accounting; not visible to protocol logic).
    pub created: SimTime,
}

impl Packet {
    /// Build a TCP packet; wire size = payload + [`TCP_HEADER_BYTES`].
    pub fn tcp(src: HostId, dst: HostId, hdr: TcpHdr, created: SimTime) -> Packet {
        Packet {
            src,
            dst,
            size: hdr.len + TCP_HEADER_BYTES,
            hdr: TransportHdr::Tcp(hdr),
            created,
        }
    }

    /// Build a UDP packet; wire size = payload + [`UDP_HEADER_BYTES`].
    pub fn udp(src: HostId, dst: HostId, hdr: UdpHdr, created: SimTime) -> Packet {
        Packet {
            src,
            dst,
            size: hdr.len + UDP_HEADER_BYTES,
            hdr: TransportHdr::Udp(hdr),
            created,
        }
    }

    /// The TCP header, if this is a TCP packet.
    pub fn tcp_hdr(&self) -> Option<&TcpHdr> {
        match &self.hdr {
            TransportHdr::Tcp(h) => Some(h),
            TransportHdr::Udp(_) => None,
        }
    }

    /// Payload bytes carried (0 for pure ACKs and UDP-less packets).
    pub fn payload_len(&self) -> u32 {
        match &self.hdr {
            TransportHdr::Tcp(h) => h.len,
            TransportHdr::Udp(h) => h.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_tcp_hdr(len: u32) -> TcpHdr {
        TcpHdr {
            flow: FlowId(0),
            from_initiator: true,
            dport: 80,
            sport: 40000,
            seq: 0,
            ack: 0,
            len,
            flags: TcpFlags::DATA,
            wnd: 65535,
            mss: 1460,
            tsval: SimTime::ZERO,
            tsecr: SimTime::ZERO,
            is_retx: false,
        }
    }

    #[test]
    fn tcp_packet_size_includes_overhead() {
        let p = Packet::tcp(HostId(0), HostId(1), dummy_tcp_hdr(1460), SimTime::ZERO);
        assert_eq!(p.size, 1460 + TCP_HEADER_BYTES);
        assert_eq!(p.payload_len(), 1460);
        assert!(p.tcp_hdr().is_some());
    }

    #[test]
    fn pure_ack_is_header_only() {
        let p = Packet::tcp(HostId(0), HostId(1), dummy_tcp_hdr(0), SimTime::ZERO);
        assert_eq!(p.size, TCP_HEADER_BYTES);
        assert_eq!(p.payload_len(), 0);
    }

    #[test]
    fn udp_packet_size() {
        let h = UdpHdr {
            dst_port: 5001,
            src_port: 40000,
            len: 1000,
        };
        let p = Packet::udp(HostId(2), HostId(3), h, SimTime::ZERO);
        assert_eq!(p.size, 1000 + UDP_HEADER_BYTES);
        assert!(p.tcp_hdr().is_none());
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn flag_constants() {
        assert!(TcpFlags::SYN.syn && !TcpFlags::SYN.ack);
        assert!(TcpFlags::SYN_ACK.syn && TcpFlags::SYN_ACK.ack);
        assert!(TcpFlags::FIN.fin && TcpFlags::FIN.ack);
        assert!(!TcpFlags::DATA.syn && !TcpFlags::DATA.fin);
    }
}
