//! Deterministic randomness helpers.
//!
//! All stochastic behaviour in the simulator (link jitter, loss draws,
//! traffic inter-arrivals, fault intensities …) flows from [`SimRng`],
//! a thin wrapper over [`SmallRng`] that adds the distributions the
//! testbed needs. Normal sampling is implemented with the Box–Muller
//! transform so we do not need the `rand_distr` crate.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic simulation RNG with the distributions used by the
/// testbed models (normal, truncated normal, exponential, Bernoulli).
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    /// Spare value from the last Box–Muller draw, if any.
    spare_gauss: Option<f64>,
}

impl SimRng {
    /// Create an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            spare_gauss: None,
        }
    }

    /// Derive an independent child RNG. Children created with distinct
    /// `salt`s from the same parent state are statistically independent
    /// streams; this is how per-component RNGs are split from the root
    /// seed without correlated draws.
    pub fn split(&mut self, salt: u64) -> SimRng {
        // SplitMix64-style mixing of a fresh draw with the salt.
        let mut z = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed_from_u64(z)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)` (`hi > lo`).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Standard normal via Box–Muller (polar rejection form).
    pub fn gauss(&mut self) -> f64 {
        if let Some(s) = self.spare_gauss.take() {
            return s;
        }
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let k = (-2.0 * s.ln() / s).sqrt();
                self.spare_gauss = Some(v * k);
                return u * k;
            }
        }
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.gauss()
    }

    /// Normal truncated below at `min` (re-draws are not used: values
    /// are clamped, which preserves the mean shift the netem-style link
    /// models expect for small tail masses).
    pub fn normal_min(&mut self, mean: f64, sd: f64, min: f64) -> f64 {
        self.normal(mean, sd).max(min)
    }

    /// Exponential with the given mean (`mean > 0`).
    pub fn expo(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u: f64 = self.f64();
        // 1 - u is in (0, 1]; ln of it is finite and <= 0.
        -(1.0 - u).ln() * mean
    }

    /// Pareto with shape `alpha` and minimum `xm` — heavy-tailed flow
    /// sizes for background FTP/web traffic.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        debug_assert!(alpha > 0.0 && xm > 0.0);
        let u: f64 = self.f64();
        xm / (1.0 - u).powf(1.0 / alpha)
    }

    /// Pick an index in `[0, n)` uniformly.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }

    #[test]
    fn split_streams_differ() {
        let mut root = SimRng::seed_from_u64(1);
        let mut a = root.split(1);
        let mut b = root.split(2);
        let va: Vec<u64> = (0..16).map(|_| (a.f64() * 1e9) as u64).collect();
        let vb: Vec<u64> = (0..16).map(|_| (b.f64() * 1e9) as u64).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gauss_moments() {
        let mut r = SimRng::seed_from_u64(99);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.gauss();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn expo_mean() {
        let mut r = SimRng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.expo(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_probability() {
        let mut r = SimRng::seed_from_u64(123);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01, "p {p}");
    }

    #[test]
    fn normal_min_clamps() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(r.normal_min(0.0, 10.0, 0.0) >= 0.0);
        }
    }

    #[test]
    fn pareto_at_least_xm() {
        let mut r = SimRng::seed_from_u64(8);
        for _ in 0..10_000 {
            assert!(r.pareto(100.0, 1.5) >= 100.0);
        }
    }
}
