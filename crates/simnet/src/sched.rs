//! Event queues for the simulator: a hierarchical timer wheel (the
//! fast path) and the original binary heap (retained as a differential
//! oracle so tests can prove the wheel preserves event order exactly).
//!
//! Both queues implement the same total order the engine has always
//! used: events pop in ascending `(at, seq)` where `at` is the absolute
//! simulated time in nanoseconds and `seq` is a unique sequence number.
//! Corpus bytes therefore cannot change when switching between them —
//! and the differential tests assert exactly that.
//!
//! ## Wheel layout
//!
//! Timestamps are bucketed at 2^16 ns (≈ 65.5 µs) granularity — fine
//! enough that a bucket rarely holds more than a handful of events,
//! coarse enough that packet-scale event gaps (µs–ms) stay inside
//! level 0 instead of cascading through upper levels. Above that sit
//! eight levels of 256 slots, one byte of the 48-bit bucket key per
//! level, so the wheel covers all of `u64` time with no overflow list:
//! level 0 spans ≈ 16.8 ms, level 1 ≈ 4.3 s, and so on. An entry
//! lives at the highest level where its bucket-key byte differs from
//! the wheel cursor's; far-future entries cascade down one level at a
//! time as the cursor reaches them. Per-level occupancy bitmaps make
//! skipping idle stretches O(levels), so `pop_before` is O(1)
//! amortised versus the heap's O(log n).
//!
//! ## Ordering guarantee
//!
//! Buckets are drained in ascending bucket order, and a bucket's
//! entries are kept sorted by the full `(at, seq)` key: sorted once
//! when the cursor first enters the bucket (cascaded entries can
//! arrive out of order), with later insertions into the *current*
//! bucket — zero-delay reschedules, lazily hopped timers — placed by
//! binary search. The pop sequence is therefore exactly ascending
//! `(at, seq)`, bit-for-bit what the binary heap produced.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU8, Ordering};

const LEVELS: usize = 8;
const SLOTS: usize = 256;
const WORDS: usize = SLOTS / 64;
/// Bucket granularity: timestamps are grouped at `2^SHIFT` ns.
const SHIFT: u32 = 16;

/// Which event-queue implementation a `Network` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Hierarchical timer wheel — the production fast path.
    TimerWheel,
    /// The original binary heap — kept as a differential oracle.
    BinaryHeap,
}

/// 0 = timer wheel, 1 = binary heap, 255 = unset (consult `VQD_SCHED`).
static DEFAULT_KIND: AtomicU8 = AtomicU8::new(255);

/// Set the process-wide default scheduler used by newly built networks.
///
/// Only the differential-oracle tests and the perf bench should ever
/// call this; the tests live in their own integration-test binary so
/// the global cannot leak into unrelated tests in the same process.
pub fn set_default_scheduler(kind: SchedulerKind) {
    DEFAULT_KIND.store(kind as u8, Ordering::Relaxed);
}

/// The process-wide default scheduler: the timer wheel, unless
/// overridden by [`set_default_scheduler`] or by setting the
/// `VQD_SCHED=heap` environment variable (an escape hatch for A/B
/// timing runs — both queues produce bit-identical output).
pub fn default_scheduler() -> SchedulerKind {
    let mut k = DEFAULT_KIND.load(Ordering::Relaxed);
    if k == 255 {
        k = match std::env::var("VQD_SCHED").as_deref() {
            Ok("heap") => SchedulerKind::BinaryHeap as u8,
            _ => SchedulerKind::TimerWheel as u8,
        };
        DEFAULT_KIND.store(k, Ordering::Relaxed);
    }
    if k == SchedulerKind::BinaryHeap as u8 {
        SchedulerKind::BinaryHeap
    } else {
        SchedulerKind::TimerWheel
    }
}

/// Scheduler observability counters, exposed by `Network::sched_stats`.
#[derive(Debug, Default, Clone, Copy)]
pub struct SchedStats {
    /// Queue entries pushed (events + timer entries actually enqueued).
    pub scheduled: u64,
    /// Queue entries popped and dispatched (including timer no-ops).
    pub dispatched: u64,
    /// TCP timer arms requested (most reuse an existing queue entry).
    pub timer_arms: u64,
    /// Timer entries that fired into a cancelled/disarmed slot.
    pub timer_cancelled: u64,
    /// Timer entries lazily hopped forward to a later deadline.
    pub timer_rescheduled: u64,
    /// Superseded timer entries dropped without any slot lookup work.
    pub timer_stale: u64,
    /// Sum of queue length sampled after each dispatch (mean occupancy
    /// = `occupancy_sum / dispatched`).
    pub occupancy_sum: u64,
    /// Peak queue length observed after a dispatch.
    pub occupancy_peak: u64,
}

impl SchedStats {
    /// Events dispatched per wall-clock second.
    pub fn events_per_sec(&self, wall_secs: f64) -> f64 {
        if wall_secs > 0.0 {
            self.dispatched as f64 / wall_secs
        } else {
            0.0
        }
    }
}

struct Entry<T> {
    at: u64,
    seq: u64,
    item: T,
}

/// Hierarchical timer wheel keyed on absolute nanosecond timestamps.
pub struct TimerWheel<T> {
    /// `LEVELS * SLOTS` buckets; level `k` occupies `k*SLOTS..`.
    slots: Vec<VecDeque<Entry<T>>>,
    /// Per-level occupancy bitmaps (bit set ⇔ slot non-empty).
    occ: [[u64; WORDS]; LEVELS],
    /// Bucket key (`at >> SHIFT`) of the bucket currently draining;
    /// never ahead of the earliest remaining entry's bucket.
    cursor: u64,
    len: usize,
    /// Scratch buffer reused across cascades to avoid reallocation.
    scratch: Vec<Entry<T>>,
}

/// Wheel level of a bucket key relative to the cursor: the byte
/// position of the highest differing bit. Branch-free on the zero
/// delta (a same-tick push while the cursor sits on that very bucket):
/// `leading_zeros() == 64` saturates to level 0 instead of
/// underflowing `63 - 64`.
fn level_of(key: u64, cursor: u64) -> usize {
    let x = key ^ cursor;
    ((u64::BITS - 1).saturating_sub(x.leading_zeros()) / 8) as usize
}

impl<T> TimerWheel<T> {
    /// An empty wheel with its cursor at t = 0.
    pub fn new() -> Self {
        let mut slots = Vec::new();
        slots.resize_with(LEVELS * SLOTS, VecDeque::new);
        TimerWheel {
            slots,
            occ: [[0; WORDS]; LEVELS],
            cursor: 0,
            len: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn set_bit(&mut self, lvl: usize, idx: usize) {
        self.occ[lvl][idx / 64] |= 1u64 << (idx % 64);
    }

    fn clear_bit(&mut self, lvl: usize, idx: usize) {
        self.occ[lvl][idx / 64] &= !(1u64 << (idx % 64));
    }

    /// First occupied slot index `>= from` at `lvl`, if any.
    fn next_occupied(&self, lvl: usize, from: usize) -> Option<usize> {
        if from >= SLOTS {
            return None;
        }
        let words = &self.occ[lvl];
        let mut w = from / 64;
        let mut cur = words[w] & (!0u64 << (from % 64));
        loop {
            if cur != 0 {
                return Some(w * 64 + cur.trailing_zeros() as usize);
            }
            w += 1;
            if w == WORDS {
                return None;
            }
            cur = words[w];
        }
    }

    /// Queue `item` at absolute time `at` with unique sequence `seq`.
    ///
    /// `at` must not be before the wheel cursor's bucket (the engine
    /// only ever schedules at or after the event being dispatched).
    pub fn push(&mut self, at: u64, seq: u64, item: T) {
        let key = at >> SHIFT;
        debug_assert!(
            key >= self.cursor,
            "push into the past: {at} < bucket {}",
            self.cursor
        );
        let lvl = level_of(key, self.cursor);
        let idx = ((key >> (8 * lvl)) & 0xFF) as usize;
        let slot = &mut self.slots[lvl * SLOTS + idx];
        let e = Entry { at, seq, item };
        if lvl == 0 && key == self.cursor {
            // Insertion into the bucket currently being drained (zero-
            // delay reschedule, a timer hop landing on "now", or just
            // a near-future event): place by (at, seq) so the total
            // order survives even when the new key sorts before
            // entries already queued behind the drain point.
            let pos = slot.partition_point(|x| (x.at, x.seq) < (at, seq));
            slot.insert(pos, e);
        } else {
            slot.push_back(e);
        }
        self.set_bit(lvl, idx);
        self.len += 1;
    }

    /// Re-file a cascaded entry relative to the (just-moved) cursor.
    fn push_cascaded(&mut self, e: Entry<T>) {
        let key = e.at >> SHIFT;
        let lvl = level_of(key, self.cursor);
        let idx = ((key >> (8 * lvl)) & 0xFF) as usize;
        self.slots[lvl * SLOTS + idx].push_back(e);
        self.set_bit(lvl, idx);
    }

    /// Sort a just-entered bucket into `(at, seq)` order.
    fn sort_bucket(&mut self, idx: usize) {
        let slot = &mut self.slots[idx];
        if slot.len() > 1 {
            slot.make_contiguous()
                .sort_unstable_by_key(|e| (e.at, e.seq));
        }
    }

    /// Pop the earliest entry with `at <= t`, in `(at, seq)` order.
    pub fn pop_before(&mut self, t: u64) -> Option<(u64, u64, T)> {
        loop {
            // Drain the bucket the cursor points at: it is sorted by
            // (at, seq) and holds the globally earliest entries, but
            // individual entries may still lie beyond `t`.
            let cur0 = (self.cursor & 0xFF) as usize;
            if self.slots[cur0].front().is_some_and(|h| h.at > t) {
                return None;
            }
            if let Some(e) = self.slots[cur0].pop_front() {
                self.len -= 1;
                if self.slots[cur0].is_empty() {
                    self.clear_bit(0, cur0);
                }
                return Some((e.at, e.seq, e.item));
            }
            self.clear_bit(0, cur0);

            // Next occupied level-0 bucket within the current 256-
            // bucket window.
            if let Some(i) = self.next_occupied(0, cur0 + 1) {
                let key = (self.cursor & !0xFF) | i as u64;
                if key << SHIFT > t {
                    return None;
                }
                self.cursor = key;
                self.sort_bucket(i);
                continue;
            }

            // Window exhausted: find the lowest level with a future
            // slot, advance the cursor to that slot's base key, and
            // cascade its entries down. Lower levels are empty at this
            // point, so the chosen slot holds the earliest remaining
            // entries and the cascade cannot misfile anything.
            let mut cascaded = false;
            for lvl in 1..LEVELS {
                let cur = ((self.cursor >> (8 * lvl)) & 0xFF) as usize;
                let Some(j) = self.next_occupied(lvl, cur + 1) else {
                    continue;
                };
                let below = if lvl == LEVELS - 1 {
                    u64::MAX
                } else {
                    (1u64 << (8 * (lvl + 1))) - 1
                };
                let base = (self.cursor & !below) | ((j as u64) << (8 * lvl));
                if base << SHIFT > t || base >= (1u64 << (64 - SHIFT)) {
                    // Past the horizon of interest (or the shifted key
                    // would overflow back into range — impossible for
                    // real keys, which fit in 64 - SHIFT bits).
                    return None;
                }
                self.cursor = base;
                self.clear_bit(lvl, j);
                let mut buf = std::mem::take(&mut self.scratch);
                buf.extend(self.slots[lvl * SLOTS + j].drain(..));
                for e in buf.drain(..) {
                    self.push_cascaded(e);
                }
                self.scratch = buf;
                // The cascade may have landed entries in the new
                // current bucket (base has byte 0 == 0); sort it
                // before the drain branch above pops from it.
                self.sort_bucket((base & 0xFF) as usize);
                cascaded = true;
                break;
            }
            if !cascaded {
                return None;
            }
        }
    }

    /// Empty the wheel and rewind the cursor, keeping slot capacity so
    /// a recycled wheel allocates nothing on its next session.
    pub fn reset(&mut self) {
        for lvl in 0..LEVELS {
            while let Some(idx) = self.next_occupied(lvl, 0) {
                self.slots[lvl * SLOTS + idx].clear();
                self.clear_bit(lvl, idx);
            }
        }
        self.cursor = 0;
        self.len = 0;
        self.scratch.clear();
    }
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

struct HeapEntry<T> {
    at: u64,
    seq: u64,
    item: T,
}
impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, o: &Self) -> bool {
        self.at == o.at && self.seq == o.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want min-(at, seq).
        (o.at, o.seq).cmp(&(self.at, self.seq))
    }
}

/// The original binary-heap event queue, kept as the test oracle.
pub struct HeapQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
}

impl<T> HeapQueue<T> {
    /// An empty heap queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Queue `item` at `(at, seq)`.
    pub fn push(&mut self, at: u64, seq: u64, item: T) {
        self.heap.push(HeapEntry { at, seq, item });
    }

    /// Pop the earliest entry with `at <= t`, in `(at, seq)` order.
    pub fn pop_before(&mut self, t: u64) -> Option<(u64, u64, T)> {
        if self.heap.peek().is_some_and(|e| e.at <= t) {
            self.heap.pop().map(|e| (e.at, e.seq, e.item))
        } else {
            None
        }
    }

    /// Empty the heap, keeping its capacity.
    pub fn reset(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for HeapQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// An event queue of either kind behind one interface.
//
// The wheel variant is large (inline occupancy bitmaps), but exactly
// one queue exists per `Network` and it is arena-recycled, so inline
// storage is free — boxing it would put a pointer chase on every
// push/pop, the very indirection the wheel exists to avoid.
#[allow(clippy::large_enum_variant)]
pub enum EventQueue<T> {
    /// Timer-wheel fast path.
    Wheel(TimerWheel<T>),
    /// Binary-heap oracle.
    Heap(HeapQueue<T>),
}

impl<T> EventQueue<T> {
    /// An empty queue of the given kind.
    pub fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::TimerWheel => EventQueue::Wheel(TimerWheel::new()),
            SchedulerKind::BinaryHeap => EventQueue::Heap(HeapQueue::new()),
        }
    }

    /// Which implementation this queue is.
    pub fn kind(&self) -> SchedulerKind {
        match self {
            EventQueue::Wheel(_) => SchedulerKind::TimerWheel,
            EventQueue::Heap(_) => SchedulerKind::BinaryHeap,
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        match self {
            EventQueue::Wheel(w) => w.len(),
            EventQueue::Heap(h) => h.len(),
        }
    }

    /// True if no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queue `item` at `(at, seq)`.
    pub fn push(&mut self, at: u64, seq: u64, item: T) {
        match self {
            EventQueue::Wheel(w) => w.push(at, seq, item),
            EventQueue::Heap(h) => h.push(at, seq, item),
        }
    }

    /// Pop the earliest entry with `at <= t`, in `(at, seq)` order.
    pub fn pop_before(&mut self, t: u64) -> Option<(u64, u64, T)> {
        match self {
            EventQueue::Wheel(w) => w.pop_before(t),
            EventQueue::Heap(h) => h.pop_before(t),
        }
    }

    /// Empty the queue, keeping allocated capacity for reuse.
    pub fn reset(&mut self) {
        match self {
            EventQueue::Wheel(w) => w.reset(),
            EventQueue::Heap(h) => h.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    /// Drain everything before `t` from both queues, asserting
    /// identical pop sequences.
    fn drain_both(w: &mut TimerWheel<u32>, h: &mut HeapQueue<u32>, t: u64) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        loop {
            let a = w.pop_before(t);
            let b = h.pop_before(t);
            match (a, b) {
                (None, None) => break,
                (x, y) => {
                    assert_eq!(x, y, "wheel and heap disagree at t={t}");
                    out.push(x.unwrap());
                }
            }
        }
        out
    }

    #[test]
    fn same_tick_fifo_by_seq_even_when_pushed_out_of_order() {
        let mut w = TimerWheel::new();
        let mut h = HeapQueue::new();
        // Out-of-seq arrival into one bucket (what a lazily hopped
        // timer produces): pops must still come out in seq order.
        for &(at, seq) in &[(100u64, 9u64), (100, 5), (100, 7), (40, 2), (100, 1)] {
            w.push(at, seq, seq as u32);
            h.push(at, seq, seq as u32);
        }
        let got = drain_both(&mut w, &mut h, 1_000);
        let seqs: Vec<u64> = got.iter().map(|e| e.1).collect();
        assert_eq!(seqs, vec![2, 1, 5, 7, 9]);
    }

    #[test]
    fn pop_respects_time_bound() {
        let mut w = TimerWheel::new();
        w.push(100, 1, 0u32);
        assert_eq!(w.pop_before(99), None);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_before(100), Some((100, 1, 0)));
        assert!(w.is_empty());
    }

    #[test]
    fn far_future_entries_cascade_in_order() {
        // Entries spanning every wheel level, pushed shuffled; they
        // must pop in time order with exact timestamps. This is the
        // "past the wheel horizon" case: everything beyond 256 ns of
        // the cursor lives in upper levels and must cascade down.
        let ats = [
            3u64,
            255,
            256,
            70_000,
            20_000_000,
            6_000_000_000,
            2_000_000_000_000,
            900_000_000_000_000,
            u64::MAX / 2,
            u64::MAX - 1,
        ];
        let mut w = TimerWheel::new();
        let mut h = HeapQueue::new();
        for (i, &at) in ats.iter().enumerate().rev() {
            w.push(at, i as u64 + 1, i as u32);
            h.push(at, i as u64 + 1, i as u32);
        }
        let got = drain_both(&mut w, &mut h, u64::MAX);
        let times: Vec<u64> = got.iter().map(|e| e.0).collect();
        assert_eq!(times, ats.to_vec());
    }

    #[test]
    fn zero_delay_insert_during_drain_pops_same_tick() {
        let mut w = TimerWheel::new();
        w.push(50, 1, 1u32);
        w.push(50, 2, 2u32);
        assert_eq!(w.pop_before(100), Some((50, 1, 1)));
        // Dispatch of seq 1 schedules a zero-delay event at now=50.
        w.push(50, 3, 3u32);
        // And a hop re-files an *older* seq at now=50: must pop first.
        w.push(50, 0, 0u32);
        assert_eq!(w.pop_before(100), Some((50, 0, 0)));
        assert_eq!(w.pop_before(100), Some((50, 2, 2)));
        assert_eq!(w.pop_before(100), Some((50, 3, 3)));
        assert_eq!(w.pop_before(100), None);
    }

    #[test]
    fn same_tick_push_pop_at_cursor_bucket_matches_heap() {
        // Regression for the `level_of` zero-delta hazard: every push
        // here lands in the exact bucket the cursor sits on
        // (`key ^ cursor == 0`), the case where `63 - leading_zeros()`
        // would underflow without saturation. Interleave pushes and
        // pops at the same tick and check against the heap oracle.
        let mut w = TimerWheel::new();
        let mut h = HeapQueue::new();
        let mut seq = 0u64;
        // Ticks chosen to park the cursor at bucket boundaries across
        // several levels (SHIFT-granular buckets).
        for &now in &[
            0u64,
            1 << SHIFT,
            3 << SHIFT,
            (1 << (SHIFT + 9)) + (1 << SHIFT),
        ] {
            // Advance both cursors to `now` with a sentinel drain.
            w.push(now, seq, 0u32);
            h.push(now, seq, 0u32);
            seq += 1;
            drain_both(&mut w, &mut h, now);
            // Same-tick churn: push into the cursor's own bucket and
            // pop it back, repeatedly, including re-pushes triggered
            // mid-drain (a zero-delay event scheduled by a dispatch).
            for i in 0..8 {
                w.push(now, seq, i);
                h.push(now, seq, i);
                seq += 1;
                if i % 3 == 0 {
                    drain_both(&mut w, &mut h, now);
                }
            }
            drain_both(&mut w, &mut h, now);
            assert!(w.is_empty() && h.is_empty(), "drained at t={now}");
        }
    }

    #[test]
    fn differential_random_workload_matches_heap() {
        let mut rng = SimRng::seed_from_u64(0xC0FFEE);
        let mut w = TimerWheel::new();
        let mut h = HeapQueue::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut popped = 0usize;
        for round in 0..2_000 {
            // Push a burst at mixed distances (mostly near-future, the
            // occasional far-future outlier like a 60 s RTO backoff).
            for _ in 0..rng.range_u64(1, 5) {
                seq += 1;
                let delta = match rng.range_u64(0, 10) {
                    0 => 0,
                    1..=6 => rng.range_u64(1, 2_000),
                    7..=8 => rng.range_u64(1, 5_000_000),
                    _ => rng.range_u64(1, 70_000_000_000),
                };
                w.push(now + delta, seq, round as u32);
                h.push(now + delta, seq, round as u32);
            }
            // Advance time and drain a window.
            let t = now + rng.range_u64(0, 3_000_000);
            loop {
                let a = w.pop_before(t);
                let b = h.pop_before(t);
                assert_eq!(a, b, "divergence at round {round}");
                match a {
                    Some((at, _, _)) => {
                        assert!(at >= now && at <= t);
                        now = at;
                        popped += 1;
                    }
                    None => break,
                }
                // Occasionally schedule from "inside" the dispatch,
                // including zero-delay.
                if rng.chance(0.2) {
                    seq += 1;
                    let delta = rng.range_u64(0, 500);
                    w.push(now + delta, seq, round as u32);
                    h.push(now + delta, seq, round as u32);
                }
            }
            now = t;
        }
        assert!(popped > 3_000, "workload too small: {popped}");
        assert_eq!(w.len(), h.len());
    }

    #[test]
    fn reset_empties_and_rewinds() {
        let mut w = TimerWheel::new();
        w.push(123, 1, 1u32);
        w.push(9_000_000_000, 2, 2u32);
        assert_eq!(w.pop_before(u64::MAX), Some((123, 1, 1)));
        w.reset();
        assert!(w.is_empty());
        // Cursor rewound: t=0 pushes must be legal and pop first.
        w.push(0, 3, 3u32);
        w.push(10, 4, 4u32);
        assert_eq!(w.pop_before(u64::MAX), Some((0, 3, 3)));
        assert_eq!(w.pop_before(u64::MAX), Some((10, 4, 4)));
    }
}
