//! Streaming statistics accumulators.
//!
//! Probes aggregate per-sample metrics (CPU load, RSSI, RTT…) into
//! `avg`/`min`/`max`/`std` summaries at the end of a session, exactly as
//! the paper's probes do. [`Welford`] computes these in one pass with
//! numerically stable variance.

/// One-pass mean/min/max/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add an observation. Non-finite samples are ignored.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Arithmetic mean, or 0.0 with no samples (probe columns must stay
    /// numeric; "no signal" is encoded elsewhere as missing features).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Minimum, or 0.0 with no samples.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }
    /// Maximum, or 0.0 with no samples.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
    /// Population standard deviation, or 0.0 with fewer than 2 samples.
    pub fn std(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }
    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroes() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.min(), 0.0);
        assert_eq!(w.max(), 0.0);
        assert_eq!(w.std(), 0.0);
    }

    #[test]
    fn known_values() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.std() - 2.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn ignores_non_finite() {
        let mut w = Welford::new();
        w.add(f64::NAN);
        w.add(f64::INFINITY);
        w.add(3.0);
        assert_eq!(w.count(), 1);
        assert_eq!(w.mean(), 3.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.std() - all.std()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Welford::new();
        a.add(1.0);
        let b = Welford::new();
        let mut c = a.clone();
        c.merge(&b);
        assert_eq!(c.count(), 1);
        let mut d = Welford::new();
        d.merge(&a);
        assert_eq!(d.count(), 1);
        assert_eq!(d.mean(), 1.0);
    }
}
