//! Packet-level TCP (Reno with NewReno partial-ACK recovery).
//!
//! The model implements what the paper's metric inventory needs to be
//! *real* rather than painted on: three-way handshake (first-packet
//! arrival delay), slow start and congestion avoidance (utilisation
//! dynamics), fast retransmit/recovery and RTO with exponential backoff
//! (retransmission counts), receiver flow control with a finite buffer
//! drained by the application (window-size metrics — a stalled player
//! really does close the window), MSS negotiation from path MTUs, out-
//! of-order reassembly (OOO/reordering counts), and RFC 1323-style
//! timestamps (RTT samples for endpoints *and* passive observers).
//!
//! The state machine is engine-agnostic: every entry point takes `now`
//! and appends to a [`TcpActions`] batch (packets to inject, timers to
//! arm, application events). The engine owns delivery and timer
//! bookkeeping.

use std::collections::BTreeMap;

use crate::ids::{FlowId, HostId};
use crate::packet::{Packet, TcpFlags, TcpHdr};
use crate::stats::Welford;
use crate::time::{SimDuration, SimTime};

/// Which endpoint of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The connection initiator (the video client / mobile device).
    Client,
    /// The passive opener (the content server).
    Server,
}

impl Side {
    /// The opposite endpoint.
    pub fn other(self) -> Side {
        match self {
            Side::Client => Side::Server,
            Side::Server => Side::Client,
        }
    }
    /// Index into per-side arrays.
    pub fn idx(self) -> usize {
        match self {
            Side::Client => 0,
            Side::Server => 1,
        }
    }
}

/// Lifecycle of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowState {
    /// SYN exchange in progress.
    Connecting,
    /// Handshake complete, data may flow.
    Established,
    /// Both directions closed (or the flow was aborted).
    Closed,
}

/// Events surfaced to the owning application(s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpAppEvent {
    /// A SYN arrived at the passive side.
    Incoming { flow: FlowId },
    /// Handshake completed (reported once, when the initiator's ACK of
    /// the SYN-ACK is sent — i.e. when the initiator may transmit).
    Connected { flow: FlowId },
    /// In-order data is waiting to be read at `side`.
    DataAvailable {
        flow: FlowId,
        side: Side,
        available: u64,
    },
    /// Everything the application asked to send from `side` has been
    /// acknowledged.
    SendDrained { flow: FlowId, side: Side },
    /// The peer closed its direction (all peer data has been read or is
    /// readable).
    PeerFin { flow: FlowId, side: Side },
    /// The flow is fully closed.
    Closed { flow: FlowId },
    /// The flow was aborted after repeated RTO failures.
    Aborted { flow: FlowId },
}

/// Timer arm request produced by the state machine.
#[derive(Debug, Clone, Copy)]
pub struct TimerArm {
    /// Endpoint the timer belongs to.
    pub side: Side,
    /// Delay from `now`.
    pub delay: SimDuration,
    /// Generation — the engine must deliver the timeout only if the
    /// endpoint's generation still matches.
    pub gen: u64,
}

/// Output batch of one state-machine entry point.
#[derive(Debug, Default)]
pub struct TcpActions {
    /// Packets to inject at their origin host.
    pub packets: Vec<Packet>,
    /// Timers to (re-)arm.
    pub timers: Vec<TimerArm>,
    /// Events for the owning application(s).
    pub events: Vec<TcpAppEvent>,
}

/// Sender/receiver statistics kept by each endpoint (ground truth for
/// validating the passive observers, and used by endpoint-local
/// probes).
#[derive(Debug, Clone, Default)]
pub struct EndpointStats {
    /// Data segments sent (first transmissions).
    pub data_pkts: u64,
    /// Data bytes sent (first transmissions).
    pub data_bytes: u64,
    /// Retransmitted segments.
    pub retx_pkts: u64,
    /// Retransmitted bytes.
    pub retx_bytes: u64,
    /// Fast retransmits triggered.
    pub fast_retx: u64,
    /// RTO timeouts fired.
    pub timeouts: u64,
    /// Out-of-order data segments received.
    pub ooo_pkts: u64,
    /// RTT samples (seconds).
    pub rtt: Welford,
    /// Peer-advertised window (bytes) over time.
    pub peer_wnd: Welford,
}

const INIT_RTO: SimDuration = SimDuration::from_millis(1000);
const MIN_RTO: SimDuration = SimDuration::from_millis(200);
const MAX_RTO: SimDuration = SimDuration::from_secs(60);
/// Abort the connection after this many consecutive RTOs.
const MAX_CONSECUTIVE_TIMEOUTS: u32 = 12;
/// Initial congestion window in segments (RFC 6928).
const INIT_CWND_SEGS: f64 = 10.0;

/// One endpoint of a TCP connection.
#[derive(Debug, Clone)]
pub struct TcpEndpoint {
    host: HostId,
    /// Our MSS advertisement (from our NIC MTU).
    mss_local: u32,
    /// Effective MSS after negotiation (min of both advertisements).
    mss: u32,

    // --- send side ---
    snd_una: u64,
    snd_nxt: u64,
    /// Highest sequence ever transmitted (for retransmission
    /// accounting after a go-back-N rewind).
    max_sent: u64,
    /// Absolute sequence where application data starts (1: SYN uses 0).
    data_start: u64,
    /// Total application bytes requested for sending (cumulative).
    app_limit: u64,
    /// Send FIN once all data up to `app_limit` is sent & acked.
    close_requested: bool,
    fin_sent: bool,
    fin_acked: bool,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    in_fast_recovery: bool,
    recover: u64,
    srtt: Option<f64>,
    rttvar: f64,
    rto: SimDuration,
    backoff: u32,
    consecutive_timeouts: u32,
    timer_gen: u64,
    timer_armed: bool,
    peer_wnd: u32,
    drained_notified: bool,

    // --- receive side ---
    rcv_nxt: u64,
    /// Out-of-order intervals `[start, end)` keyed by start.
    ooo: BTreeMap<u64, u64>,
    rcv_buf_cap: u32,
    /// Bytes the application has consumed.
    app_read: u64,
    /// tsval of the most recently received segment (echoed in ACKs).
    ts_to_echo: SimTime,
    peer_fin_at: Option<u64>,
    peer_fin_done: bool,
    fin_notified: bool,

    /// Statistics.
    pub stats: EndpointStats,
}

impl TcpEndpoint {
    fn new(host: HostId, mss_local: u32, rcv_buf_cap: u32) -> Self {
        TcpEndpoint {
            host,
            mss_local,
            mss: mss_local,
            snd_una: 0,
            snd_nxt: 0,
            max_sent: 0,
            data_start: 1,
            app_limit: 0,
            close_requested: false,
            fin_sent: false,
            fin_acked: false,
            cwnd: INIT_CWND_SEGS * mss_local as f64,
            ssthresh: f64::INFINITY,
            dupacks: 0,
            in_fast_recovery: false,
            recover: 0,
            srtt: None,
            rttvar: 0.0,
            rto: INIT_RTO,
            backoff: 0,
            consecutive_timeouts: 0,
            timer_gen: 0,
            timer_armed: false,
            peer_wnd: 65535,
            drained_notified: true,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            rcv_buf_cap,
            app_read: 0,
            ts_to_echo: SimTime::ZERO,
            peer_fin_at: None,
            peer_fin_done: false,
            fin_notified: false,
            stats: EndpointStats::default(),
        }
    }

    /// Effective (negotiated) MSS.
    pub fn mss(&self) -> u32 {
        self.mss
    }
    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }
    /// Bytes of in-order data ready for the application. (The peer's
    /// FIN consumes a sequence number but carries no data.)
    pub fn readable(&self) -> u64 {
        self.rcv_nxt
            .saturating_sub(u64::from(self.peer_fin_done))
            .saturating_sub(self.data_start)
            .saturating_sub(self.app_read)
    }
    /// Bytes in flight (sent, unacknowledged).
    pub fn inflight(&self) -> u64 {
        self.snd_nxt.saturating_sub(self.snd_una)
    }
    /// Bytes the local application has consumed from the receive side.
    pub fn bytes_read(&self) -> u64 {
        self.app_read
    }
    /// Bytes of application data acknowledged by the peer.
    pub fn acked_data(&self) -> u64 {
        self.snd_una.saturating_sub(self.data_start)
    }

    fn ooo_bytes(&self) -> u64 {
        self.ooo.iter().map(|(s, e)| e - s).sum()
    }

    /// Receive window to advertise.
    fn rcv_wnd(&self) -> u32 {
        let used = self.readable() + self.ooo_bytes();
        (self.rcv_buf_cap as u64).saturating_sub(used) as u32
    }

    fn rtt_sample(&mut self, rtt_s: f64) {
        self.stats.rtt.add(rtt_s);
        let srtt = match self.srtt {
            None => {
                self.rttvar = rtt_s / 2.0;
                rtt_s
            }
            Some(srtt) => {
                let d = (srtt - rtt_s).abs();
                self.rttvar = 0.75 * self.rttvar + 0.25 * d;
                0.875 * srtt + 0.125 * rtt_s
            }
        };
        self.srtt = Some(srtt);
        let rto = SimDuration::from_secs_f64(srtt + (4.0 * self.rttvar).max(0.01));
        self.rto = rto.clamp(MIN_RTO, MAX_RTO);
    }

    fn current_rto(&self) -> SimDuration {
        let scaled = self.rto.0.saturating_mul(1u64 << self.backoff.min(10));
        SimDuration(scaled).clamp(MIN_RTO, MAX_RTO)
    }
}

/// A TCP connection between two hosts.
#[derive(Debug, Clone)]
pub struct TcpFlow {
    /// Flow identifier.
    pub id: FlowId,
    /// Lifecycle state.
    pub state: FlowState,
    /// Destination port on the server (listener key; also gives
    /// observers a realistic 4-tuple).
    pub dst_port: u16,
    /// Ephemeral source port on the client.
    pub src_port: u16,
    /// When `open` was called.
    pub opened_at: SimTime,
    /// When the handshake completed.
    pub established_at: Option<SimTime>,
    /// When the flow fully closed or aborted.
    pub closed_at: Option<SimTime>,
    /// True once closed without abort.
    pub complete: bool,
    ep: [TcpEndpoint; 2],
}

impl TcpFlow {
    /// Create a flow between `client` and `server`. `mss_*` come from
    /// the hosts' egress MTUs; `rcv_buf` is each endpoint's receive
    /// buffer capacity in bytes.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: FlowId,
        client: HostId,
        server: HostId,
        dst_port: u16,
        src_port: u16,
        mss_client: u32,
        mss_server: u32,
        rcv_buf: u32,
    ) -> Self {
        TcpFlow {
            id,
            state: FlowState::Connecting,
            dst_port,
            src_port,
            opened_at: SimTime::ZERO,
            established_at: None,
            closed_at: None,
            complete: false,
            ep: [
                TcpEndpoint::new(client, mss_client, rcv_buf),
                TcpEndpoint::new(server, mss_server, rcv_buf),
            ],
        }
    }

    /// Endpoint accessor.
    pub fn endpoint(&self, side: Side) -> &TcpEndpoint {
        &self.ep[side.idx()]
    }
    /// Host of an endpoint.
    pub fn host(&self, side: Side) -> HostId {
        self.ep[side.idx()].host
    }
    /// Which side of this flow lives on `host` (client wins if both —
    /// loopback flows are not supported).
    pub fn side_of(&self, host: HostId) -> Option<Side> {
        if self.ep[0].host == host {
            Some(Side::Client)
        } else if self.ep[1].host == host {
            Some(Side::Server)
        } else {
            None
        }
    }

    fn hdr(
        &self,
        side: Side,
        seq: u64,
        len: u32,
        flags: TcpFlags,
        now: SimTime,
        is_retx: bool,
    ) -> TcpHdr {
        let ep = &self.ep[side.idx()];
        TcpHdr {
            flow: self.id,
            from_initiator: side == Side::Client,
            dport: self.dst_port,
            sport: self.src_port,
            seq,
            ack: if flags.ack { ep.rcv_nxt } else { 0 },
            len,
            flags,
            wnd: ep.rcv_wnd(),
            mss: ep.mss_local,
            tsval: now,
            tsecr: if flags.ack {
                ep.ts_to_echo
            } else {
                SimTime::ZERO
            },
            is_retx,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        side: Side,
        seq: u64,
        len: u32,
        flags: TcpFlags,
        now: SimTime,
        is_retx: bool,
        out: &mut TcpActions,
    ) {
        let hdr = self.hdr(side, seq, len, flags, now, is_retx);
        let src = self.ep[side.idx()].host;
        let dst = self.ep[side.other().idx()].host;
        out.packets.push(Packet::tcp(src, dst, hdr, now));
    }

    fn arm_timer(&mut self, side: Side, now: SimTime, out: &mut TcpActions) {
        let _ = now;
        let ep = &mut self.ep[side.idx()];
        ep.timer_gen += 1;
        ep.timer_armed = true;
        out.timers.push(TimerArm {
            side,
            delay: ep.current_rto(),
            gen: ep.timer_gen,
        });
    }

    fn cancel_timer(&mut self, side: Side) {
        let ep = &mut self.ep[side.idx()];
        ep.timer_gen += 1;
        ep.timer_armed = false;
    }

    /// Is a timer event with generation `gen` at `side` still valid?
    pub fn timer_valid(&self, side: Side, gen: u64) -> bool {
        let ep = &self.ep[side.idx()];
        ep.timer_armed && ep.timer_gen == gen
    }

    /// Initiate the connection: the client sends its SYN.
    pub fn open(&mut self, now: SimTime, out: &mut TcpActions) {
        assert_eq!(self.state, FlowState::Connecting);
        self.opened_at = now;
        let ep = &mut self.ep[Side::Client.idx()];
        ep.snd_nxt = 1; // SYN consumes seq 0
        self.emit(Side::Client, 0, 0, TcpFlags::SYN, now, false, out);
        self.arm_timer(Side::Client, now, out);
    }

    /// Application requests `bytes` more data to be sent from `side`.
    pub fn app_send(&mut self, side: Side, bytes: u64, now: SimTime, out: &mut TcpActions) {
        if self.state == FlowState::Closed {
            return;
        }
        let ep = &mut self.ep[side.idx()];
        ep.app_limit += bytes;
        ep.drained_notified = false;
        self.try_send(side, now, out);
    }

    /// Application reads up to `max` in-order bytes; returns the amount
    /// consumed. Reopening a closed window emits a window update.
    pub fn app_read(&mut self, side: Side, max: u64, now: SimTime, out: &mut TcpActions) -> u64 {
        let ep = &mut self.ep[side.idx()];
        let avail = ep.readable();
        let take = avail.min(max);
        if take == 0 {
            return 0;
        }
        let wnd_before = ep.rcv_wnd();
        ep.app_read += take;
        let wnd_after = ep.rcv_wnd();
        // Window-update ACK when the window grows from (near) zero —
        // the peer may be persist-blocked on it.
        if self.state == FlowState::Established && wnd_before < ep.mss && wnd_after >= ep.mss {
            let seq = ep.snd_nxt;
            self.emit(side, seq, 0, TcpFlags::DATA, now, false, out);
        }
        take
    }

    /// Application will send nothing further from `side` after what has
    /// already been requested; FIN follows the last data byte.
    pub fn app_close(&mut self, side: Side, now: SimTime, out: &mut TcpActions) {
        if self.state == FlowState::Closed {
            return;
        }
        self.ep[side.idx()].close_requested = true;
        self.try_send(side, now, out);
    }

    /// Abort immediately (e.g. the owning application gave up).
    pub fn abort(&mut self, now: SimTime, out: &mut TcpActions) {
        if self.state == FlowState::Closed {
            return;
        }
        self.state = FlowState::Closed;
        self.closed_at = Some(now);
        self.complete = false;
        self.cancel_timer(Side::Client);
        self.cancel_timer(Side::Server);
        out.events.push(TcpAppEvent::Aborted { flow: self.id });
    }

    /// Transmit as much as windows allow from `side`.
    fn try_send(&mut self, side: Side, now: SimTime, out: &mut TcpActions) {
        if self.state != FlowState::Established {
            return;
        }
        loop {
            let ep = &self.ep[side.idx()];
            let data_end = ep.data_start + ep.app_limit;
            let unsent = data_end.saturating_sub(ep.snd_nxt);
            let wnd = (ep.cwnd as u64).min(ep.peer_wnd as u64);
            let room = wnd.saturating_sub(ep.inflight());
            if unsent > 0 && room > 0 {
                let len = unsent.min(room).min(ep.mss as u64) as u32;
                let seq = ep.snd_nxt;
                // After a go-back-N rewind this re-covers old ground.
                let is_retx = seq < ep.max_sent;
                {
                    let ep = &mut self.ep[side.idx()];
                    ep.snd_nxt += len as u64;
                    ep.max_sent = ep.max_sent.max(ep.snd_nxt);
                    if is_retx {
                        ep.stats.retx_pkts += 1;
                        ep.stats.retx_bytes += len as u64;
                    } else {
                        ep.stats.data_pkts += 1;
                        ep.stats.data_bytes += len as u64;
                    }
                }
                self.emit(side, seq, len, TcpFlags::DATA, now, is_retx, out);
                continue;
            }
            break;
        }
        // FIN once everything has been transmitted.
        let ep = &self.ep[side.idx()];
        let data_end = ep.data_start + ep.app_limit;
        if ep.close_requested && !ep.fin_sent && ep.snd_nxt == data_end {
            let seq = ep.snd_nxt;
            {
                let ep = &mut self.ep[side.idx()];
                ep.fin_sent = true;
                ep.snd_nxt += 1; // FIN consumes one seq
            }
            self.emit(side, seq, 0, TcpFlags::FIN, now, false, out);
        }
        // (Re-)arm the retransmission timer.
        let ep = &self.ep[side.idx()];
        if ep.inflight() > 0 {
            if !ep.timer_armed {
                self.arm_timer(side, now, out);
            }
        } else if ep.peer_wnd == 0 && ep.app_limit + ep.data_start > ep.snd_nxt {
            // Zero-window persist probing.
            if !ep.timer_armed {
                self.arm_timer(side, now, out);
            }
        } else if ep.timer_armed {
            self.cancel_timer(side);
        }
    }

    /// A segment arrived at `side` (engine delivers packets here).
    pub fn on_segment(&mut self, side: Side, hdr: &TcpHdr, now: SimTime, out: &mut TcpActions) {
        if self.state == FlowState::Closed {
            return;
        }
        // Handshake handling.
        if hdr.flags.syn {
            if side == Side::Server && !hdr.flags.ack {
                // SYN at the passive opener.
                let ep = &mut self.ep[Side::Server.idx()];
                let first_syn = ep.rcv_nxt == 0;
                ep.mss = ep.mss_local.min(hdr.mss);
                ep.rcv_nxt = 1;
                ep.ts_to_echo = hdr.tsval;
                ep.peer_wnd = hdr.wnd;
                if first_syn {
                    let e0 = &mut self.ep[Side::Server.idx()];
                    e0.snd_nxt = 1;
                    out.events.push(TcpAppEvent::Incoming { flow: self.id });
                }
                self.emit(Side::Server, 0, 0, TcpFlags::SYN_ACK, now, !first_syn, out);
                self.arm_timer(Side::Server, now, out);
            } else if side == Side::Client && hdr.flags.ack {
                // SYN-ACK at the initiator.
                if self.state == FlowState::Connecting {
                    let ep = &mut self.ep[Side::Client.idx()];
                    ep.mss = ep.mss_local.min(hdr.mss);
                    ep.rcv_nxt = 1;
                    ep.snd_una = 1;
                    ep.ts_to_echo = hdr.tsval;
                    ep.peer_wnd = hdr.wnd;
                    ep.consecutive_timeouts = 0;
                    ep.backoff = 0;
                    let rtt = now.since(hdr.tsecr).as_secs_f64();
                    if hdr.tsecr != SimTime::ZERO {
                        ep.rtt_sample(rtt);
                    }
                    self.state = FlowState::Established;
                    self.established_at = Some(now);
                    self.cancel_timer(Side::Client);
                    let seq = self.ep[Side::Client.idx()].snd_nxt;
                    self.emit(Side::Client, seq, 0, TcpFlags::DATA, now, false, out);
                    out.events.push(TcpAppEvent::Connected { flow: self.id });
                    self.try_send(Side::Client, now, out);
                } else {
                    // Duplicate SYN-ACK: our ACK was lost; re-ACK.
                    let seq = self.ep[Side::Client.idx()].snd_nxt;
                    self.emit(Side::Client, seq, 0, TcpFlags::DATA, now, false, out);
                }
            }
            return;
        }

        // Server completes the handshake on the first ACK that covers
        // its SYN.
        if self.state == FlowState::Connecting
            && side == Side::Server
            && hdr.flags.ack
            && hdr.ack >= 1
        {
            self.state = FlowState::Established;
            self.established_at = Some(now);
            let ep = &mut self.ep[Side::Server.idx()];
            ep.snd_una = 1;
            ep.consecutive_timeouts = 0;
            ep.backoff = 0;
            self.cancel_timer(Side::Server);
            // fall through: the segment may carry data/acks too.
        }
        if self.state != FlowState::Established {
            return;
        }

        self.process_ack(side, hdr, now, out);
        if hdr.len > 0 || hdr.flags.fin {
            self.process_data(side, hdr, now, out);
        }
        self.try_send(side, now, out);
        self.maybe_finish(now, out);
    }

    fn process_ack(&mut self, side: Side, hdr: &TcpHdr, now: SimTime, out: &mut TcpActions) {
        if !hdr.flags.ack {
            return;
        }
        let mss;
        let mut fast_retx_seq = None;
        {
            let ep = &mut self.ep[side.idx()];
            mss = ep.mss as f64;
            let prev_wnd = ep.peer_wnd;
            ep.peer_wnd = hdr.wnd;
            ep.stats.peer_wnd.add(hdr.wnd as f64);
            if hdr.ack > ep.snd_una {
                // New data acknowledged.
                let acked = hdr.ack - ep.snd_una;
                ep.snd_una = hdr.ack;
                // A late ACK can overtake a rewound snd_nxt.
                ep.snd_nxt = ep.snd_nxt.max(ep.snd_una);
                ep.consecutive_timeouts = 0;
                ep.backoff = 0;
                if hdr.tsecr != SimTime::ZERO {
                    ep.rtt_sample(now.since(hdr.tsecr).as_secs_f64());
                }
                if ep.in_fast_recovery {
                    if hdr.ack >= ep.recover {
                        ep.in_fast_recovery = false;
                        ep.cwnd = ep.ssthresh;
                        ep.dupacks = 0;
                    } else {
                        // NewReno partial ACK: retransmit the next hole.
                        fast_retx_seq = Some(ep.snd_una);
                        ep.cwnd = (ep.cwnd - acked as f64 + mss).max(mss);
                    }
                } else {
                    ep.dupacks = 0;
                    if ep.cwnd < ep.ssthresh {
                        ep.cwnd += (acked as f64).min(mss); // slow start
                    } else {
                        ep.cwnd += mss * mss / ep.cwnd; // congestion avoidance
                    }
                }
                let fin_seq_end = ep.data_start + ep.app_limit + 1;
                if hdr.ack >= fin_seq_end && (ep.fin_sent || ep.close_requested) {
                    // Covers the rewind race: an RTO reset `fin_sent`,
                    // then a late ACK of the original FIN arrived — the
                    // FIN is acked even though we would never re-send it.
                    ep.fin_sent = true;
                    ep.fin_acked = true;
                }
            } else if hdr.ack == ep.snd_una
                && hdr.len == 0
                && !hdr.flags.fin
                && ep.inflight() > 0
                // Exclude pure window *updates* (window grows, no new
                // data). Genuine dupacks keep or shrink the window
                // (out-of-order bytes occupy the receive buffer).
                && hdr.wnd <= prev_wnd
            {
                // Duplicate ACK.
                ep.dupacks += 1;
                if ep.dupacks == 3 && !ep.in_fast_recovery {
                    ep.in_fast_recovery = true;
                    ep.recover = ep.snd_nxt;
                    let inflight = ep.inflight() as f64;
                    ep.ssthresh = (inflight / 2.0).max(2.0 * mss);
                    ep.cwnd = ep.ssthresh + 3.0 * mss;
                    ep.stats.fast_retx += 1;
                    fast_retx_seq = Some(ep.snd_una);
                } else if ep.in_fast_recovery {
                    ep.cwnd += mss; // window inflation
                }
            }
        }
        if let Some(seq) = fast_retx_seq {
            if self.ep[side.idx()].dupacks == 3 {
                // Entering fast recovery: retransmit every hole the
                // receiver reports (SACK-equivalent — see
                // `receiver_holes`), capped to one window's worth.
                self.retransmit_holes(side, seq, now, out);
            } else {
                self.retransmit_one(side, seq, now, out);
            }
        }
        // Restart the timer after cumulative progress.
        let ep = &self.ep[side.idx()];
        if hdr.ack > 0 && ep.inflight() > 0 {
            self.arm_timer(side, now, out);
        } else if ep.inflight() == 0 && ep.timer_armed && ep.peer_wnd > 0 {
            self.cancel_timer(side);
        }
        // Notify the app when its send request fully drained.
        let ep = &mut self.ep[side.idx()];
        if !ep.drained_notified && ep.acked_data() >= ep.app_limit {
            ep.drained_notified = true;
            out.events.push(TcpAppEvent::SendDrained {
                flow: self.id,
                side,
            });
        }
    }

    /// The byte ranges below the receiver's highest out-of-order block
    /// that have not arrived — what a SACK scoreboard would report.
    /// (Both endpoints live in this struct, so the receiver's
    /// reassembly map *is* the scoreboard; observers see only the
    /// resulting retransmissions, exactly as with real SACK.)
    fn receiver_holes(&self, side: Side) -> Vec<(u64, u64)> {
        let rcv = &self.ep[side.other().idx()];
        let mut holes = Vec::new();
        let mut cursor = rcv.rcv_nxt;
        for (&s, &e) in &rcv.ooo {
            if s > cursor {
                holes.push((cursor, s));
            }
            cursor = cursor.max(e);
        }
        holes
    }

    /// Retransmit all reported holes (at least the segment at
    /// `first_seq`), capped at 64 KiB per invocation.
    fn retransmit_holes(&mut self, side: Side, first_seq: u64, now: SimTime, out: &mut TcpActions) {
        let holes = self.receiver_holes(side);
        if holes.is_empty() {
            self.retransmit_one(side, first_seq, now, out);
            return;
        }
        let mss = self.ep[side.idx()].mss as u64;
        let mut budget: u64 = 64 * 1024;
        for (s, e) in holes {
            let mut seq = s;
            while seq < e && budget > 0 {
                self.retransmit_one(side, seq, now, out);
                let len = mss.min(e - seq);
                seq += len;
                budget = budget.saturating_sub(len);
            }
        }
    }

    fn retransmit_one(&mut self, side: Side, seq: u64, now: SimTime, out: &mut TcpActions) {
        let (len, is_fin) = {
            let ep = &self.ep[side.idx()];
            let data_end = ep.data_start + ep.app_limit;
            if seq >= data_end {
                (0u32, ep.fin_sent)
            } else {
                let len = (data_end - seq).min(ep.mss as u64) as u32;
                (len, false)
            }
        };
        {
            let ep = &mut self.ep[side.idx()];
            ep.stats.retx_pkts += 1;
            ep.stats.retx_bytes += len as u64;
        }
        let flags = if is_fin {
            TcpFlags::FIN
        } else {
            TcpFlags::DATA
        };
        self.emit(side, seq, len, flags, now, true, out);
    }

    fn process_data(&mut self, side: Side, hdr: &TcpHdr, now: SimTime, out: &mut TcpActions) {
        let flow = self.id;
        let mut newly_readable = false;
        {
            let ep = &mut self.ep[side.idx()];
            ep.ts_to_echo = hdr.tsval;
            let seg_start = hdr.seq;
            let seg_end = hdr.seq + hdr.len as u64;
            if hdr.flags.fin {
                ep.peer_fin_at = Some(seg_end);
            }
            if hdr.len > 0 {
                if seg_start <= ep.rcv_nxt && seg_end > ep.rcv_nxt {
                    // In-order (possibly partially duplicate).
                    ep.rcv_nxt = seg_end;
                    // Merge any out-of-order intervals now contiguous.
                    while let Some((&s, &e)) = ep.ooo.iter().next() {
                        if s <= ep.rcv_nxt {
                            ep.rcv_nxt = ep.rcv_nxt.max(e);
                            ep.ooo.remove(&s);
                        } else {
                            break;
                        }
                    }
                    newly_readable = true;
                } else if seg_start > ep.rcv_nxt {
                    // Out of order: hole before this segment.
                    ep.stats.ooo_pkts += 1;
                    ep.ooo
                        .entry(seg_start)
                        .and_modify(|e| *e = (*e).max(seg_end))
                        .or_insert(seg_end);
                }
                // else: full duplicate of delivered data — just re-ACK.
            }
            // Consume the FIN if all data before it has arrived.
            if let Some(f) = ep.peer_fin_at {
                if !ep.peer_fin_done && ep.rcv_nxt >= f {
                    ep.rcv_nxt = f + 1;
                    ep.peer_fin_done = true;
                }
            }
        }
        // ACK everything (immediate ACKs keep dupack semantics exact).
        let seq = self.ep[side.idx()].snd_nxt;
        self.emit(side, seq, 0, TcpFlags::DATA, now, false, out);
        let ep = &mut self.ep[side.idx()];
        if newly_readable && ep.readable() > 0 {
            out.events.push(TcpAppEvent::DataAvailable {
                flow,
                side,
                available: ep.readable(),
            });
        }
        if ep.peer_fin_done && !ep.fin_notified {
            ep.fin_notified = true;
            out.events.push(TcpAppEvent::PeerFin { flow, side });
        }
    }

    fn maybe_finish(&mut self, now: SimTime, out: &mut TcpActions) {
        if self.state != FlowState::Established {
            return;
        }
        let done = |side: Side| {
            let ep = &self.ep[side.idx()];
            (ep.fin_sent && ep.fin_acked) || !ep.close_requested
        };
        let both_closed = {
            let c = &self.ep[0];
            let s = &self.ep[1];
            c.close_requested
                && s.close_requested
                && done(Side::Client)
                && done(Side::Server)
                && c.fin_acked
                && s.fin_acked
        };
        if both_closed {
            self.state = FlowState::Closed;
            self.closed_at = Some(now);
            self.complete = true;
            self.cancel_timer(Side::Client);
            self.cancel_timer(Side::Server);
            out.events.push(TcpAppEvent::Closed { flow: self.id });
        }
    }

    /// The retransmission timer for `side` fired (engine validated the
    /// generation).
    pub fn on_timeout(&mut self, side: Side, now: SimTime, out: &mut TcpActions) {
        if self.state == FlowState::Closed {
            return;
        }
        let (has_unacked_pre, zero_window_pre) = {
            let ep = &mut self.ep[side.idx()];
            ep.timer_armed = false;
            ep.stats.timeouts += 1;
            let pending = ep.data_start + ep.app_limit > ep.snd_nxt;
            (ep.inflight() > 0, ep.peer_wnd == 0 && pending)
        };
        // Persist probes (zero window, nothing in flight) do not count
        // toward abort: a receiver may legitimately stall for minutes.
        if self.state == FlowState::Connecting || has_unacked_pre || !zero_window_pre {
            let ep = &mut self.ep[side.idx()];
            ep.consecutive_timeouts += 1;
            if ep.consecutive_timeouts > MAX_CONSECUTIVE_TIMEOUTS {
                self.abort(now, out);
                return;
            }
        }
        if self.state == FlowState::Connecting {
            // Retransmit handshake segment.
            let (seq, flags, side_tx) = if side == Side::Client {
                (0, TcpFlags::SYN, Side::Client)
            } else {
                (0, TcpFlags::SYN_ACK, Side::Server)
            };
            {
                let ep = &mut self.ep[side.idx()];
                ep.backoff += 1;
                ep.stats.retx_pkts += 1;
            }
            self.emit(side_tx, seq, 0, flags, now, true, out);
            self.arm_timer(side, now, out);
            return;
        }
        let (has_unacked, zero_window_pending) = {
            let ep = &self.ep[side.idx()];
            let pending = ep.data_start + ep.app_limit > ep.snd_nxt;
            (ep.inflight() > 0, ep.peer_wnd == 0 && pending)
        };
        if has_unacked {
            // RTO: collapse the window and go back to snd_una. Anything
            // in flight is presumed lost; slow start re-covers it (the
            // receiver discards duplicates and its cumulative ACKs jump
            // over the segments that did arrive).
            {
                let ep = &mut self.ep[side.idx()];
                let mss = ep.mss as f64;
                ep.ssthresh = (ep.inflight() as f64 / 2.0).max(2.0 * mss);
                ep.cwnd = mss;
                ep.in_fast_recovery = false;
                ep.dupacks = 0;
                ep.backoff += 1;
                ep.snd_nxt = ep.snd_una;
                // Re-send the FIN too if it was rewound over.
                if ep.fin_sent && !ep.fin_acked {
                    ep.fin_sent = false;
                }
            }
            self.try_send(side, now, out);
            self.arm_timer(side, now, out);
        } else if zero_window_pending {
            // Persist probe.
            {
                let ep = &mut self.ep[side.idx()];
                ep.backoff = (ep.backoff + 1).min(6);
            }
            let seq = self.ep[side.idx()].snd_nxt;
            self.emit(side, seq, 0, TcpFlags::DATA, now, false, out);
            self.arm_timer(side, now, out);
        }
        // Otherwise: spurious timer; nothing in flight. Stay idle.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive two endpoints against each other with a perfect in-order
    /// "wire", optionally dropping selected client-bound or
    /// server-bound packets. Returns all app events.
    fn run_loopback(
        bytes_from_server: u64,
        drop_nth_to_client: Option<usize>,
    ) -> (TcpFlow, Vec<TcpAppEvent>) {
        let mut flow = TcpFlow::new(
            FlowId(0),
            HostId(0),
            HostId(1),
            80,
            40000,
            1460,
            1460,
            256 * 1024,
        );
        let mut events = Vec::new();
        let mut now = SimTime::ZERO;
        let step = SimDuration::from_millis(5); // fake one-way delay
        let mut out = TcpActions::default();
        flow.open(now, &mut out);
        let mut wire: Vec<Packet> = out.packets.drain(..).collect();
        events.append(&mut out.events);
        let mut served = false;
        let mut to_client_count = 0usize;
        let mut iters = 0;
        while !wire.is_empty() && iters < 100_000 {
            iters += 1;
            now += step;
            let batch: Vec<Packet> = std::mem::take(&mut wire);
            for pkt in batch {
                let hdr = *pkt.tcp_hdr().unwrap();
                let side = if hdr.from_initiator {
                    Side::Server
                } else {
                    Side::Client
                };
                if side == Side::Client {
                    to_client_count += 1;
                    if Some(to_client_count) == drop_nth_to_client {
                        continue; // lost on the wire
                    }
                }
                let mut out = TcpActions::default();
                flow.on_segment(side, &hdr, now, &mut out);
                for ev in out.events.drain(..) {
                    match ev {
                        TcpAppEvent::Incoming { .. } if !served => {
                            served = true;
                            let mut o2 = TcpActions::default();
                            flow.app_send(Side::Server, bytes_from_server, now, &mut o2);
                            flow.app_close(Side::Server, now, &mut o2);
                            wire.extend(o2.packets);
                            events.extend(o2.events);
                        }
                        TcpAppEvent::DataAvailable { side, .. } => {
                            let mut o2 = TcpActions::default();
                            flow.app_read(side, u64::MAX, now, &mut o2);
                            wire.extend(o2.packets);
                            events.push(ev);
                        }
                        TcpAppEvent::PeerFin { side, .. } => {
                            let mut o2 = TcpActions::default();
                            flow.app_close(side, now, &mut o2);
                            wire.extend(o2.packets);
                            events.push(ev);
                        }
                        other => events.push(other),
                    }
                }
                wire.extend(out.packets);
            }
            // Fire any timers when the wire is empty but flow is open
            // (retransmission path).
            if wire.is_empty() && flow.state != FlowState::Closed {
                for side in [Side::Client, Side::Server] {
                    let gen = flow.ep[side.idx()].timer_gen;
                    if flow.ep[side.idx()].timer_armed {
                        let mut out = TcpActions::default();
                        flow.on_timeout(side, now + SimDuration::from_secs(1), &mut out);
                        events.append(&mut out.events);
                        wire.extend(out.packets);
                        let _ = gen;
                    }
                }
            }
        }
        (flow, events)
    }

    #[test]
    fn handshake_and_transfer_completes() {
        let (flow, events) = run_loopback(100_000, None);
        assert_eq!(flow.state, FlowState::Closed);
        assert!(flow.complete);
        assert!(flow.established_at.is_some());
        assert!(events
            .iter()
            .any(|e| matches!(e, TcpAppEvent::Connected { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TcpAppEvent::Closed { .. })));
        // All 100k bytes were read by the client.
        assert_eq!(flow.endpoint(Side::Client).app_read, 100_000);
        // The server saw zero retransmissions on a perfect wire.
        assert_eq!(flow.endpoint(Side::Server).stats.retx_pkts, 0);
    }

    #[test]
    fn lost_data_packet_is_recovered() {
        // Drop the 20th packet heading to the client (a data segment).
        let (flow, _) = run_loopback(200_000, Some(20));
        assert_eq!(
            flow.state,
            FlowState::Closed,
            "flow must finish despite loss"
        );
        assert_eq!(flow.endpoint(Side::Client).app_read, 200_000);
        let st = &flow.endpoint(Side::Server).stats;
        assert!(st.retx_pkts >= 1, "server must have retransmitted");
        // The client observed the hole.
        assert!(flow.endpoint(Side::Client).stats.ooo_pkts >= 1);
    }

    #[test]
    fn lost_syn_ack_retried() {
        // Drop the very first packet to the client (the SYN-ACK).
        let (flow, _) = run_loopback(5_000, Some(1));
        assert_eq!(flow.state, FlowState::Closed);
        assert_eq!(flow.endpoint(Side::Client).app_read, 5_000);
        assert!(flow.endpoint(Side::Server).stats.retx_pkts >= 1);
    }

    #[test]
    fn mss_negotiation_takes_min() {
        let mut flow = TcpFlow::new(FlowId(1), HostId(0), HostId(1), 80, 1, 1400, 1460, 65535);
        let mut out = TcpActions::default();
        flow.open(SimTime::ZERO, &mut out);
        let syn = *out.packets[0].tcp_hdr().unwrap();
        assert_eq!(syn.mss, 1400);
        let mut out2 = TcpActions::default();
        flow.on_segment(Side::Server, &syn, SimTime::from_millis(10), &mut out2);
        assert_eq!(flow.endpoint(Side::Server).mss(), 1400);
        let synack = *out2.packets[0].tcp_hdr().unwrap();
        let mut out3 = TcpActions::default();
        flow.on_segment(Side::Client, &synack, SimTime::from_millis(20), &mut out3);
        assert_eq!(flow.endpoint(Side::Client).mss(), 1400);
        assert_eq!(flow.state, FlowState::Established);
    }

    #[test]
    fn rtt_estimated_from_timestamps() {
        let (flow, _) = run_loopback(50_000, None);
        let rtt = &flow.endpoint(Side::Server).stats.rtt;
        assert!(rtt.count() > 0);
        // One-way 5 ms fake wire → RTT ≈ 10 ms.
        assert!((rtt.mean() - 0.010).abs() < 0.002, "rtt {}", rtt.mean());
    }

    #[test]
    fn receive_window_closes_when_app_does_not_read() {
        let mut flow = TcpFlow::new(FlowId(2), HostId(0), HostId(1), 80, 1, 1000, 1000, 4000);
        let mut out = TcpActions::default();
        flow.open(SimTime::ZERO, &mut out);
        let syn = *out.packets[0].tcp_hdr().unwrap();
        let mut o = TcpActions::default();
        flow.on_segment(Side::Server, &syn, SimTime::from_millis(1), &mut o);
        let synack = *o.packets[0].tcp_hdr().unwrap();
        let mut o = TcpActions::default();
        flow.on_segment(Side::Client, &synack, SimTime::from_millis(2), &mut o);
        // Server sends 4 kB; client never reads.
        let mut o = TcpActions::default();
        flow.app_send(Side::Server, 4000, SimTime::from_millis(3), &mut o);
        let mut t = SimTime::from_millis(4);
        let mut pending: Vec<TcpHdr> = o
            .packets
            .iter()
            .filter_map(|p| p.tcp_hdr().copied())
            .collect();
        let mut wnd_seen = u32::MAX;
        let mut guard = 0;
        while let Some(h) = pending.pop() {
            guard += 1;
            assert!(guard < 1000);
            let side = if h.from_initiator {
                Side::Server
            } else {
                Side::Client
            };
            let mut o = TcpActions::default();
            flow.on_segment(side, &h, t, &mut o);
            t += SimDuration::from_millis(1);
            for p in &o.packets {
                let h2 = p.tcp_hdr().unwrap();
                if h2.from_initiator {
                    // ACKs from the client advertise its receive window.
                    wnd_seen = wnd_seen.min(h2.wnd);
                }
                pending.push(*h2);
            }
        }
        // Client buffer is 4000 and it read nothing → window reached 0.
        assert_eq!(wnd_seen, 0);
        assert_eq!(flow.endpoint(Side::Client).readable(), 4000);
    }

    #[test]
    fn abort_after_repeated_timeouts() {
        let mut flow = TcpFlow::new(FlowId(3), HostId(0), HostId(1), 80, 1, 1460, 1460, 65535);
        let mut out = TcpActions::default();
        flow.open(SimTime::ZERO, &mut out);
        // SYN vanishes forever; fire the client timer repeatedly.
        let mut now = SimTime::from_secs(1);
        let mut aborted = false;
        for _ in 0..20 {
            let mut o = TcpActions::default();
            flow.on_timeout(Side::Client, now, &mut o);
            now += SimDuration::from_secs(40);
            if o.events
                .iter()
                .any(|e| matches!(e, TcpAppEvent::Aborted { .. }))
            {
                aborted = true;
                break;
            }
        }
        assert!(aborted);
        assert_eq!(flow.state, FlowState::Closed);
        assert!(!flow.complete);
    }

    #[test]
    fn cwnd_grows_in_slow_start() {
        let (flow, _) = run_loopback(400_000, None);
        // After a healthy 400 kB transfer the cwnd should have grown
        // well past the initial 10 segments.
        assert!(flow.endpoint(Side::Server).cwnd() > 20.0 * 1460.0);
    }
}
