//! Simulated time.
//!
//! Time is a monotone `u64` count of **nanoseconds** since the start of
//! the simulation. Nanosecond resolution keeps serialisation times of
//! single packets on multi-Mbit/s links exact while still allowing runs
//! of several simulated centuries before overflow.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// This instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    /// Construct from fractional seconds; negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            SimDuration(0)
        } else {
            SimDuration((s * 1e9).round() as u64)
        }
    }
    /// This duration expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// This duration expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Duration needed to serialise `bytes` at `rate_bps` bits/second.
    ///
    /// Rates of zero yield [`SimDuration::ZERO`] (treated as "infinitely
    /// fast"); callers that want "link down" semantics should gate on the
    /// rate before transmitting.
    pub fn tx_time(bytes: u64, rate_bps: u64) -> Self {
        if rate_bps == 0 {
            return SimDuration(0);
        }
        // bits * 1e9 / rate. Every real packet fits the u64 fast path
        // (bytes up to ~2.3 GB); the u128 form, with its libcall
        // division, is kept only for overflow correctness.
        if let Some(bits_ns) = bytes.checked_mul(8_000_000_000) {
            return SimDuration(bits_ns / rate_bps);
        }
        let ns = (bytes as u128 * 8 * 1_000_000_000) / rate_bps as u128;
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }
    /// Scale by an `f64` factor (clamped to non-negative).
    pub fn mul_f64(self, k: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
    /// Saturating duration subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}
impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}
impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}
impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}
impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}
impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}us", self.0 / 1000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).0, 3_000_000_000);
        assert_eq!(SimTime::from_millis(5).0, 5_000_000);
        assert_eq!(SimTime::from_micros(7).0, 7_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.0, 1_500_000_000);
        assert_eq!((t - SimTime::from_secs(1)).as_millis_f64(), 500.0);
        // Sub saturates instead of panicking.
        assert_eq!(SimTime::ZERO - SimTime::from_secs(1), SimDuration::ZERO);
    }

    #[test]
    fn tx_time_exact() {
        // 1500 bytes at 12 Mbit/s = 1 ms exactly.
        assert_eq!(
            SimDuration::tx_time(1500, 12_000_000),
            SimDuration::from_millis(1)
        );
        assert_eq!(SimDuration::tx_time(1500, 0), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.001),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(9)), "9us");
    }
}
