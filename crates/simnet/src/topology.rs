//! Topology construction with automatic static routing.
//!
//! The testbed topologies are small graphs (a handful of hosts on a
//! path plus side branches for cross-traffic sources). The builder
//! wires duplex links (two [`OneWayLink`]s) and wireless attachments
//! (links bound to a [`SharedMedium`]), then computes shortest-path
//! forwarding tables by BFS.

use crate::engine::{Network, SimArena};
use crate::host::Host;
use crate::ids::{HostId, LinkId, MediumId};
use crate::link::{LinkConfig, OneWayLink};
use crate::medium::SharedMedium;

/// Builds a [`Network`] from hosts and links.
pub struct TopologyBuilder {
    net: Network,
    edges: Vec<(HostId, HostId, LinkId)>,
    /// Shared AP downlink per (ap, medium).
    ap_downlinks: std::collections::HashMap<(HostId, MediumId), LinkId>,
}

impl TopologyBuilder {
    /// Empty builder (network seeded with 0; override via
    /// [`TopologyBuilder::with_seed`]).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self::with_seed(0)
    }

    /// Empty builder with the RNG seed used for link jitter/loss draws.
    pub fn with_seed(seed: u64) -> Self {
        Self::with_seed_in(seed, &mut SimArena::default())
    }

    /// Like [`TopologyBuilder::with_seed`], but the network draws its
    /// storage from `arena` (recycled from a previous session).
    pub fn with_seed_in(seed: u64, arena: &mut SimArena) -> Self {
        TopologyBuilder {
            net: Network::new_in(seed, arena),
            edges: Vec::new(),
            ap_downlinks: std::collections::HashMap::new(),
        }
    }

    /// Add a host with default hardware.
    pub fn add_host(&mut self, name: &str) -> HostId {
        self.net.add_host(Host::new(name))
    }

    /// Add a host with a specific hardware profile.
    pub fn add_host_with(&mut self, host: Host) -> HostId {
        self.net.add_host(host)
    }

    /// Add a duplex wired link (same config both ways). Returns the
    /// (a→b, b→a) link ids.
    pub fn add_duplex_link(&mut self, a: HostId, b: HostId, cfg: LinkConfig) -> (LinkId, LinkId) {
        self.add_duplex_link_asym(a, b, cfg, cfg)
    }

    /// Add a duplex wired link with asymmetric configs (e.g. ADSL).
    pub fn add_duplex_link_asym(
        &mut self,
        a: HostId,
        b: HostId,
        ab: LinkConfig,
        ba: LinkConfig,
    ) -> (LinkId, LinkId) {
        let l1 = self.net.add_link(OneWayLink::new(a, b, ab));
        let l2 = self.net.add_link(OneWayLink::new(b, a, ba));
        self.edges.push((a, b, l1));
        self.edges.push((b, a, l2));
        (l1, l2)
    }

    /// Attach a shared medium (WLAN) and return its id. Stations are
    /// attached with [`TopologyBuilder::add_wireless`].
    pub fn add_medium(&mut self, medium: Box<dyn SharedMedium>) -> MediumId {
        self.net.add_medium(medium)
    }

    /// Attach `station` to `ap` over `medium`. The per-direction links
    /// carry the queues; rate/loss/extra delay come from the medium.
    pub fn add_wireless(
        &mut self,
        station: HostId,
        ap: HostId,
        medium: MediumId,
        mtu_payload: u32,
    ) -> (LinkId, LinkId) {
        let cfg = LinkConfig {
            // rate/loss are decided by the medium; these values are
            // only used if the medium is detached.
            rate_bps: 54_000_000,
            delay: crate::time::SimDuration::from_micros(2),
            jitter_sd: crate::time::SimDuration::ZERO,
            loss: 0.0,
            loss_burst: 4.0,
            queue_bytes: 128 * 1024,
            mtu_payload,
        };
        let mut up = OneWayLink::new(station, ap, cfg);
        up.medium = Some(medium);
        let l1 = self.net.add_link(up);
        self.edges.push((station, ap, l1));
        // One shared downlink queue per AP radio: all stations behind
        // the same FIFO, packets delivered to their own destination.
        let l2 = *self.ap_downlinks.entry((ap, medium)).or_insert_with(|| {
            let mut down = OneWayLink::new(ap, station, cfg);
            down.medium = Some(medium);
            down.shared_to_dst = true;
            self.net.add_link(down)
        });
        self.edges.push((ap, station, l2));
        (l1, l2)
    }

    /// Compute forwarding tables (BFS shortest path, first-added link
    /// wins ties) and return the finished network.
    pub fn build(mut self) -> Network {
        let n = self.net.hosts.len();
        // adjacency: for each host, (neighbor, out-link)
        let mut adj: Vec<Vec<(HostId, LinkId)>> = vec![Vec::new(); n];
        for &(a, b, l) in &self.edges {
            adj[a.idx()].push((b, l));
        }
        for dst in 0..n {
            // BFS from dst over *reversed* edges, recording each
            // host's next-hop link toward dst.
            let mut next: Vec<Option<LinkId>> = vec![None; n];
            let mut visited = vec![false; n];
            let mut queue = std::collections::VecDeque::new();
            visited[dst] = true;
            queue.push_back(HostId(dst as u32));
            while let Some(u) = queue.pop_front() {
                // look at all hosts v with an edge v→u
                for v in 0..n {
                    if visited[v] {
                        continue;
                    }
                    if let Some(&(_, l)) = adj[v].iter().find(|(nb, _)| *nb == u) {
                        visited[v] = true;
                        next[v] = Some(l);
                        queue.push_back(HostId(v as u32));
                    }
                }
            }
            for (host, &hop) in self.net.hosts.iter_mut().zip(&next) {
                if host.fwd.len() < n {
                    host.fwd.resize(n, None);
                }
                host.fwd[dst] = hop;
            }
        }
        self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_routing() {
        // a — r — b : a routes to b via r.
        let mut tb = TopologyBuilder::new();
        let a = tb.add_host("a");
        let r = tb.add_host("r");
        let b = tb.add_host("b");
        let (ar, _) = tb.add_duplex_link(a, r, LinkConfig::ethernet(1_000_000));
        let (rb, br) = tb.add_duplex_link(r, b, LinkConfig::ethernet(1_000_000));
        let net = tb.build();
        assert_eq!(net.hosts[a.idx()].route_to(b), Some(ar));
        assert_eq!(net.hosts[r.idx()].route_to(b), Some(rb));
        assert_eq!(net.hosts[b.idx()].route_to(r), Some(br));
        assert_eq!(net.hosts[a.idx()].route_to(a), None);
    }

    #[test]
    fn star_routing() {
        // Three leaves on one router.
        let mut tb = TopologyBuilder::new();
        let r = tb.add_host("r");
        let hs: Vec<HostId> = (0..3).map(|i| tb.add_host(&format!("h{i}"))).collect();
        for &h in &hs {
            tb.add_duplex_link(r, h, LinkConfig::ethernet(1_000_000));
        }
        let net = tb.build();
        // Each leaf reaches each other leaf in two hops through r.
        for &x in &hs {
            for &y in &hs {
                if x != y {
                    let l = net.hosts[x.idx()].route_to(y).unwrap();
                    assert_eq!(net.links[l.idx()].to, r);
                }
            }
        }
    }

    #[test]
    fn disconnected_hosts_have_no_route() {
        let mut tb = TopologyBuilder::new();
        let a = tb.add_host("a");
        let b = tb.add_host("b");
        let c = tb.add_host("c"); // isolated
        tb.add_duplex_link(a, b, LinkConfig::ethernet(1_000_000));
        let net = tb.build();
        assert!(net.hosts[a.idx()].route_to(c).is_none());
        assert!(net.hosts[c.idx()].route_to(a).is_none());
        assert!(net.hosts[a.idx()].route_to(b).is_some());
    }

    #[test]
    fn wireless_links_carry_medium() {
        use crate::medium::PerfectMedium;
        let mut tb = TopologyBuilder::new();
        let sta = tb.add_host("phone");
        let ap = tb.add_host("ap");
        let m = tb.add_medium(Box::new(PerfectMedium::new(54_000_000)));
        let (up, down) = tb.add_wireless(sta, ap, m, 1460);
        let net = tb.build();
        assert_eq!(net.links[up.idx()].medium, Some(m));
        assert_eq!(net.links[down.idx()].medium, Some(m));
        assert_eq!(net.hosts[sta.idx()].route_to(ap), Some(up));
    }
}
