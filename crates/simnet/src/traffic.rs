//! Background traffic generators.
//!
//! Reproduces the testbed's load tooling:
//!
//! * [`UdpFlood`] — the `iperf` equivalent used for the LAN/WAN
//!   *congestion* faults: constant-rate UDP between two hosts, sharing
//!   (and saturating) every queue on its path.
//! * [`AppMix`] — the D-ITG equivalent used for *background
//!   variations*: a blend of VoIP, gaming, web, FTP and telnet traffic
//!   with the characteristic packet sizes and arrival processes of each
//!   application, so the training data is never collected on a silent
//!   network.

use std::collections::HashMap;

use crate::engine::{App, Ctl, TcpEvent};
use crate::ids::{FlowId, HostId};
use crate::rng::SimRng;
use crate::tcp::Side;
use crate::time::{SimDuration, SimTime};

/// Constant-bit-rate UDP flood (the `iperf -u` equivalent).
pub struct UdpFlood {
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Target rate in bits/second.
    pub rate_bps: u64,
    /// Datagram payload size.
    pub pkt_len: u32,
    /// When to start sending.
    pub start: SimTime,
    /// When to stop.
    pub stop: SimTime,
    /// Destination port (a sink; nothing needs to be bound).
    pub dst_port: u16,
}

impl UdpFlood {
    /// Flood at `rate_bps` with 1200-byte datagrams for the whole run.
    pub fn new(src: HostId, dst: HostId, rate_bps: u64) -> Self {
        UdpFlood {
            src,
            dst,
            rate_bps,
            pkt_len: 1200,
            start: SimTime::ZERO,
            stop: SimTime::MAX,
            dst_port: 5001,
        }
    }

    fn interval(&self) -> SimDuration {
        SimDuration::tx_time(self.pkt_len as u64, self.rate_bps)
    }
}

impl App for UdpFlood {
    fn start(&mut self, ctl: &mut Ctl) {
        let delay = self.start.since(ctl.now());
        ctl.timer(delay, 0);
    }
    fn on_timer(&mut self, _token: u64, ctl: &mut Ctl) {
        if ctl.now() >= self.stop {
            return;
        }
        ctl.udp_send(self.src, self.dst, 30_000, self.dst_port, self.pkt_len);
        let iv = self.interval();
        ctl.timer(iv, 0);
    }
}

/// A background application pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixKind {
    /// 160-byte datagrams every 20 ms (G.711-style), with talk spurts.
    Voip,
    /// Small bursty datagrams, exponential inter-arrival ~30 ms.
    Gaming,
    /// Poisson page fetches; Pareto response sizes (~30 kB median).
    Web,
    /// Poisson bulk transfers; Pareto sizes (~200 kB and up).
    Ftp,
    /// Chatty small request/response exchanges on a persistent flow.
    Telnet,
}

impl MixKind {
    /// All patterns (the D-ITG set used by the testbed).
    pub const ALL: [MixKind; 5] = [
        MixKind::Voip,
        MixKind::Gaming,
        MixKind::Web,
        MixKind::Ftp,
        MixKind::Telnet,
    ];
}

/// State for one background TCP exchange.
struct MixFlow {
    respond: u64,
}

/// D-ITG-style background traffic between `src` (the load generator)
/// and `dst` (the responder host).
pub struct AppMix {
    /// Client-side host.
    pub src: HostId,
    /// Server-side host.
    pub dst: HostId,
    kinds: Vec<MixKind>,
    /// Rate multiplier (1.0 = nominal background level).
    pub intensity: f64,
    rng: SimRng,
    flows: HashMap<FlowId, MixFlow>,
    port: u16,
    voip_talking: bool,
}

impl AppMix {
    /// A mix of the given kinds at `intensity`, seeded deterministically.
    pub fn new(src: HostId, dst: HostId, kinds: &[MixKind], intensity: f64, seed: u64) -> Self {
        AppMix {
            src,
            dst,
            kinds: kinds.to_vec(),
            intensity: intensity.max(0.0),
            rng: SimRng::seed_from_u64(seed),
            flows: HashMap::new(),
            port: 8000,
            voip_talking: true,
        }
    }

    fn next_gap(&mut self, kind: MixKind) -> SimDuration {
        let k = self.intensity.max(1e-6);
        let mean_s = match kind {
            MixKind::Voip => 0.020, // fixed cadence (not scaled)
            MixKind::Gaming => 0.030 / k,
            MixKind::Web => 2.0 / k,
            MixKind::Ftp => 20.0 / k,
            MixKind::Telnet => 0.5 / k,
        };
        if kind == MixKind::Voip {
            SimDuration::from_secs_f64(mean_s)
        } else {
            SimDuration::from_secs_f64(self.rng.expo(mean_s))
        }
    }

    fn fire(&mut self, kind: MixKind, ctl: &mut Ctl) {
        match kind {
            MixKind::Voip => {
                // Talk spurts: flip state occasionally.
                if self.rng.chance(0.01) {
                    self.voip_talking = !self.voip_talking;
                }
                if self.voip_talking {
                    ctl.udp_send(self.src, self.dst, 16_384, 7078, 160);
                    // Bidirectional call.
                    ctl.udp_send(self.dst, self.src, 7078, 16_384, 160);
                }
            }
            MixKind::Gaming => {
                let len = 60 + self.rng.index(120) as u32;
                ctl.udp_send(self.src, self.dst, 27_015, 27_015, len);
                if self.rng.chance(0.5) {
                    ctl.udp_send(self.dst, self.src, 27_015, 27_015, 90);
                }
            }
            MixKind::Web => {
                let resp = (self.rng.pareto(12_000.0, 1.2) as u64).min(600_000);
                self.open_exchange(ctl, 80, 400, resp);
            }
            MixKind::Ftp => {
                let resp = (self.rng.pareto(80_000.0, 1.15) as u64).min(1_500_000);
                self.open_exchange(ctl, 21, 200, resp);
            }
            MixKind::Telnet => {
                let resp = 80 + self.rng.index(400) as u64;
                self.open_exchange(ctl, 23, 50, resp);
            }
        }
    }

    fn open_exchange(&mut self, ctl: &mut Ctl, _port: u16, req: u64, resp: u64) {
        let flow = ctl.tcp_connect(self.src, self.dst, self.port);
        self.port = self.port.wrapping_add(1).max(8000);
        self.flows.insert(flow, MixFlow { respond: resp });
        // Request is queued immediately; it transmits once connected.
        ctl.tcp_send(flow, req);
        ctl.tcp_close_after_send(flow);
    }
}

impl App for AppMix {
    fn start(&mut self, ctl: &mut Ctl) {
        if self.intensity <= 0.0 {
            return;
        }
        for i in 0..self.kinds.len() {
            let kind = self.kinds[i];
            let gap = self.next_gap(kind);
            ctl.timer(gap, i as u64);
        }
    }

    fn on_timer(&mut self, token: u64, ctl: &mut Ctl) {
        let Some(&kind) = self.kinds.get(token as usize) else {
            return;
        };
        self.fire(kind, ctl);
        let gap = self.next_gap(kind);
        ctl.timer(gap, token);
    }

    fn on_tcp(&mut self, ev: TcpEvent, ctl: &mut Ctl) {
        match ev {
            TcpEvent::DataAvailable { flow, side, .. } => {
                ctl.tcp_read_at(flow, side, u64::MAX);
                if side == Side::Server {
                    // First request byte triggers the response.
                    if let Some(mf) = self.flows.get_mut(&flow) {
                        if mf.respond > 0 {
                            let n = mf.respond;
                            mf.respond = 0;
                            ctl.tcp_send_from(flow, Side::Server, n);
                            ctl.tcp_close_from(flow, Side::Server);
                        }
                    }
                }
            }
            TcpEvent::PeerFin { flow, side } => {
                ctl.tcp_read_at(flow, side, u64::MAX);
            }
            TcpEvent::Closed { flow } | TcpEvent::Aborted { flow } => {
                self.flows.remove(&flow);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Harness;
    use crate::link::LinkConfig;
    use crate::topology::TopologyBuilder;

    fn wire() -> (crate::engine::Network, HostId, HostId) {
        let mut tb = TopologyBuilder::new();
        let a = tb.add_host("gen");
        let b = tb.add_host("sink");
        tb.add_duplex_link(a, b, LinkConfig::ethernet(20_000_000));
        (tb.build(), a, b)
    }

    #[test]
    fn udp_flood_achieves_target_rate() {
        let (net, a, b) = wire();
        let mut sim = Harness::new(net, 1);
        sim.add_app(Box::new(UdpFlood::new(a, b, 4_000_000)));
        sim.run_until(SimTime::from_secs(5));
        let l = sim.net.link_between(a, b).unwrap();
        let bytes = sim.net.links[l.idx()].ctr.delivered_bytes;
        let rate = bytes as f64 * 8.0 / 5.0;
        // Within 10% of 4 Mbit/s (header overhead pushes it slightly up).
        assert!((rate - 4_000_000.0).abs() < 400_000.0, "rate={rate}");
    }

    #[test]
    fn udp_flood_respects_stop_time() {
        let (net, a, b) = wire();
        let mut sim = Harness::new(net, 1);
        let mut flood = UdpFlood::new(a, b, 8_000_000);
        flood.stop = SimTime::from_secs(1);
        sim.add_app(Box::new(flood));
        sim.run_until(SimTime::from_secs(3));
        let l = sim.net.link_between(a, b).unwrap();
        let bytes = sim.net.links[l.idx()].ctr.delivered_bytes;
        // Roughly 1 s at 8 Mbit/s = 1 MB; definitely less than 1.2 MB.
        assert!(bytes < 1_200_000, "bytes={bytes}");
        assert!(bytes > 800_000, "bytes={bytes}");
    }

    #[test]
    fn appmix_generates_bidirectional_traffic() {
        let (net, a, b) = wire();
        let mut sim = Harness::new(net, 2);
        sim.add_app(Box::new(AppMix::new(a, b, &MixKind::ALL, 1.0, 99)));
        sim.run_until(SimTime::from_secs(20));
        let fwd = sim.net.link_between(a, b).unwrap();
        let rev = sim.net.link_between(b, a).unwrap();
        let f = sim.net.links[fwd.idx()].ctr.delivered_bytes;
        let r = sim.net.links[rev.idx()].ctr.delivered_bytes;
        assert!(f > 10_000, "forward bytes {f}");
        assert!(r > 10_000, "reverse bytes {r}");
    }

    #[test]
    fn appmix_zero_intensity_is_silent() {
        let (net, a, b) = wire();
        let mut sim = Harness::new(net, 2);
        sim.add_app(Box::new(AppMix::new(a, b, &MixKind::ALL, 0.0, 1)));
        sim.run_until(SimTime::from_secs(5));
        let fwd = sim.net.link_between(a, b).unwrap();
        assert_eq!(sim.net.links[fwd.idx()].ctr.delivered_bytes, 0);
    }

    #[test]
    fn appmix_intensity_scales_volume() {
        let volume = |intensity: f64| -> u64 {
            let (net, a, b) = wire();
            let mut sim = Harness::new(net, 2);
            sim.add_app(Box::new(AppMix::new(a, b, &[MixKind::Web], intensity, 7)));
            sim.run_until(SimTime::from_secs(60));
            let rev = sim.net.link_between(b, a).unwrap();
            sim.net.links[rev.idx()].ctr.delivered_bytes
        };
        let low = volume(0.3);
        let high = volume(3.0);
        assert!(high > low * 2, "low={low} high={high}");
    }
}
