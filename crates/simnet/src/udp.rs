//! UDP: fire-and-forget datagrams.
//!
//! Used by the congestion fault injectors (the `iperf` equivalent) and
//! by the D-ITG-style background generators (VoIP/gaming patterns).
//! Sockets are (host, port) bindings owned by an application; datagrams
//! to an unbound port are silently sunk, exactly like a kernel dropping
//! to a closed port (the traffic still loaded every queue on its path,
//! which is all congestion generation needs).

use crate::ids::{AppId, HostId};

/// A (host, port) binding that wants to receive datagrams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpBinding {
    /// Bound host.
    pub host: HostId,
    /// Bound port.
    pub port: u16,
    /// Owning application (receives [`UdpEvent`](crate::engine::UdpEvent)s).
    pub owner: AppId,
}

/// Registry of UDP bindings.
#[derive(Debug, Default)]
pub struct UdpTable {
    bindings: Vec<UdpBinding>,
}

impl UdpTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `port` on `host` to `owner`. Re-binding an existing
    /// (host, port) replaces the owner.
    pub fn bind(&mut self, host: HostId, port: u16, owner: AppId) {
        if let Some(b) = self
            .bindings
            .iter_mut()
            .find(|b| b.host == host && b.port == port)
        {
            b.owner = owner;
        } else {
            self.bindings.push(UdpBinding { host, port, owner });
        }
    }

    /// Remove a binding.
    pub fn unbind(&mut self, host: HostId, port: u16) {
        self.bindings
            .retain(|b| !(b.host == host && b.port == port));
    }

    /// Owner of datagrams arriving at (host, port), if bound.
    pub fn lookup(&self, host: HostId, port: u16) -> Option<AppId> {
        self.bindings
            .iter()
            .find(|b| b.host == host && b.port == port)
            .map(|b| b.owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_lookup_unbind() {
        let mut t = UdpTable::new();
        assert_eq!(t.lookup(HostId(0), 5001), None);
        t.bind(HostId(0), 5001, AppId(3));
        assert_eq!(t.lookup(HostId(0), 5001), Some(AppId(3)));
        // Same port on another host is distinct.
        assert_eq!(t.lookup(HostId(1), 5001), None);
        t.unbind(HostId(0), 5001);
        assert_eq!(t.lookup(HostId(0), 5001), None);
    }

    #[test]
    fn rebind_replaces_owner() {
        let mut t = UdpTable::new();
        t.bind(HostId(0), 9, AppId(1));
        t.bind(HostId(0), 9, AppId(2));
        assert_eq!(t.lookup(HostId(0), 9), Some(AppId(2)));
    }
}
