//! Property-based tests of the simulator's core data structures.

use proptest::prelude::*;

use vqd_simnet::rng::SimRng;
use vqd_simnet::stats::Welford;
use vqd_simnet::time::{SimDuration, SimTime};

proptest! {
    /// Welford matches the naive two-pass computation on arbitrary
    /// finite samples.
    #[test]
    fn welford_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert_eq!(w.count(), xs.len() as u64);
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()), "{} vs {}", w.mean(), mean);
        prop_assert!((w.std() - var.sqrt()).abs() < 1e-5 * (1.0 + var.sqrt()), "{} vs {}", w.std(), var.sqrt());
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(w.min(), min);
        prop_assert_eq!(w.max(), max);
    }

    /// Merging arbitrary partitions equals sequential accumulation.
    #[test]
    fn welford_merge_invariant(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
        split in 1usize..99,
    ) {
        let cut = split.min(xs.len() - 1);
        let mut all = Welford::new();
        for &x in &xs {
            all.add(x);
        }
        let (mut a, mut b) = (Welford::new(), Welford::new());
        for &x in &xs[..cut] {
            a.add(x);
        }
        for &x in &xs[cut..] {
            b.add(x);
        }
        a.merge(&b);
        prop_assert!((a.mean() - all.mean()).abs() < 1e-8);
        prop_assert!((a.std() - all.std()).abs() < 1e-8);
    }

    /// Time arithmetic: associativity with durations and saturation.
    #[test]
    fn time_arithmetic(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4, c in 0u64..u64::MAX / 4) {
        let t = SimTime(a);
        let d1 = SimDuration(b);
        let d2 = SimDuration(c);
        prop_assert_eq!((t + d1) + d2, t + (d1 + d2));
        // since() is the inverse of + for in-range values.
        prop_assert_eq!((t + d1).since(t), d1);
        // Subtraction saturates.
        prop_assert_eq!(t.since(t + d1 + SimDuration(1)), SimDuration::ZERO);
    }

    /// tx_time is monotone in bytes and antitone in rate.
    #[test]
    fn tx_time_monotonicity(bytes in 1u64..1_000_000, rate in 1_000u64..10_000_000_000) {
        let t = SimDuration::tx_time(bytes, rate);
        prop_assert!(SimDuration::tx_time(bytes + 1, rate) >= t);
        prop_assert!(SimDuration::tx_time(bytes, rate * 2) <= t);
    }

    /// Distribution sampling invariants under arbitrary seeds.
    #[test]
    fn rng_sampling_ranges(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..100 {
            let u = rng.f64();
            prop_assert!((0.0..1.0).contains(&u));
            prop_assert!(rng.normal_min(5.0, 3.0, 0.0) >= 0.0);
            prop_assert!(rng.expo(2.0) >= 0.0);
            prop_assert!(rng.pareto(10.0, 1.5) >= 10.0);
            let i = rng.index(7);
            prop_assert!(i < 7);
        }
    }

    /// Split streams are independent of parent draws afterwards: two
    /// children with the same salt from identical parents agree.
    #[test]
    fn rng_split_deterministic(seed in any::<u64>(), salt in any::<u64>()) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        let mut ca = a.split(salt);
        let mut cb = b.split(salt);
        for _ in 0..16 {
            prop_assert_eq!(ca.f64().to_bits(), cb.f64().to_bits());
        }
    }
}

// Gilbert–Elliott loss: long-run loss rate stays close to the
// configured average for arbitrary burst lengths.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn ge_loss_rate_converges(loss in 0.001f64..0.2, burst in 1.0f64..10.0, seed in any::<u64>()) {
        use vqd_simnet::ids::HostId;
        use vqd_simnet::link::{LinkConfig, OneWayLink};
        let mut cfg = LinkConfig::ethernet(1_000_000);
        cfg.loss = loss;
        cfg.loss_burst = burst;
        let mut link = OneWayLink::new(HostId(0), HostId(1), cfg);
        let mut rng = SimRng::seed_from_u64(seed);
        let n = 200_000;
        let lost = (0..n).filter(|_| link.sample_loss(&mut rng)).count();
        let observed = lost as f64 / n as f64;
        prop_assert!(
            (observed - loss).abs() < 0.25 * loss + 0.002,
            "configured {loss}, observed {observed}"
        );
    }
}

// TCP torture: under arbitrary loss rates, burstiness, delays and
// transfer sizes, a transfer either completes exactly or the flow
// aborts — never hangs, never delivers wrong byte counts.
mod tcp_torture {
    use super::*;
    use vqd_simnet::engine::{App, Ctl, Harness, TcpEvent};
    use vqd_simnet::ids::{FlowId, HostId};
    use vqd_simnet::link::LinkConfig;
    use vqd_simnet::tcp::{FlowState, Side};
    use vqd_simnet::topology::TopologyBuilder;

    struct Fetch {
        a: HostId,
        b: HostId,
        reply: u64,
    }
    impl App for Fetch {
        fn start(&mut self, ctl: &mut Ctl) {
            let f = ctl.tcp_connect(self.a, self.b, 80);
            ctl.tcp_send(f, 100);
        }
        fn on_tcp(&mut self, ev: TcpEvent, ctl: &mut Ctl) {
            match ev {
                TcpEvent::DataAvailable { flow, side, .. } => {
                    ctl.tcp_read_at(flow, side, u64::MAX);
                    if side == Side::Server {
                        ctl.tcp_send_from(flow, Side::Server, self.reply);
                        ctl.tcp_close_from(flow, Side::Server);
                    }
                }
                TcpEvent::PeerFin { flow, side } => {
                    ctl.tcp_close_from(flow, side);
                }
                _ => {}
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn transfer_completes_or_aborts(
            loss in 0.0f64..0.12,
            burst in 1.0f64..6.0,
            delay_ms in 1u64..150,
            jitter_ms in 0u64..20,
            kib in 1u64..400,
            seed in any::<u64>(),
        ) {
            let mut cfg = LinkConfig::ethernet(5_000_000);
            cfg.loss = loss;
            cfg.loss_burst = burst;
            cfg.delay = SimDuration::from_millis(delay_ms);
            cfg.jitter_sd = SimDuration::from_millis(jitter_ms);
            let mut tb = TopologyBuilder::new();
            let a = tb.add_host("a");
            let b = tb.add_host("b");
            tb.add_duplex_link(a, b, cfg);
            let mut sim = Harness::new(tb.build(), seed);
            let reply = kib * 1024;
            sim.add_app(Box::new(Fetch { a, b, reply }));
            sim.run_until(SimTime::from_secs(600));
            let f = sim.net.flow(FlowId(0)).unwrap();
            match f.state {
                FlowState::Closed => {
                    if f.complete {
                        prop_assert_eq!(
                            f.endpoint(Side::Client).bytes_read(),
                            reply,
                            "byte count mismatch"
                        );
                    }
                    // Aborted flows are acceptable under heavy loss.
                }
                other => {
                    // 600 simulated seconds is beyond any RTO chain for
                    // these parameters: a still-open flow means a stall.
                    return Err(TestCaseError::fail(format!(
                        "flow neither completed nor aborted: {other:?}, \
                         loss={loss:.3} burst={burst:.1} delay={delay_ms}ms"
                    )));
                }
            }
        }
    }
}
