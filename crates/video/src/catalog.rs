//! The video catalogue.
//!
//! The testbed served the 100 most-viewed YouTube videos in SD or HD
//! "to ensure the diversity of the video collection". We generate a
//! synthetic equivalent: 100 titles with varied durations and encoded
//! bitrates, half SD and half HD. Durations are time-compressed by
//! default (tens of seconds instead of minutes) to keep packet-level
//! simulation of thousands of sessions tractable; the QoE labelling is
//! driven by startup delay and stall *rates*, both of which are
//! preserved under compression. Set
//! [`CatalogConfig::min_duration_s`]/[`max_duration_s`](CatalogConfig::max_duration_s)
//! to full-length values to stream real-scale videos.

use vqd_simnet::rng::SimRng;

/// One video.
#[derive(Debug, Clone)]
pub struct Video {
    /// Catalogue index.
    pub id: u32,
    /// Media duration in seconds.
    pub duration_s: f64,
    /// Encoded bitrate, bits/second.
    pub bitrate_bps: u64,
    /// True for high definition.
    pub hd: bool,
}

impl Video {
    /// Total media bytes of the file.
    pub fn size_bytes(&self) -> u64 {
        (self.duration_s * self.bitrate_bps as f64 / 8.0) as u64
    }

    /// The standard-definition encode of this title (what the service
    /// serves to clients on cellular access, as YouTube did on 3G).
    pub fn sd_variant(&self) -> Video {
        if !self.hd {
            return self.clone();
        }
        Video {
            id: self.id,
            duration_s: self.duration_s,
            bitrate_bps: (self.bitrate_bps as f64 * 0.45) as u64,
            hd: false,
        }
    }
}

/// Catalogue generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CatalogConfig {
    /// Number of videos.
    pub count: usize,
    /// Shortest duration, seconds.
    pub min_duration_s: f64,
    /// Longest duration, seconds.
    pub max_duration_s: f64,
    /// Mean SD bitrate, bits/second.
    pub sd_bitrate_bps: u64,
    /// Mean HD bitrate, bits/second.
    pub hd_bitrate_bps: u64,
    /// Probability a title is HD.
    pub hd_prob: f64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            count: 100,
            min_duration_s: 20.0,
            max_duration_s: 60.0,
            sd_bitrate_bps: 900_000,
            hd_bitrate_bps: 2_000_000,
            hd_prob: 0.5,
        }
    }
}

/// A generated catalogue.
#[derive(Debug, Clone)]
pub struct Catalog {
    videos: Vec<Video>,
}

impl Catalog {
    /// Generate the top-`count` catalogue deterministically from `seed`.
    pub fn generate(cfg: &CatalogConfig, seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let videos = (0..cfg.count)
            .map(|i| {
                let hd = rng.chance(cfg.hd_prob);
                let mean = if hd {
                    cfg.hd_bitrate_bps
                } else {
                    cfg.sd_bitrate_bps
                } as f64;
                let bitrate = rng.normal_min(mean, mean * 0.15, mean * 0.5) as u64;
                let duration = rng.range_f64(cfg.min_duration_s, cfg.max_duration_s);
                Video {
                    id: i as u32,
                    duration_s: duration,
                    bitrate_bps: bitrate,
                    hd,
                }
            })
            .collect();
        Catalog { videos }
    }

    /// Default top-100 catalogue.
    pub fn top100(seed: u64) -> Self {
        Self::generate(&CatalogConfig::default(), seed)
    }

    /// All videos.
    pub fn videos(&self) -> &[Video] {
        &self.videos
    }

    /// A uniformly random title (the testbed "streams a randomly
    /// picked video" per scenario).
    pub fn pick(&self, rng: &mut SimRng) -> &Video {
        &self.videos[rng.index(self.videos.len())]
    }

    /// Lookup by id.
    pub fn get(&self, id: u32) -> Option<&Video> {
        self.videos.get(id as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_and_mix() {
        let c = Catalog::top100(1);
        assert_eq!(c.videos().len(), 100);
        let hd = c.videos().iter().filter(|v| v.hd).count();
        assert!((30..=70).contains(&hd), "hd count {hd}");
    }

    #[test]
    fn durations_and_bitrates_in_range() {
        let cfg = CatalogConfig::default();
        let c = Catalog::generate(&cfg, 7);
        for v in c.videos() {
            assert!(v.duration_s >= cfg.min_duration_s && v.duration_s <= cfg.max_duration_s);
            assert!(v.bitrate_bps >= 450_000, "bitrate {}", v.bitrate_bps);
            if v.hd {
                assert!(v.bitrate_bps > 1_250_000);
            }
        }
    }

    #[test]
    fn size_matches_duration_times_bitrate() {
        let v = Video {
            id: 0,
            duration_s: 10.0,
            bitrate_bps: 800_000,
            hd: false,
        };
        assert_eq!(v.size_bytes(), 1_000_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Catalog::top100(9);
        let b = Catalog::top100(9);
        for (x, y) in a.videos().iter().zip(b.videos()) {
            assert_eq!(x.bitrate_bps, y.bitrate_bps);
            assert_eq!(x.duration_s, y.duration_s);
        }
    }

    #[test]
    fn pick_is_uniformish() {
        let c = Catalog::top100(2);
        let mut rng = SimRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(c.pick(&mut rng).id);
        }
        assert!(seen.len() > 90, "picked {} distinct titles", seen.len());
    }
}
