//! # vqd-video — video streaming substrate
//!
//! Everything between "user taps a video" and "labelled QoE outcome":
//!
//! * [`catalog`] — a synthetic *top-100* video catalogue (SD/HD mix,
//!   varied durations and encoded bitrates) standing in for the
//!   YouTube top-100 list the testbed served from its Apache box.
//! * [`server`] — an HTTP-style progressive-download server with a CPU
//!   load model (the ApacheBench knob): high server load delays the
//!   first byte and paces chunks.
//! * [`player`] — the instrumented Android-player equivalent: playout
//!   buffer fed by a real simulated TCP flow, startup threshold, stall
//!   detection, CPU-gated decoding (the `stress` fault starves it) and
//!   memory-pressure-limited buffering.
//! * [`session`] — per-session application-layer QoE metrics (startup
//!   delay, stall count/duration, frame skips). **Used only for
//!   labelling**, never as classifier features — same as the paper.
//! * [`mos`] — the Mok et al. regression mapping those metrics to a
//!   Mean Opinion Score and the good/mild/severe label.

pub mod catalog;
pub mod mos;
pub mod player;
pub mod server;
pub mod session;

pub use catalog::{Catalog, CatalogConfig, Video};
pub use mos::{mos_score, QoeClass};
pub use player::{Player, PlayerConfig, PlayerHandle};
pub use server::{SessionDirectory, VideoServer, VideoServerConfig};
pub use session::SessionQoe;
