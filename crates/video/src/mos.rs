//! MOS estimation and QoE labelling.
//!
//! Implements the regression model of Mok, Chan & Chang, *"Measuring
//! the Quality of Experience of HTTP Video Streaming"* (IM 2011), which
//! the paper uses to turn application metrics into the labelled ground
//! truth:
//!
//! ```text
//! MOS = 4.23 − 0.0672·L_ti − 0.742·L_fr − 0.106·L_tr
//! ```
//!
//! where the `L` values are three-level quantisations (1 = best,
//! 3 = worst) of the startup delay (`ti`), rebuffering frequency
//! (`fr`) and mean rebuffering duration (`tr`). Sessions are then
//! labelled **good** (MOS > 3), **mild** (2 ≤ MOS ≤ 3) or **severe**
//! (MOS < 2), the thresholds of Section 4.4 of the paper.

use crate::session::SessionQoe;

/// QoE label of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QoeClass {
    /// MOS > 3.
    Good,
    /// 2 ≤ MOS ≤ 3.
    Mild,
    /// MOS < 2.
    Severe,
}

impl QoeClass {
    /// Label for a MOS value.
    pub fn from_mos(mos: f64) -> Self {
        if mos > 3.0 {
            QoeClass::Good
        } else if mos >= 2.0 {
            QoeClass::Mild
        } else {
            QoeClass::Severe
        }
    }

    /// Short lowercase name ("good"/"mild"/"severe").
    pub fn name(self) -> &'static str {
        match self {
            QoeClass::Good => "good",
            QoeClass::Mild => "mild",
            QoeClass::Severe => "severe",
        }
    }
}

/// Quantise the startup delay to level 1–3. Thresholds follow the
/// dichotomies of the Mok et al. subjective study: ≤1 s unnoticeable,
/// ≤5 s tolerable, beyond that annoying.
fn level_ti(startup_s: Option<f64>) -> f64 {
    match startup_s {
        Some(t) if t <= 1.0 => 1.0,
        Some(t) if t <= 5.0 => 2.0,
        Some(_) => 3.0,
        None => 3.0,
    }
}

/// Quantise rebuffering frequency (events/s of viewing): ≈never,
/// occasional, frequent. The band edges are scaled up from Mok et
/// al.'s (who used multi-minute clips) because the default catalogue
/// time-compresses sessions to tens of seconds: one stall in a 30 s
/// clip is an *occasional* stall, not a frequent one.
fn level_fr(freq_hz: f64) -> f64 {
    if freq_hz <= 0.01 {
        1.0
    } else if freq_hz <= 0.055 {
        2.0
    } else {
        3.0
    }
}

/// Quantise mean rebuffer duration: ≤1 s blips, ≤5 s tolerable, longer
/// is severe.
fn level_tr(mean_s: f64) -> f64 {
    if mean_s <= 1.0 {
        1.0
    } else if mean_s <= 5.0 {
        2.0
    } else {
        3.0
    }
}

/// Compute the MOS for a session. Failed sessions (never started) get
/// the floor of the model (all levels at 3).
pub fn mos_score(q: &SessionQoe) -> f64 {
    if q.failed || q.playback_at.is_none() {
        return 4.23 - 0.0672 * 3.0 - 0.742 * 3.0 - 0.106 * 3.0;
    }
    let lti = level_ti(q.startup_delay_s());
    let mut lfr = level_fr(q.rebuffer_frequency_hz());
    let ltr = level_tr(q.mean_rebuffer_s());
    // Decode stutter is continuous, so it registers as few *events*;
    // perceptually, sustained frame skipping is at least as bad as
    // frequent rebuffering. Escalate the frequency level with the
    // fraction of viewing time lost to skipped frames.
    let viewing = (q.played_s + q.frame_skip_s).max(0.1);
    let skip_ratio = q.frame_skip_s / viewing;
    if skip_ratio > 0.20 {
        lfr = 3.0;
    } else if skip_ratio > 0.06 {
        lfr = lfr.max(2.0);
    }
    4.23 - 0.0672 * lti - 0.742 * lfr - 0.106 * ltr
}

/// Convenience: MOS → label in one step.
pub fn label(q: &SessionQoe) -> QoeClass {
    QoeClass::from_mos(mos_score(q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqd_simnet::time::{SimDuration, SimTime};

    fn session(startup: f64, stalls: &[(f64, f64)], played: f64) -> SessionQoe {
        let mut q = SessionQoe {
            started_at: SimTime::ZERO,
            playback_at: Some(SimTime::from_secs_f(startup)),
            ended_at: Some(SimTime::from_secs(100)),
            media_duration_s: played,
            bitrate_bps: 1_000_000,
            played_s: played,
            completed: true,
            ..Default::default()
        };
        for &(at, dur) in stalls {
            q.stalls.push((
                SimTime::ZERO + SimDuration::from_secs_f64(at),
                SimDuration::from_secs_f64(dur),
            ));
        }
        q
    }

    trait FromSecsF {
        fn from_secs_f(s: f64) -> SimTime;
    }
    impl FromSecsF for SimTime {
        fn from_secs_f(s: f64) -> SimTime {
            SimTime::ZERO + SimDuration::from_secs_f64(s)
        }
    }

    #[test]
    fn clean_session_is_good() {
        let q = session(0.5, &[], 60.0);
        let mos = mos_score(&q);
        assert!(mos > 3.0, "mos {mos}");
        assert_eq!(label(&q), QoeClass::Good);
    }

    #[test]
    fn slow_startup_alone_stays_good() {
        // The paper's Figure 3 baseline: rebuffering dominates MOS, and
        // a 4-second startup with no stalls is still rated acceptable.
        let q = session(4.0, &[], 60.0);
        assert_eq!(label(&q), QoeClass::Good);
    }

    #[test]
    fn occasional_stall_is_mild() {
        // One 3-second stall in a minute: frequency ≈ 0.016 Hz (level
        // 2), duration level 2.
        let q = session(1.5, &[(30.0, 3.0)], 60.0);
        let mos = mos_score(&q);
        assert_eq!(label(&q), QoeClass::Mild, "mos {mos}");
    }

    #[test]
    fn frequent_stalls_are_severe() {
        let stalls: Vec<(f64, f64)> = (0..8).map(|i| (i as f64 * 7.0, 6.0)).collect();
        let q = session(6.0, &stalls, 50.0);
        let mos = mos_score(&q);
        assert!(mos < 2.0, "mos {mos}");
        assert_eq!(label(&q), QoeClass::Severe);
    }

    #[test]
    fn failed_session_is_severe() {
        let q = SessionQoe {
            failed: true,
            ..Default::default()
        };
        assert_eq!(label(&q), QoeClass::Severe);
        let mos = mos_score(&q);
        assert!((mos - 1.4844).abs() < 1e-6);
    }

    #[test]
    fn stutter_degrades_like_stalls() {
        let mut q = session(0.8, &[], 60.0);
        q.stutter_events = 5;
        q.frame_skip_s = 15.0;
        assert_eq!(label(&q), QoeClass::Severe);
    }

    #[test]
    fn label_thresholds() {
        assert_eq!(QoeClass::from_mos(3.01), QoeClass::Good);
        assert_eq!(QoeClass::from_mos(3.0), QoeClass::Mild);
        assert_eq!(QoeClass::from_mos(2.0), QoeClass::Mild);
        assert_eq!(QoeClass::from_mos(1.99), QoeClass::Severe);
    }
}
