//! The instrumented video player.
//!
//! Models the Android player of the testbed: a progressive-download
//! client that fills a playout buffer from a real simulated TCP flow
//! and drains it at the encoded bitrate, with three hardware couplings
//! that make the *mobile load* fault observable:
//!
//! 1. **CPU-gated decoding** — decoding needs a core share; when
//!    `stress` occupies the CPU the decoder falls behind realtime and
//!    playback stutters even with a full buffer.
//! 2. **Memory-limited buffering** — under memory pressure the playout
//!    buffer shrinks, making the session fragile to network jitter.
//! 3. **Backpressure** — the player only reads what fits in its
//!    buffer, so a stalled player genuinely closes the TCP receive
//!    window (visible to every probe as window-size dynamics).
//!
//! All QoE accounting ([`SessionQoe`]) is exposed through a cloneable
//! [`PlayerHandle`] read after the run.

use std::cell::RefCell;
use std::rc::Rc;

use vqd_simnet::engine::{App, Ctl, TcpEvent};
use vqd_simnet::ids::{FlowId, HostId};
use vqd_simnet::tcp::Side;
use vqd_simnet::time::{SimDuration, SimTime};

use crate::catalog::Video;
use crate::server::SessionDirectory;
use crate::session::SessionQoe;

/// Player tuning.
#[derive(Debug, Clone, Copy)]
pub struct PlayerConfig {
    /// Media seconds buffered before playback starts.
    pub startup_buffer_s: f64,
    /// Media seconds buffered before resuming after a stall.
    pub resume_buffer_s: f64,
    /// Playout buffer cap in media seconds (shrinks under memory
    /// pressure).
    pub max_buffer_s: f64,
    /// Playback clock tick.
    pub tick: SimDuration,
    /// Give up if the connection has not established by then.
    pub connect_timeout: SimDuration,
    /// Abandon the session when wall time exceeds
    /// `media_duration × giveup_factor + giveup_base_s`.
    pub giveup_factor: f64,
    /// See [`PlayerConfig::giveup_factor`].
    pub giveup_base_s: f64,
    /// CPU cores needed to decode SD in realtime.
    pub decode_cores_sd: f64,
    /// CPU cores needed to decode HD in realtime.
    pub decode_cores_hd: f64,
}

impl Default for PlayerConfig {
    fn default() -> Self {
        PlayerConfig {
            startup_buffer_s: 4.0,
            resume_buffer_s: 4.0,
            max_buffer_s: 30.0,
            tick: SimDuration::from_millis(100),
            connect_timeout: SimDuration::from_secs(15),
            giveup_factor: 4.0,
            giveup_base_s: 45.0,
            decode_cores_sd: 0.45,
            decode_cores_hd: 0.85,
        }
    }
}

/// Shared, cloneable view of the session outcome.
#[derive(Clone, Default)]
pub struct PlayerHandle {
    inner: Rc<RefCell<(SessionQoe, bool, Option<FlowId>)>>,
}

impl PlayerHandle {
    /// The QoE record (valid once [`PlayerHandle::done`] is true, and
    /// progressively filled before that).
    pub fn qoe(&self) -> SessionQoe {
        self.inner.borrow().0.clone()
    }
    /// True once the session ended (completed, abandoned or failed).
    pub fn done(&self) -> bool {
        self.inner.borrow().1
    }
    /// The TCP flow carrying the session (known once started).
    pub fn flow(&self) -> Option<FlowId> {
        self.inner.borrow().2
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Connecting,
    Buffering,
    Playing,
    Stalled,
    Done,
}

/// The player application — one per video session.
pub struct Player {
    /// Mobile host the player runs on.
    pub mobile: HostId,
    /// Content server host.
    pub server: HostId,
    /// Server port.
    pub port: u16,
    video: Video,
    cfg: PlayerConfig,
    directory: SessionDirectory,
    handle: PlayerHandle,

    flow: Option<FlowId>,
    phase: Phase,
    t0: SimTime,
    buffered_bytes: f64,
    received: u64,
    all_received: bool,
    played_s: f64,
    stall_started: Option<SimTime>,
    stuttering: bool,
    cpu_token: Option<u64>,
    mem_token: Option<u64>,
}

impl Player {
    /// A player that will stream `video` from `server` when started.
    pub fn new(
        mobile: HostId,
        server: HostId,
        port: u16,
        video: Video,
        cfg: PlayerConfig,
        directory: SessionDirectory,
    ) -> (Self, PlayerHandle) {
        let handle = PlayerHandle::default();
        let p = Player {
            mobile,
            server,
            port,
            video,
            cfg,
            directory,
            handle: handle.clone(),
            flow: None,
            phase: Phase::Connecting,
            t0: SimTime::ZERO,
            buffered_bytes: 0.0,
            received: 0,
            all_received: false,
            played_s: 0.0,
            stall_started: None,
            stuttering: false,
            cpu_token: None,
            mem_token: None,
        };
        (p, handle)
    }

    fn with_qoe(&self, f: impl FnOnce(&mut SessionQoe)) {
        f(&mut self.handle.inner.borrow_mut().0);
    }

    fn decode_cores(&self) -> f64 {
        if self.video.hd {
            self.cfg.decode_cores_hd
        } else {
            self.cfg.decode_cores_sd
        }
    }

    fn buffer_seconds(&self) -> f64 {
        self.buffered_bytes * 8.0 / self.video.bitrate_bps as f64
    }

    /// Playout buffer capacity in bytes, shrunk under memory pressure.
    fn capacity_bytes(&self, ctl: &Ctl) -> f64 {
        let host = &ctl.net().hosts[self.mobile.idx()];
        let own_mb = self.buffered_bytes / 1.0e6;
        let avail_mb = host.mem.free_mb() + own_mb;
        let mem_cap = (avail_mb * 0.35).max(0.3) * 1.0e6;
        let time_cap = self.cfg.max_buffer_s * self.video.bitrate_bps as f64 / 8.0;
        time_cap.min(mem_cap)
    }

    fn pull_data(&mut self, ctl: &mut Ctl) {
        let Some(flow) = self.flow else { return };
        let room = (self.capacity_bytes(ctl) - self.buffered_bytes).max(0.0) as u64;
        if room == 0 {
            return;
        }
        let n = ctl.tcp_read(flow, room);
        if n > 0 {
            self.buffered_bytes += n as f64;
            self.received += n;
            if let Some(mt) = self.mem_token {
                let host = self.mobile;
                let mb = self.buffered_bytes / 1.0e6;
                ctl.host_mut(host).mem.set_used(mt, mb);
            }
            if self.received >= self.video.size_bytes() {
                self.all_received = true;
            }
            self.with_qoe(|q| q.bytes_received = self.received);
        }
    }

    fn set_decode_demand(&mut self, ctl: &mut Ctl, cores: f64) {
        let host = self.mobile;
        let cpu = &mut ctl.host_mut(host).cpu;
        match self.cpu_token {
            Some(t) => cpu.set_demand(t, cores),
            None => self.cpu_token = Some(cpu.register(cores)),
        }
    }

    fn begin_playback(&mut self, ctl: &mut Ctl) {
        self.phase = Phase::Playing;
        let now = ctl.now();
        self.with_qoe(|q| q.playback_at = Some(now));
        self.set_decode_demand(ctl, self.decode_cores());
    }

    fn finish(&mut self, ctl: &mut Ctl, failed: bool) {
        if self.phase == Phase::Done {
            return;
        }
        // Close out a stall in progress.
        if let Some(s) = self.stall_started.take() {
            let d = ctl.now().since(s);
            self.with_qoe(|q| q.stalls.push((s, d)));
        }
        self.phase = Phase::Done;
        let now = ctl.now();
        let played = self.played_s;
        let complete = played >= self.video.duration_s - 0.1;
        self.with_qoe(|q| {
            q.ended_at = Some(now);
            q.played_s = played;
            q.completed = complete && !failed;
            q.failed = failed;
        });
        if let Some(t) = self.cpu_token {
            let host = self.mobile;
            ctl.host_mut(host).cpu.remove(t);
        }
        if let Some(t) = self.mem_token {
            let host = self.mobile;
            ctl.host_mut(host).mem.remove(t);
        }
        if let Some(flow) = self.flow {
            match ctl.net().flow(flow).map(|f| f.state) {
                Some(vqd_simnet::tcp::FlowState::Closed) => {}
                _ => ctl.tcp_abort(flow),
            }
        }
        self.handle.inner.borrow_mut().1 = true;
    }

    fn tick(&mut self, ctl: &mut Ctl) {
        let now = ctl.now();
        let wall = now.since(self.t0).as_secs_f64();
        self.pull_data(ctl);

        match self.phase {
            Phase::Connecting => {
                if now.since(self.t0) > self.cfg.connect_timeout {
                    self.finish(ctl, true);
                    return;
                }
            }
            Phase::Buffering => {
                // Start at the startup threshold — or when the (memory-
                // pressure-shrunken) buffer simply cannot hold more.
                let cap_full = self.buffered_bytes >= 0.9 * self.capacity_bytes(ctl);
                if self.buffer_seconds() >= self.cfg.startup_buffer_s
                    || self.all_received
                    || cap_full
                {
                    self.begin_playback(ctl);
                }
            }
            Phase::Playing | Phase::Stalled => {
                self.advance_playback(ctl);
            }
            Phase::Done => return,
        }

        // Abandonment deadline ("the user gives up").
        if self.phase != Phase::Done
            && wall > self.video.duration_s * self.cfg.giveup_factor + self.cfg.giveup_base_s
        {
            self.finish(ctl, false);
            return;
        }
        if self.phase != Phase::Done {
            let t = self.cfg.tick;
            ctl.timer(t, 0);
        }
    }

    fn advance_playback(&mut self, ctl: &mut Ctl) {
        let now = ctl.now();
        let tick_s = self.cfg.tick.as_secs_f64();
        if self.phase == Phase::Stalled {
            let cap_full = self.buffered_bytes >= 0.9 * self.capacity_bytes(ctl);
            if self.buffer_seconds() >= self.cfg.resume_buffer_s || self.all_received || cap_full {
                // Stall over.
                if let Some(s) = self.stall_started.take() {
                    let d = now.since(s);
                    self.with_qoe(|q| q.stalls.push((s, d)));
                }
                self.phase = Phase::Playing;
                self.set_decode_demand(ctl, self.decode_cores());
            }
            return;
        }
        // Decode speed: CPU share granted vs needed, degraded by I/O
        // pressure.
        let host = &ctl.net().hosts[self.mobile.idx()];
        let need = self.decode_cores();
        let granted = host.cpu.granted(need, self.cpu_token);
        let io = host.io_load;
        let speed = ((granted / need) * (1.0 - 0.25 * io)).clamp(0.0, 1.0);

        let media_avail = self.buffer_seconds();
        let consumed = (tick_s * speed)
            .min(media_avail)
            .min(self.video.duration_s - self.played_s);
        self.played_s += consumed;
        self.buffered_bytes =
            (self.buffered_bytes - consumed * self.video.bitrate_bps as f64 / 8.0).max(0.0);
        self.with_qoe(|q| q.played_s = self.played_s);

        // Decode stutter: buffer had media but the decoder could not
        // keep realtime.
        if media_avail > tick_s && speed < 0.9 {
            let lost = tick_s - consumed.min(tick_s);
            self.with_qoe(|q| q.frame_skip_s += lost);
            if !self.stuttering {
                self.stuttering = true;
                self.with_qoe(|q| q.stutter_events += 1);
            }
        } else if speed >= 0.97 {
            self.stuttering = false;
        }

        if self.played_s >= self.video.duration_s - 1e-9 {
            self.finish(ctl, false);
            return;
        }
        // Network stall: buffer dry and more bytes are pending.
        if self.buffer_seconds() < 0.1 && !self.all_received {
            self.phase = Phase::Stalled;
            self.stall_started = Some(now);
            // Decoder idles during a stall.
            self.set_decode_demand(ctl, 0.1);
        } else if self.all_received
            && self.buffer_seconds() <= 0.0
            && self.played_s < self.video.duration_s - 0.1
        {
            // Everything arrived and the buffer is empty but media
            // remains unplayed: accounting drift — finish as played.
            self.finish(ctl, false);
        }
    }
}

impl App for Player {
    fn start(&mut self, ctl: &mut Ctl) {
        self.t0 = ctl.now();
        let now = ctl.now();
        let (dur, br) = (self.video.duration_s, self.video.bitrate_bps);
        self.with_qoe(|q| {
            q.started_at = now;
            q.media_duration_s = dur;
            q.bitrate_bps = br;
        });
        let host = self.mobile;
        let mt = ctl.host_mut(host).mem.register(0.0);
        self.mem_token = Some(mt);
        let flow = ctl.tcp_connect(self.mobile, self.server, self.port);
        self.directory.register(flow, self.video.clone());
        self.flow = Some(flow);
        self.handle.inner.borrow_mut().2 = Some(flow);
        let t = self.cfg.tick;
        ctl.timer(t, 0);
    }

    fn on_timer(&mut self, _token: u64, ctl: &mut Ctl) {
        self.tick(ctl);
    }

    fn on_tcp(&mut self, ev: TcpEvent, ctl: &mut Ctl) {
        match ev {
            TcpEvent::Connected { flow } => {
                // Send the "HTTP GET".
                ctl.tcp_send(flow, 350);
                if self.phase == Phase::Connecting {
                    self.phase = Phase::Buffering;
                }
            }
            TcpEvent::DataAvailable {
                side: Side::Client, ..
            } => {
                self.pull_data(ctl);
            }
            TcpEvent::PeerFin {
                flow,
                side: Side::Client,
            } => {
                self.pull_data(ctl);
                ctl.tcp_close_from(flow, Side::Client);
                if self.received >= self.video.size_bytes() {
                    self.all_received = true;
                }
            }
            TcpEvent::Aborted { .. } => {
                // Transport gave up (e.g. dead wireless link).
                self.finish(ctl, true);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mos::{label, QoeClass};
    use crate::server::{VideoServer, VideoServerConfig};
    use vqd_simnet::engine::Harness;
    use vqd_simnet::link::LinkConfig;
    use vqd_simnet::topology::TopologyBuilder;

    fn video(duration_s: f64, bitrate: u64) -> Video {
        Video {
            id: 0,
            duration_s,
            bitrate_bps: bitrate,
            hd: bitrate > 1_500_000,
        }
    }

    /// One player + server on a configurable wire; returns the QoE.
    fn stream(cfg_link: LinkConfig, v: Video, tweak: impl FnOnce(&mut Harness)) -> SessionQoe {
        let mut tb = TopologyBuilder::new();
        let m = tb.add_host("mobile");
        let s = tb.add_host("server");
        tb.add_duplex_link(m, s, cfg_link);
        let net = tb.build();
        let dir = SessionDirectory::new();
        let (player, handle) = Player::new(m, s, 80, v, PlayerConfig::default(), dir.clone());
        let mut sim = Harness::new(net, 11);
        sim.add_app(Box::new(player));
        sim.add_app(Box::new(VideoServer::new(
            s,
            VideoServerConfig::default(),
            dir,
        )));
        tweak(&mut sim);
        sim.run_until(SimTime::from_secs(400));
        assert!(handle.done(), "session must end");
        handle.qoe()
    }

    #[test]
    fn smooth_playback_on_fast_wire() {
        let q = stream(
            LinkConfig::ethernet(20_000_000),
            video(30.0, 1_000_000),
            |_| {},
        );
        assert!(q.completed, "{q:?}");
        assert!(
            q.startup_delay_s().unwrap() < 1.5,
            "startup {:?}",
            q.startup_delay_s()
        );
        assert!(q.stalls.is_empty(), "stalls {:?}", q.stalls);
        assert_eq!(label(&q), QoeClass::Good);
    }

    #[test]
    fn starved_link_stalls_playback() {
        // 0.6 Mbit/s wire cannot carry a 1 Mbit/s video.
        let q = stream(
            LinkConfig::ethernet(600_000),
            video(20.0, 1_000_000),
            |_| {},
        );
        assert!(q.rebuffer_count() > 0, "{q:?}");
        assert_ne!(label(&q), QoeClass::Good);
    }

    #[test]
    fn cpu_starvation_causes_stutter_not_stalls() {
        let q = stream(
            LinkConfig::ethernet(30_000_000),
            video(20.0, 2_400_000),
            |sim| {
                // stress-style load: 6 cores demanded on the default 4-core
                // host; decoder gets ~40% of what it needs... high load.
                sim.net.hosts[0].cpu.register(6.0);
            },
        );
        assert!(q.frame_skip_s > 1.0, "frame skips {}", q.frame_skip_s);
        assert!(q.stutter_events >= 1);
        assert_ne!(label(&q), QoeClass::Good);
    }

    #[test]
    fn memory_pressure_shrinks_buffer_and_survives() {
        let q = stream(
            LinkConfig::ethernet(20_000_000),
            video(15.0, 1_000_000),
            |sim| {
                // Leave almost no free memory.
                let total = sim.net.hosts[0].mem.total_mb;
                sim.net.hosts[0].mem.register(total);
            },
        );
        // Session still ends; tight buffer means it completed (fast
        // wire) but bytes buffered were capped.
        assert!(q.played_s > 10.0, "{q:?}");
    }

    #[test]
    fn unreachable_server_fails_session() {
        // No link at all: build two isolated hosts.
        let mut tb = TopologyBuilder::new();
        let m = tb.add_host("mobile");
        let s = tb.add_host("server");
        let net = tb.build();
        let dir = SessionDirectory::new();
        let (player, handle) = Player::new(
            m,
            s,
            80,
            video(10.0, 500_000),
            PlayerConfig::default(),
            dir.clone(),
        );
        let mut sim = Harness::new(net, 3);
        sim.add_app(Box::new(player));
        sim.add_app(Box::new(VideoServer::new(
            s,
            VideoServerConfig::default(),
            dir,
        )));
        sim.run_until(SimTime::from_secs(60));
        assert!(handle.done());
        let q = handle.qoe();
        assert!(q.failed);
        assert_eq!(label(&q), QoeClass::Severe);
    }

    #[test]
    fn dsl_wire_is_good_for_sd() {
        // Sanity: the nominal DSL link of Table 3 carries SD video well.
        let q = stream(LinkConfig::dsl_nominal(), video(30.0, 900_000), |_| {});
        assert!(q.completed, "{q:?}");
        assert_eq!(label(&q), QoeClass::Good, "{q:?}");
    }
}
