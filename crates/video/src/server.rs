//! The content server: progressive HTTP-style download with a load
//! model.
//!
//! The server answers each request with the video's bytes in chunks.
//! Its CPU (loadable by the ApacheBench-style background generator in
//! `vqd-faults`) delays the first byte and paces chunks when busy —
//! the observable signature of a loaded content server.
//!
//! Because the simulator does not materialise payload bytes, the
//! mapping *flow → requested video* travels through a
//! [`SessionDirectory`] shared between player and server, standing in
//! for the URL in the HTTP request.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use vqd_simnet::engine::{App, Ctl, TcpEvent};
use vqd_simnet::ids::{FlowId, HostId};
use vqd_simnet::tcp::Side;
use vqd_simnet::time::SimDuration;

use crate::catalog::Video;

/// Shared flow → video registry (the "URL" side channel).
#[derive(Clone, Default)]
pub struct SessionDirectory {
    inner: Rc<RefCell<HashMap<FlowId, Video>>>,
}

impl SessionDirectory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }
    /// Record that `flow` requests `video`.
    pub fn register(&self, flow: FlowId, video: Video) {
        self.inner.borrow_mut().insert(flow, video);
    }
    /// Look up the video requested on `flow`.
    pub fn get(&self, flow: FlowId) -> Option<Video> {
        self.inner.borrow().get(&flow).cloned()
    }
    /// Remove a finished flow.
    pub fn remove(&self, flow: FlowId) {
        self.inner.borrow_mut().remove(&flow);
    }
}

/// Server behaviour parameters.
#[derive(Debug, Clone, Copy)]
pub struct VideoServerConfig {
    /// TCP port served.
    pub port: u16,
    /// Response chunk size, bytes.
    pub chunk_bytes: u64,
    /// First-byte latency when idle.
    pub base_first_byte: SimDuration,
    /// CPU cores consumed per active session (request parsing, disk).
    pub cpu_per_session: f64,
}

impl Default for VideoServerConfig {
    fn default() -> Self {
        VideoServerConfig {
            port: 80,
            chunk_bytes: 1024 * 1024,
            base_first_byte: SimDuration::from_millis(3),
            cpu_per_session: 0.05,
        }
    }
}

struct ServerSession {
    remaining: u64,
}

/// The video server application.
pub struct VideoServer {
    /// Host the server runs on.
    pub host: HostId,
    cfg: VideoServerConfig,
    directory: SessionDirectory,
    sessions: HashMap<FlowId, ServerSession>,
    cpu_token: Option<u64>,
}

impl VideoServer {
    /// A server on `host` using `directory` to resolve requests.
    pub fn new(host: HostId, cfg: VideoServerConfig, directory: SessionDirectory) -> Self {
        VideoServer {
            host,
            cfg,
            directory,
            sessions: HashMap::new(),
            cpu_token: None,
        }
    }

    fn update_cpu(&mut self, ctl: &mut Ctl) {
        let demand = self.sessions.len() as f64 * self.cfg.cpu_per_session;
        let host = self.host;
        let cpu = &mut ctl.host_mut(host).cpu;
        match self.cpu_token {
            Some(t) => cpu.set_demand(t, demand),
            None => self.cpu_token = Some(cpu.register(demand)),
        }
    }

    /// First-byte delay given current CPU pressure: a loaded Apache
    /// queues requests.
    fn first_byte_delay(&self, ctl: &Ctl) -> SimDuration {
        let util = ctl.net().hosts[self.host.idx()].cpu.utilization();
        self.cfg.base_first_byte + SimDuration::from_secs_f64(0.200 * util.powi(3))
    }

    /// Inter-chunk pacing under load.
    fn pacing(&self, ctl: &Ctl) -> SimDuration {
        let util = ctl.net().hosts[self.host.idx()].cpu.utilization();
        SimDuration::from_secs_f64(0.030 * util.powi(3))
    }

    fn send_chunk(&mut self, flow: FlowId, ctl: &mut Ctl) {
        let Some(s) = self.sessions.get_mut(&flow) else {
            return;
        };
        let n = s.remaining.min(self.cfg.chunk_bytes);
        if n == 0 {
            return;
        }
        s.remaining -= n;
        ctl.tcp_send_from(flow, Side::Server, n);
        if s.remaining == 0 {
            ctl.tcp_close_from(flow, Side::Server);
        }
    }
}

impl App for VideoServer {
    fn start(&mut self, ctl: &mut Ctl) {
        let (h, p) = (self.host, self.cfg.port);
        ctl.tcp_listen(h, p);
        self.update_cpu(ctl);
    }

    fn on_timer(&mut self, token: u64, ctl: &mut Ctl) {
        // Timers carry the flow id: time to push the next chunk.
        self.send_chunk(FlowId(token as u32), ctl);
    }

    fn on_tcp(&mut self, ev: TcpEvent, ctl: &mut Ctl) {
        match ev {
            TcpEvent::DataAvailable { flow, side, .. } if side == Side::Server => {
                ctl.tcp_read_at(flow, side, u64::MAX);
                if !self.sessions.contains_key(&flow) {
                    let Some(video) = self.directory.get(flow) else {
                        return;
                    };
                    self.sessions.insert(
                        flow,
                        ServerSession {
                            remaining: video.size_bytes(),
                        },
                    );
                    self.update_cpu(ctl);
                    let d = self.first_byte_delay(ctl);
                    ctl.timer(d, flow.0 as u64);
                }
            }
            TcpEvent::SendDrained {
                flow,
                side: Side::Server,
            } => {
                if let Some(s) = self.sessions.get(&flow) {
                    if s.remaining > 0 {
                        let d = self.pacing(ctl);
                        if d == SimDuration::ZERO {
                            self.send_chunk(flow, ctl);
                        } else {
                            ctl.timer(d, flow.0 as u64);
                        }
                    }
                }
            }
            TcpEvent::PeerFin { flow, side } if side == Side::Server => {
                ctl.tcp_read_at(flow, side, u64::MAX);
            }
            TcpEvent::Closed { flow } | TcpEvent::Aborted { flow } => {
                if self.sessions.remove(&flow).is_some() {
                    self.update_cpu(ctl);
                }
                self.directory.remove(flow);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_round_trip() {
        let d = SessionDirectory::new();
        let v = Video {
            id: 7,
            duration_s: 30.0,
            bitrate_bps: 1_000_000,
            hd: false,
        };
        d.register(FlowId(3), v.clone());
        assert_eq!(d.get(FlowId(3)).unwrap().id, 7);
        assert!(d.get(FlowId(4)).is_none());
        d.remove(FlowId(3));
        assert!(d.get(FlowId(3)).is_none());
        // Clones share state.
        let d2 = d.clone();
        d.register(FlowId(5), v);
        assert!(d2.get(FlowId(5)).is_some());
    }
}
