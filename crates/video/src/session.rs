//! Per-session application-layer QoE metrics.
//!
//! These are the metrics an instrumented player reports: startup
//! delay, rebuffering events (count and duration), decode stutter
//! (frame skips) and completion state. They are converted to a MOS
//! label by [`crate::mos`] and are **never** exported as classifier
//! features — they are the ground truth, exactly as in the paper.

use vqd_simnet::time::{SimDuration, SimTime};

/// Application-layer outcome of one video session.
#[derive(Debug, Clone, Default)]
pub struct SessionQoe {
    /// When the session was initiated (user tapped play).
    pub started_at: SimTime,
    /// When playback began, if it did.
    pub playback_at: Option<SimTime>,
    /// When the session ended (completed, abandoned or failed).
    pub ended_at: Option<SimTime>,
    /// Media duration of the requested video, seconds.
    pub media_duration_s: f64,
    /// Encoded bitrate of the requested video, bits/second.
    pub bitrate_bps: u64,
    /// Media seconds actually played.
    pub played_s: f64,
    /// Rebuffering events: (start, duration).
    pub stalls: Vec<(SimTime, SimDuration)>,
    /// Seconds of playback lost to decode stutter (CPU-starved player).
    pub frame_skip_s: f64,
    /// Decode-stutter episodes (counted like stalls for MOS).
    pub stutter_events: u32,
    /// Bytes of media received.
    pub bytes_received: u64,
    /// True if the whole video played to the end.
    pub completed: bool,
    /// True if the session failed outright (never connected / aborted).
    pub failed: bool,
}

impl SessionQoe {
    /// Startup delay in seconds (`None` → playback never began; treat
    /// as worst case).
    pub fn startup_delay_s(&self) -> Option<f64> {
        self.playback_at
            .map(|t| t.since(self.started_at).as_secs_f64())
    }

    /// Number of rebuffering events, including decode stutter episodes.
    pub fn rebuffer_count(&self) -> u32 {
        self.stalls.len() as u32 + self.stutter_events
    }

    /// Total time spent rebuffering (plus decode stutter), seconds.
    pub fn rebuffer_time_s(&self) -> f64 {
        self.stalls
            .iter()
            .map(|(_, d)| d.as_secs_f64())
            .sum::<f64>()
            + self.frame_skip_s
    }

    /// Mean rebuffer duration, seconds (0 if none).
    pub fn mean_rebuffer_s(&self) -> f64 {
        let n = self.rebuffer_count();
        if n == 0 {
            0.0
        } else {
            self.rebuffer_time_s() / n as f64
        }
    }

    /// Rebuffering frequency in events per second of *playback* time,
    /// the rate the MOS model quantises. (Playback time, not wall
    /// time: counting the stalls' own duration in the denominator
    /// would make longer stalls look *less* frequent.)
    pub fn rebuffer_frequency_hz(&self) -> f64 {
        if self.played_s <= 0.0 {
            // Never played at all: worst case.
            return f64::INFINITY;
        }
        self.rebuffer_count() as f64 / self.played_s
    }

    /// Wall-clock session length, seconds.
    pub fn wall_time_s(&self) -> f64 {
        self.ended_at
            .map(|e| e.since(self.started_at).as_secs_f64())
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SessionQoe {
        SessionQoe {
            started_at: SimTime::from_secs(10),
            playback_at: Some(SimTime::from_secs(12)),
            ended_at: Some(SimTime::from_secs(52)),
            media_duration_s: 40.0,
            bitrate_bps: 1_000_000,
            played_s: 40.0,
            completed: true,
            ..Default::default()
        }
    }

    #[test]
    fn startup_delay() {
        assert_eq!(base().startup_delay_s(), Some(2.0));
        let mut s = base();
        s.playback_at = None;
        assert_eq!(s.startup_delay_s(), None);
    }

    #[test]
    fn rebuffer_accounting() {
        let mut s = base();
        s.stalls
            .push((SimTime::from_secs(20), SimDuration::from_secs(3)));
        s.stalls
            .push((SimTime::from_secs(30), SimDuration::from_secs(1)));
        assert_eq!(s.rebuffer_count(), 2);
        assert!((s.rebuffer_time_s() - 4.0).abs() < 1e-9);
        assert!((s.mean_rebuffer_s() - 2.0).abs() < 1e-9);
        // 2 events over 40 s of playback.
        assert!((s.rebuffer_frequency_hz() - 2.0 / 40.0).abs() < 1e-9);
    }

    #[test]
    fn stutter_counts_as_rebuffering() {
        let mut s = base();
        s.frame_skip_s = 5.0;
        s.stutter_events = 3;
        assert_eq!(s.rebuffer_count(), 3);
        assert!((s.rebuffer_time_s() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn dead_session_has_infinite_frequency() {
        let s = SessionQoe {
            failed: true,
            ..Default::default()
        };
        assert!(s.rebuffer_frequency_hz().is_infinite());
        assert_eq!(s.mean_rebuffer_s(), 0.0);
    }
}
