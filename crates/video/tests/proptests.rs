//! Property-based tests of the video substrate.

use proptest::prelude::*;

use vqd_simnet::time::{SimDuration, SimTime};
use vqd_video::catalog::{Catalog, CatalogConfig};
use vqd_video::mos::{label, mos_score, QoeClass};
use vqd_video::session::SessionQoe;

fn session(startup: f64, stalls: Vec<(f64, f64)>, played: f64) -> SessionQoe {
    let mut q = SessionQoe {
        started_at: SimTime::ZERO,
        playback_at: Some(SimTime::ZERO + SimDuration::from_secs_f64(startup)),
        ended_at: Some(SimTime::from_secs(1000)),
        media_duration_s: played,
        bitrate_bps: 1_000_000,
        played_s: played,
        completed: true,
        ..Default::default()
    };
    for (at, dur) in stalls {
        q.stalls.push((
            SimTime::ZERO + SimDuration::from_secs_f64(at),
            SimDuration::from_secs_f64(dur),
        ));
    }
    q
}

proptest! {
    /// MOS is bounded by the model's extreme values and labels
    /// partition the score line.
    #[test]
    fn mos_bounds_and_labels(
        startup in 0.0f64..60.0,
        stalls in proptest::collection::vec((0.0f64..100.0, 0.1f64..30.0), 0..20),
        played in 1.0f64..300.0,
    ) {
        let q = session(startup, stalls, played);
        let mos = mos_score(&q);
        prop_assert!((1.4843..=3.3216).contains(&mos), "mos {mos}");
        let l = label(&q);
        match l {
            QoeClass::Good => prop_assert!(mos > 3.0),
            QoeClass::Mild => prop_assert!((2.0..=3.0).contains(&mos)),
            QoeClass::Severe => prop_assert!(mos < 2.0),
        }
    }

    /// Adding the *first* stall to a clean session never improves the
    /// MOS. (The unconditional version is false for the published Mok
    /// model: a short extra stall can lower the *mean* stall duration
    /// enough to drop L_tr a level — a quirk of quantising the mean.)
    #[test]
    fn first_stall_never_helps(
        startup in 0.0f64..10.0,
        extra_at in 0.0f64..100.0,
        extra_dur in 0.5f64..10.0,
        played in 10.0f64..120.0,
    ) {
        let before = mos_score(&session(startup, vec![], played));
        let after = mos_score(&session(startup, vec![(extra_at, extra_dur)], played));
        prop_assert!(after <= before + 1e-12, "stall improved MOS: {before} -> {after}");
    }

    /// Lengthening an existing stall never improves the MOS (duration
    /// level and total time are both monotone).
    #[test]
    fn longer_stall_never_helps(
        dur in 0.5f64..10.0,
        extra in 0.1f64..20.0,
        played in 10.0f64..120.0,
    ) {
        let a = mos_score(&session(1.0, vec![(5.0, dur)], played));
        let b = mos_score(&session(1.0, vec![(5.0, dur + extra)], played));
        prop_assert!(b <= a + 1e-12);
    }

    /// More frame-skip time never improves the MOS.
    #[test]
    fn skips_never_help(
        played in 10.0f64..120.0,
        skip_a in 0.0f64..20.0,
        extra in 0.1f64..40.0,
    ) {
        let mut a = session(0.5, vec![], played);
        a.frame_skip_s = skip_a;
        a.stutter_events = u32::from(skip_a > 0.0);
        let mut b = a.clone();
        b.frame_skip_s = skip_a + extra;
        b.stutter_events = 1;
        prop_assert!(mos_score(&b) <= mos_score(&a) + 1e-12);
    }

    /// Catalogue generation respects its configuration for arbitrary
    /// parameters.
    #[test]
    fn catalog_respects_config(
        count in 1usize..300,
        min_d in 5.0f64..50.0,
        span in 1.0f64..100.0,
        seed in any::<u64>(),
    ) {
        let cfg = CatalogConfig {
            count,
            min_duration_s: min_d,
            max_duration_s: min_d + span,
            ..Default::default()
        };
        let c = Catalog::generate(&cfg, seed);
        prop_assert_eq!(c.videos().len(), count);
        for v in c.videos() {
            prop_assert!(v.duration_s >= min_d && v.duration_s <= min_d + span);
            prop_assert!(v.bitrate_bps > 0);
            // SD variant never exceeds the original bitrate.
            let sd = v.sd_variant();
            prop_assert!(sd.bitrate_bps <= v.bitrate_bps);
            prop_assert!(!sd.hd);
            prop_assert_eq!(sd.duration_s, v.duration_s);
        }
    }

    /// Session accounting identities hold for arbitrary stall sets.
    #[test]
    fn session_accounting(
        stalls in proptest::collection::vec((0.0f64..100.0, 0.1f64..10.0), 0..10),
        skips in 0.0f64..30.0,
        events in 0u32..5,
    ) {
        let mut q = session(1.0, stalls.clone(), 50.0);
        q.frame_skip_s = skips;
        q.stutter_events = events;
        prop_assert_eq!(q.rebuffer_count(), stalls.len() as u32 + events);
        let expect: f64 = stalls.iter().map(|(_, d)| d).sum::<f64>() + skips;
        prop_assert!((q.rebuffer_time_s() - expect).abs() < 1e-6);
        if q.rebuffer_count() > 0 {
            prop_assert!((q.mean_rebuffer_s() - expect / q.rebuffer_count() as f64).abs() < 1e-6);
        }
    }
}
