//! # vqd-wireless — 802.11 PHY/MAC medium model
//!
//! Implements [`vqd_simnet::medium::SharedMedium`] for a single WLAN
//! broadcast domain (one AP plus stations), reproducing the wireless
//! phenomenology the paper's faults manipulate:
//!
//! * **Path loss & RSSI** — log-distance path loss with slow (AR(1))
//!   shadow fading; the *poor signal reception* fault moves a station
//!   away from the AP and/or attenuates the AP's transmit power,
//!   exactly like the physical testbed did ([`phy`]).
//! * **Rate adaptation** — SNR-indexed 802.11a/b/g/n rate table with a
//!   hysteresis margin; low SNR first costs PHY rate, then frame error
//!   rate, then association itself ([`rates`]).
//! * **MAC contention** — DIFS + binary-exponential backoff, shared
//!   airtime across all stations, per-frame corruption with up to 7
//!   retries; the *WiFi interference* fault adds co-channel airtime
//!   occupancy and collision probability, the way a neighbouring WLAN
//!   blasting on the same channel does ([`wlan`]).
//!
//! The model surfaces exactly the link/PHY metrics the paper's probes
//! collect: per-station RSSI (sampled at 1 Hz), negotiated rate,
//! association state and disconnection counts, plus MAC-level
//! retransmissions on the attached links.

pub mod phy;
pub mod rates;
pub mod wlan;

pub use phy::{PhyConfig, StationPhy};
pub use rates::{frame_error_rate, rate_for_snr, MIN_ASSOC_SNR_DB};
pub use wlan::{Wlan80211, WlanConfig};
