//! PHY layer: log-distance path loss, shadow fading, RSSI and SNR.
//!
//! RSSI at distance `d` is
//! `tx_power − (pl0 + 10·n·log10(d/1 m)) − attenuation + shadowing`,
//! the standard indoor log-distance model. Shadowing is a slow AR(1)
//! process updated once per second so consecutive RSSI samples within a
//! session are realistically correlated (the paper keeps the *average*
//! RSSI per session precisely because samples wander).

use vqd_simnet::rng::SimRng;

/// Static PHY parameters for one WLAN.
#[derive(Debug, Clone, Copy)]
pub struct PhyConfig {
    /// Transmit power in dBm (both directions; symmetric links).
    pub tx_power_dbm: f64,
    /// Path loss at the 1 m reference distance, dB.
    pub pl0_db: f64,
    /// Path-loss exponent (≈2 free space, 3–4 indoors).
    pub path_loss_exp: f64,
    /// Noise floor, dBm.
    pub noise_floor_dbm: f64,
    /// Shadow-fading standard deviation, dB.
    pub shadow_sd_db: f64,
    /// AR(1) coefficient of the shadowing process per 1 s tick.
    pub shadow_rho: f64,
}

impl Default for PhyConfig {
    fn default() -> Self {
        PhyConfig {
            tx_power_dbm: 15.0,
            pl0_db: 40.0,
            path_loss_exp: 3.0,
            noise_floor_dbm: -95.0,
            shadow_sd_db: 2.0,
            shadow_rho: 0.9,
        }
    }
}

impl PhyConfig {
    /// Deterministic mean RSSI (no shadowing) at `distance_m` with
    /// `atten_db` of extra attenuation.
    pub fn mean_rssi(&self, distance_m: f64, atten_db: f64) -> f64 {
        let d = distance_m.max(0.5);
        let pl = self.pl0_db + 10.0 * self.path_loss_exp * d.log10();
        self.tx_power_dbm - pl - atten_db
    }
}

/// Per-station PHY state.
#[derive(Debug, Clone)]
pub struct StationPhy {
    /// Distance from the AP in metres (fault knob).
    pub distance_m: f64,
    /// Extra attenuation in dB (fault knob: attenuator on the AP).
    pub atten_db: f64,
    /// Current shadow-fading value, dB.
    shadow_db: f64,
    /// Current RSSI (mean + shadowing), dBm.
    pub rssi_dbm: f64,
    /// Current SNR, dB.
    pub snr_db: f64,
}

impl StationPhy {
    /// A station at `distance_m` with no extra attenuation.
    pub fn new(cfg: &PhyConfig, distance_m: f64) -> Self {
        let rssi = cfg.mean_rssi(distance_m, 0.0);
        StationPhy {
            distance_m,
            atten_db: 0.0,
            shadow_db: 0.0,
            rssi_dbm: rssi,
            snr_db: rssi - cfg.noise_floor_dbm,
        }
    }

    /// Advance the shadowing process one tick and refresh RSSI/SNR.
    /// `interference_noise_db` raises the effective noise floor
    /// (co-channel energy the receiver cannot decode).
    pub fn tick(&mut self, cfg: &PhyConfig, interference_noise_db: f64, rng: &mut SimRng) {
        // AR(1): x' = ρx + sqrt(1-ρ²)·σ·ε keeps stationary variance σ².
        let innov = (1.0 - cfg.shadow_rho * cfg.shadow_rho).sqrt() * cfg.shadow_sd_db;
        self.shadow_db = cfg.shadow_rho * self.shadow_db + innov * rng.gauss();
        self.rssi_dbm = cfg.mean_rssi(self.distance_m, self.atten_db) + self.shadow_db;
        self.snr_db = self.rssi_dbm - (cfg.noise_floor_dbm + interference_noise_db.max(0.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rssi_decreases_with_distance() {
        let cfg = PhyConfig::default();
        let near = cfg.mean_rssi(2.0, 0.0);
        let mid = cfg.mean_rssi(10.0, 0.0);
        let far = cfg.mean_rssi(40.0, 0.0);
        assert!(near > mid && mid > far);
        // 10x distance at n=3 costs 30 dB.
        assert!((cfg.mean_rssi(1.0, 0.0) - cfg.mean_rssi(10.0, 0.0) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn attenuation_subtracts_directly() {
        let cfg = PhyConfig::default();
        assert!((cfg.mean_rssi(5.0, 10.0) - (cfg.mean_rssi(5.0, 0.0) - 10.0)).abs() < 1e-12);
    }

    #[test]
    fn healthy_distance_gives_strong_signal() {
        let cfg = PhyConfig::default();
        // A phone a few metres from its AP sees better than -60 dBm.
        assert!(cfg.mean_rssi(4.0, 0.0) > -60.0);
        // And ~45+ dB of SNR.
        assert!(cfg.mean_rssi(4.0, 0.0) - cfg.noise_floor_dbm > 45.0);
    }

    #[test]
    fn shadowing_is_stationary() {
        let cfg = PhyConfig::default();
        let mut st = StationPhy::new(&cfg, 8.0);
        let mut rng = SimRng::seed_from_u64(11);
        let mut acc = vqd_simnet::stats::Welford::new();
        for _ in 0..20_000 {
            st.tick(&cfg, 0.0, &mut rng);
            acc.add(st.rssi_dbm);
        }
        let mean_expected = cfg.mean_rssi(8.0, 0.0);
        assert!(
            (acc.mean() - mean_expected).abs() < 0.2,
            "mean {}",
            acc.mean()
        );
        assert!(
            (acc.std() - cfg.shadow_sd_db).abs() < 0.3,
            "std {}",
            acc.std()
        );
    }

    #[test]
    fn interference_noise_lowers_snr_not_rssi() {
        let cfg = PhyConfig::default();
        let mut st = StationPhy::new(&cfg, 8.0);
        let mut rng = SimRng::seed_from_u64(3);
        st.tick(&cfg, 0.0, &mut rng);
        let clean_snr = st.snr_db;
        let rssi = st.rssi_dbm;
        // Re-tick with raised noise; shadowing changes a little but the
        // SNR drop must dominate.
        let mut st2 = st.clone();
        st2.tick(&cfg, 12.0, &mut rng);
        assert!(clean_snr - st2.snr_db > 8.0);
        assert!((st2.rssi_dbm - rssi).abs() < 5.0);
    }
}
