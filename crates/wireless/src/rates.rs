//! Rate adaptation and frame error model.
//!
//! A station picks the fastest rate whose SNR requirement (plus a 3 dB
//! hysteresis margin) is met — a Minstrel-flavoured simplification.
//! Frames at a given rate fail with a probability that decays
//! exponentially in the SNR margin, so a station hovering at a rate
//! boundary sees elevated MAC retries: exactly the "poor signal"
//! signature (low RSSI + retransmissions + reduced advertised rate) the
//! paper's classifier keys on.

/// (required SNR dB, PHY rate bit/s) — 802.11a/g rates plus low-MCS
/// 802.11n, covering the "1 up to 70 Mbit/s" range of the testbed.
pub const RATE_TABLE: [(f64, u64); 10] = [
    (2.0, 1_000_000),
    (5.0, 6_000_000),
    (7.0, 9_000_000),
    (9.0, 12_000_000),
    (12.0, 18_000_000),
    (16.0, 24_000_000),
    (20.0, 36_000_000),
    (24.0, 48_000_000),
    (27.0, 54_000_000),
    (30.0, 65_000_000),
];

/// Stations below this SNR cannot stay associated.
pub const MIN_ASSOC_SNR_DB: f64 = 2.0;

/// Hysteresis margin required on top of a rate's SNR threshold.
pub const RATE_MARGIN_DB: f64 = 3.0;

/// The PHY rate a station at `snr_db` negotiates, or `None` if it
/// cannot associate at all.
pub fn rate_for_snr(snr_db: f64) -> Option<u64> {
    if snr_db < MIN_ASSOC_SNR_DB {
        return None;
    }
    let mut best = RATE_TABLE[0].1; // lowest rate is the fallback
    for &(req, rate) in &RATE_TABLE {
        if snr_db >= req + RATE_MARGIN_DB {
            best = rate;
        }
    }
    Some(best)
}

/// Per-attempt frame error probability at the rate chosen for
/// `snr_db`. `margin` is SNR above the chosen rate's requirement.
pub fn frame_error_rate(snr_db: f64) -> f64 {
    let Some(rate) = rate_for_snr(snr_db) else {
        return 1.0;
    };
    let req = RATE_TABLE
        .iter()
        .find(|(_, r)| *r == rate)
        .map(|(q, _)| *q)
        .unwrap_or(2.0);
    let margin = (snr_db - req).max(0.0);
    // 40 % at zero margin, ~2 % at the 3 dB hysteresis point, with a
    // 0.5 % floor for collisions/thermal hits that never go away.
    (0.40 * (-margin).exp()).max(0.005)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_signal_gets_top_rate() {
        assert_eq!(rate_for_snr(50.0), Some(65_000_000));
        assert_eq!(rate_for_snr(33.5), Some(65_000_000));
    }

    #[test]
    fn weak_signal_downgrades() {
        assert_eq!(rate_for_snr(10.0), Some(9_000_000));
        assert_eq!(rate_for_snr(5.5), Some(1_000_000));
        assert_eq!(rate_for_snr(1.0), None);
    }

    #[test]
    fn rate_is_monotone_in_snr() {
        let mut prev = 0;
        for i in 0..80 {
            let snr = i as f64;
            if let Some(r) = rate_for_snr(snr) {
                assert!(r >= prev, "rate regressed at snr={snr}");
                prev = r;
            }
        }
    }

    #[test]
    fn fer_decreases_with_snr() {
        // Compare within one rate step: 36 Mbit/s requires 20 dB and is
        // selected from 23 dB (margin 3) up to 27 dB (margin 7).
        let low = frame_error_rate(23.0);
        let high = frame_error_rate(26.9);
        assert!(low > high, "low={low} high={high}");
        assert!(frame_error_rate(60.0) >= 0.005); // floor
        assert_eq!(frame_error_rate(0.0), 1.0); // disassociated
    }

    #[test]
    fn fer_bounded() {
        for i in 0..100 {
            let f = frame_error_rate(i as f64);
            assert!((0.0..=1.0).contains(&f));
        }
    }
}
