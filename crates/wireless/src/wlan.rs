//! The 802.11 shared medium: contention, retries, interference,
//! association.
//!
//! One [`Wlan80211`] instance is one broadcast domain (an AP and its
//! stations). All frames — uplink, downlink, any station — serialise
//! through the same airtime, so a phone far from the AP transmitting at
//! 1 Mbit/s slows *everyone* down, and an interfering neighbour WLAN
//! (the paper's *WiFi interference* fault) both occupies airtime and
//! corrupts frames.

use std::any::Any;

use vqd_simnet::ids::HostId;
use vqd_simnet::medium::{MediumGrant, PhySnapshot, SharedMedium};
use vqd_simnet::rng::SimRng;
use vqd_simnet::time::{SimDuration, SimTime};

use crate::phy::{PhyConfig, StationPhy};
use crate::rates::{frame_error_rate, rate_for_snr};

/// MAC/PHY parameters of the WLAN.
#[derive(Debug, Clone, Copy)]
pub struct WlanConfig {
    /// PHY parameters.
    pub phy: PhyConfig,
    /// MAC retry limit (802.11 default: 7).
    pub max_retries: u32,
    /// Slot time, µs.
    pub slot_us: u64,
    /// DIFS, µs.
    pub difs_us: u64,
    /// Fixed per-frame overhead (preamble + MAC header + SIFS + ACK), µs.
    pub overhead_us: u64,
    /// Minimum contention window (slots − 1).
    pub cw_min: u32,
}

impl Default for WlanConfig {
    fn default() -> Self {
        WlanConfig {
            phy: PhyConfig::default(),
            max_retries: 7,
            slot_us: 9,
            difs_us: 34,
            overhead_us: 120,
            cw_min: 15,
        }
    }
}

#[derive(Debug, Clone)]
struct Station {
    host: HostId,
    phy: StationPhy,
    rate: Option<u64>,
    /// Cached `frame_error_rate(phy.snr_db)` — the FER is a pure
    /// function of the SNR, which only moves on PHY ticks, so there is
    /// no reason to re-derive it on every frame.
    fer: f64,
    disconnections: u64,
}

/// An 802.11 WLAN broadcast domain.
pub struct Wlan80211 {
    cfg: WlanConfig,
    ap: HostId,
    stations: Vec<Station>,
    busy_until: SimTime,
    busy_ns: u64,
    /// Airtime fraction occupied by a co-channel interferer, `[0, 1)`.
    interference_load: f64,
    /// Noise-floor rise caused by the interferer, dB.
    interference_noise_db: f64,
    /// PHY rate ceiling (the LAN-shaping fault: forcing 802.11a/b/g
    /// rate sets of 1–70 Mbit/s).
    rate_cap_bps: Option<u64>,
}

impl Wlan80211 {
    /// A WLAN rooted at `ap`.
    pub fn new(ap: HostId, cfg: WlanConfig) -> Self {
        Wlan80211 {
            cfg,
            ap,
            stations: Vec::new(),
            busy_until: SimTime::ZERO,
            busy_ns: 0,
            interference_load: 0.0,
            interference_noise_db: 0.0,
            rate_cap_bps: None,
        }
    }

    /// Register a station at `distance_m` from the AP.
    pub fn add_station(&mut self, host: HostId, distance_m: f64) {
        let phy = StationPhy::new(&self.cfg.phy, distance_m);
        let rate = rate_for_snr(phy.snr_db);
        let fer = frame_error_rate(phy.snr_db);
        self.stations.push(Station {
            host,
            phy,
            rate,
            fer,
            disconnections: 0,
        });
    }

    /// Move a station (the *poor signal* fault's distance knob).
    pub fn set_distance(&mut self, host: HostId, distance_m: f64) {
        if let Some(s) = self.stations.iter_mut().find(|s| s.host == host) {
            s.phy.distance_m = distance_m.max(0.5);
        }
    }

    /// Attenuate a station's link (the AP-side attenuator knob), dB.
    pub fn set_attenuation(&mut self, host: HostId, atten_db: f64) {
        if let Some(s) = self.stations.iter_mut().find(|s| s.host == host) {
            s.phy.atten_db = atten_db.max(0.0);
        }
    }

    /// Configure co-channel interference: `load` is the airtime
    /// fraction the interferer occupies, `noise_db` the noise-floor
    /// rise it causes at receivers.
    pub fn set_interference(&mut self, load: f64, noise_db: f64) {
        self.interference_load = load.clamp(0.0, 0.95);
        self.interference_noise_db = noise_db.max(0.0);
    }

    /// Current interference airtime load.
    pub fn interference_load(&self) -> f64 {
        self.interference_load
    }

    /// Cap the negotiated PHY rate (LAN shaping); `None` removes the
    /// cap.
    pub fn set_rate_cap(&mut self, cap: Option<u64>) {
        self.rate_cap_bps = cap;
    }

    fn capped(&self, rate: Option<u64>) -> Option<u64> {
        match (rate, self.rate_cap_bps) {
            (Some(r), Some(c)) => Some(r.min(c)),
            (r, _) => r,
        }
    }

    /// Refresh a station's PHY immediately (used after fault knobs move
    /// so the change takes effect without waiting a tick).
    pub fn refresh(&mut self, rng: &mut SimRng) {
        let noise = self.interference_noise_db;
        for s in &mut self.stations {
            s.phy.tick(&self.cfg.phy, noise, rng);
            let new_rate = rate_for_snr(s.phy.snr_db);
            if s.rate.is_some() && new_rate.is_none() {
                s.disconnections += 1;
            }
            s.rate = new_rate;
            s.fer = frame_error_rate(s.phy.snr_db);
        }
    }

    fn station_of(&self, from: HostId, to: HostId) -> Option<usize> {
        let sta = if from == self.ap { to } else { from };
        self.stations.iter().position(|s| s.host == sta)
    }
}

impl SharedMedium for Wlan80211 {
    fn transmit(
        &mut self,
        now: SimTime,
        from: HostId,
        to: HostId,
        bytes: u32,
        rng: &mut SimRng,
    ) -> MediumGrant {
        let Some(idx) = self.station_of(from, to) else {
            // Unknown station: behave like a clean 54 Mbit/s hop.
            let airtime = SimDuration::tx_time(bytes as u64, 54_000_000)
                + SimDuration::from_micros(self.cfg.overhead_us);
            return MediumGrant {
                access_delay: SimDuration::ZERO,
                airtime,
                delivered: true,
                mac_retries: 0,
            };
        };
        let (rate, fer) = {
            let s = &self.stations[idx];
            (self.capped(s.rate), s.fer)
        };
        let Some(rate) = rate else {
            // Disassociated: the frame is lost after a beacon-scale
            // stall at the sender.
            return MediumGrant {
                access_delay: SimDuration::from_millis(100),
                airtime: SimDuration::ZERO,
                delivered: false,
                mac_retries: 0,
            };
        };

        let start = now.max(self.busy_until);
        let mut t = start;
        // Interferer holding the channel when we arrive.
        if rng.chance(self.interference_load) {
            let stretch = 1.0 + 2.0 * self.interference_load;
            t += SimDuration::from_secs_f64(rng.expo(0.0004) * stretch);
        }
        // Collisions with co-channel traffic we cannot hear coming.
        let p_col = 0.45 * self.interference_load;
        let p_fail = 1.0 - (1.0 - fer) * (1.0 - p_col);

        let mut retries = 0u32;
        let mut delivered = false;
        let mut airtime = SimDuration::ZERO;
        for attempt in 0..=self.cfg.max_retries {
            let cw = ((self.cfg.cw_min + 1) << attempt.min(6)).min(1024);
            let slots = rng.index(cw as usize) as u64;
            t += SimDuration::from_micros(self.cfg.difs_us + slots * self.cfg.slot_us);
            airtime = SimDuration::tx_time(bytes as u64, rate)
                + SimDuration::from_micros(self.cfg.overhead_us);
            t += airtime;
            if !rng.chance(p_fail) {
                delivered = true;
                break;
            }
            retries = attempt + 1;
        }
        self.busy_ns += (t - start).0;
        self.busy_until = t;
        MediumGrant {
            access_delay: (t - now).saturating_sub(airtime),
            airtime,
            delivered,
            mac_retries: retries.min(self.cfg.max_retries),
        }
    }

    fn snapshot(&self, station: HostId) -> Option<PhySnapshot> {
        self.stations
            .iter()
            .find(|s| s.host == station)
            .map(|s| PhySnapshot {
                rssi_dbm: s.phy.rssi_dbm,
                snr_db: s.phy.snr_db,
                phy_rate_bps: self.capped(s.rate).unwrap_or(0),
                connected: s.rate.is_some(),
                disconnections: s.disconnections,
            })
    }

    fn busy_fraction(&self, now: SimTime) -> f64 {
        if now.0 == 0 {
            return self.interference_load;
        }
        let own = (self.busy_ns as f64 / now.0 as f64).min(1.0);
        // The interferer occupies `load` of whatever airtime we left idle.
        (own + self.interference_load * (1.0 - own)).min(1.0)
    }

    fn stations(&self) -> Vec<HostId> {
        self.stations.iter().map(|s| s.host).collect()
    }

    fn on_tick(&mut self, _now: SimTime, rng: &mut SimRng) {
        self.refresh(rng);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wlan_with_station(distance: f64) -> (Wlan80211, HostId, HostId) {
        let ap = HostId(0);
        let sta = HostId(1);
        let mut w = Wlan80211::new(ap, WlanConfig::default());
        w.add_station(sta, distance);
        (w, ap, sta)
    }

    #[test]
    fn close_station_is_fast_and_reliable() {
        let (mut w, ap, sta) = wlan_with_station(4.0);
        let mut rng = SimRng::seed_from_u64(1);
        let mut fails = 0;
        let mut retries = 0;
        for _ in 0..1000 {
            let g = w.transmit(w.busy_until, ap, sta, 1500, &mut rng);
            if !g.delivered {
                fails += 1;
            }
            retries += g.mac_retries;
        }
        assert_eq!(fails, 0);
        assert!(retries < 40, "retries {retries}");
        let snap = w.snapshot(sta).unwrap();
        assert!(snap.connected);
        assert_eq!(snap.phy_rate_bps, 65_000_000);
    }

    #[test]
    fn far_station_degrades_then_disconnects() {
        let (mut w, _ap, sta) = wlan_with_station(4.0);
        let mut rng = SimRng::seed_from_u64(2);
        // 45 m: mean RSSI is ≈ −74.6 dBm (15 − 40 − 30·log10(45)), so
        // the −70 dBm check holds with > 2σ of margin against the
        // ±2 dB shadow fading. (At 35 m the mean is −71.3 dBm and the
        // check sat *inside* the fading band — seed 2's +1.4 dB draw
        // landed at −69.96 and failed it.)
        w.set_distance(sta, 45.0);
        w.refresh(&mut rng);
        let mid = w.snapshot(sta).unwrap();
        assert!(mid.rssi_dbm < -70.0, "rssi {}", mid.rssi_dbm);
        assert!(mid.phy_rate_bps < 65_000_000);
        // Push it past the association limit.
        w.set_distance(sta, 60.0);
        w.set_attenuation(sta, 25.0);
        w.refresh(&mut rng);
        let far = w.snapshot(sta).unwrap();
        assert!(!far.connected);
        assert!(far.disconnections >= 1);
    }

    #[test]
    fn interference_costs_airtime_and_frames() {
        let run = |load: f64| -> (u64, u64) {
            let (mut w, ap, sta) = wlan_with_station(6.0);
            w.set_interference(load, 6.0);
            let mut rng = SimRng::seed_from_u64(3);
            w.refresh(&mut rng);
            let mut total_ns = 0u64;
            let mut retries = 0u64;
            for _ in 0..2000 {
                let g = w.transmit(w.busy_until, ap, sta, 1500, &mut rng);
                total_ns += (g.access_delay + g.airtime).0;
                retries += g.mac_retries as u64;
            }
            (total_ns, retries)
        };
        let (clean_t, clean_r) = run(0.0);
        let (noisy_t, noisy_r) = run(0.6);
        assert!(noisy_t > clean_t * 2, "clean {clean_t} noisy {noisy_t}");
        assert!(
            noisy_r > clean_r * 3 + 20,
            "clean {clean_r} noisy {noisy_r}"
        );
    }

    #[test]
    fn airtime_shared_between_stations() {
        let ap = HostId(0);
        let (a, b) = (HostId(1), HostId(2));
        let mut w = Wlan80211::new(ap, WlanConfig::default());
        w.add_station(a, 4.0);
        w.add_station(b, 4.0);
        let mut rng = SimRng::seed_from_u64(4);
        let g1 = w.transmit(SimTime::ZERO, ap, a, 1500, &mut rng);
        assert!(g1.delivered);
        // Station b transmitting "at the same instant" has to wait for
        // the first frame's airtime.
        let g2 = w.transmit(SimTime::ZERO, b, ap, 1500, &mut rng);
        assert!(g2.access_delay >= g1.airtime);
    }

    #[test]
    fn disassociated_station_loses_frames() {
        let (mut w, ap, sta) = wlan_with_station(4.0);
        let mut rng = SimRng::seed_from_u64(5);
        w.set_attenuation(sta, 60.0);
        w.refresh(&mut rng);
        let g = w.transmit(SimTime::ZERO, ap, sta, 1500, &mut rng);
        assert!(!g.delivered);
    }

    #[test]
    fn unknown_station_falls_back_clean() {
        let (mut w, ap, _sta) = wlan_with_station(4.0);
        let mut rng = SimRng::seed_from_u64(6);
        let g = w.transmit(SimTime::ZERO, ap, HostId(9), 1500, &mut rng);
        assert!(g.delivered);
        assert_eq!(g.mac_retries, 0);
    }

    #[test]
    fn busy_fraction_includes_interference() {
        let (mut w, _, _) = wlan_with_station(4.0);
        w.set_interference(0.5, 3.0);
        let f = w.busy_fraction(SimTime::from_secs(10));
        assert!((0.5..=1.0).contains(&f), "{f}");
    }
}
