//! Property-based tests of the 802.11 medium model.

use proptest::prelude::*;

use vqd_simnet::ids::HostId;
use vqd_simnet::medium::SharedMedium;
use vqd_simnet::rng::SimRng;
use vqd_simnet::time::{SimDuration, SimTime};
use vqd_wireless::{frame_error_rate, rate_for_snr, Wlan80211, WlanConfig};

proptest! {
    /// Rate selection is monotone in SNR and FER is a probability.
    #[test]
    fn rate_and_fer_sane(snr in -10.0f64..80.0) {
        if let Some(r) = rate_for_snr(snr) {
            prop_assert!(r >= 1_000_000);
            if let Some(r2) = rate_for_snr(snr + 1.0) {
                prop_assert!(r2 >= r);
            }
        }
        let fer = frame_error_rate(snr);
        prop_assert!((0.0..=1.0).contains(&fer));
    }

    /// Monotone time: grants never start in the past, airtime and
    /// access delay are non-negative, and retries respect the limit,
    /// for arbitrary station geometry, interference and frame sizes.
    #[test]
    fn grants_are_physical(
        distance in 1.0f64..60.0,
        atten in 0.0f64..30.0,
        interference in 0.0f64..0.9,
        sizes in proptest::collection::vec(40u32..1600, 1..60),
        seed in any::<u64>(),
    ) {
        let ap = HostId(0);
        let sta = HostId(1);
        let mut w = Wlan80211::new(ap, WlanConfig::default());
        w.add_station(sta, distance);
        w.set_attenuation(sta, atten);
        w.set_interference(interference, interference * 15.0);
        let mut rng = SimRng::seed_from_u64(seed);
        w.refresh(&mut rng);
        let mut now = SimTime::ZERO;
        for &bytes in &sizes {
            let g = w.transmit(now, ap, sta, bytes, &mut rng);
            prop_assert!(g.access_delay >= SimDuration::ZERO);
            prop_assert!(g.mac_retries <= 7);
            if g.delivered {
                prop_assert!(g.airtime > SimDuration::ZERO);
            }
            now += SimDuration::from_micros(50);
        }
        // Busy fraction is a fraction.
        let f = w.busy_fraction(now + SimDuration::from_secs(1));
        prop_assert!((0.0..=1.0).contains(&f));
    }

    /// RSSI decreases (stochastically, so compare means over ticks)
    /// as distance grows; disconnection only at very low SNR.
    #[test]
    fn rssi_distance_ordering(seed in any::<u64>(), d1 in 2.0f64..10.0, extra in 10.0f64..40.0) {
        let ap = HostId(0);
        let (near, far) = (HostId(1), HostId(2));
        let mut w = Wlan80211::new(ap, WlanConfig::default());
        w.add_station(near, d1);
        w.add_station(far, d1 + extra);
        let mut rng = SimRng::seed_from_u64(seed);
        let (mut sum_near, mut sum_far) = (0.0, 0.0);
        for _ in 0..50 {
            w.refresh(&mut rng);
            sum_near += w.snapshot(near).unwrap().rssi_dbm;
            sum_far += w.snapshot(far).unwrap().rssi_dbm;
        }
        prop_assert!(sum_near > sum_far, "near {sum_near} far {sum_far}");
    }
}
