//! ISP-side monitoring: blame attribution from the home router.
//!
//! An ISP that instruments home gateways can tell whether a
//! subscriber's bad video session is the subscriber's own WLAN/device,
//! the access network, or beyond (Section 5.2 / "Practical
//! implications"). This example trains a *location* model and then
//! watches a fleet of simulated subscribers, producing the per-segment
//! blame report an ISP NOC would consume — from router metrics alone.
//!
//! ```text
//! cargo run --release --example isp_monitor
//! ```

use vqd::prelude::*;

fn main() {
    // The NOC blame report below is read straight from the metrics
    // registry (`core.diagnose.label.*`), not tallied by hand.
    vqd_obs::enable();
    let catalog = Catalog::top100(42);
    let cfg = CorpusConfig {
        sessions: 250,
        seed: 77,
        p_fault: 0.55,
        ..Default::default()
    };
    println!(
        "training location model on {} lab sessions...",
        cfg.sessions
    );
    let corpus = generate_corpus(&cfg, &catalog);
    let data = to_dataset(&corpus, LabelScheme::Location);
    let model = Diagnoser::train(&data, &DiagnoserConfig::default());

    // A fleet of subscribers with a mix of ambient conditions.
    let fleet = 24;
    println!("monitoring {fleet} subscriber sessions (router vantage point only)...\n");
    // Only the truth-dependent tally is kept by hand; the model is the
    // registry's business.
    vqd_obs::reset();
    let mut correct_loc = 0;
    let mut problems = 0;
    for i in 0..fleet {
        let kind = match i % 6 {
            0 | 1 => FaultKind::None,
            2 => FaultKind::WanCongestion,
            3 => FaultKind::LanCongestion,
            4 => FaultKind::LowRssi,
            _ => FaultKind::WanShaping,
        };
        let spec = SessionSpec {
            seed: 31_000 + i as u64,
            fault: FaultPlan {
                kind,
                intensity: 0.8,
            },
            background: 0.4,
            wan: if i % 5 == 4 {
                WanProfile::Mobile
            } else {
                WanProfile::Dsl
            },
        };
        let session = run_controlled_session(&spec, &catalog);
        let router_view: Vec<(String, f64)> = session
            .metrics
            .iter()
            .filter(|(n, _)| n.starts_with("router"))
            .cloned()
            .collect();
        let dx = model.diagnose(&router_view);
        let truth = session.truth.label(LabelScheme::Location);
        if truth != "good" {
            problems += 1;
            let seg = |s: &str| s.split('_').next().unwrap_or("").to_string();
            if seg(&dx.label) == seg(&truth) {
                correct_loc += 1;
            }
        }
    }
    let snap = vqd_obs::snapshot();
    println!("NOC blame report (router-only diagnoses, from the metrics registry):");
    for (label, n) in snap.counters_with_prefix("core.diagnose.label.") {
        println!("  {label:<16} {n:>3} sessions");
    }
    println!(
        "  ({} diagnoses; exact answers {}, downgraded to location {}, to existence {})",
        snap.counter("core.diagnose.calls"),
        snap.counter("core.diagnose.resolution.exact"),
        snap.counter("core.diagnose.resolution.location"),
        snap.counter("core.diagnose.resolution.existence"),
    );
    println!("\nsegment attribution on truly-problematic sessions: {correct_loc}/{problems}");
    println!(
        "(the paper: ISPs can identify whether an issue is theirs, the user's LAN, or beyond)"
    );
}
