//! On-device self-diagnosis: what a mobile app can do *alone*.
//!
//! The paper's headline practical result is that "even an isolated
//! mobile application ... can successfully identify a large number of
//! problems without further instrumentation". This example trains the
//! model, then diagnoses sessions using ONLY the `mobile.*` metrics —
//! the other vantage points are simply absent, exercising the missing-
//! feature path of the C4.5 model.
//!
//! ```text
//! cargo run --release --example mobile_selfdiag
//! ```

use vqd::prelude::*;

fn main() {
    let catalog = Catalog::top100(42);
    let cfg = CorpusConfig {
        sessions: 250,
        seed: 11,
        p_fault: 0.55,
        ..Default::default()
    };
    println!("training on {} lab sessions...", cfg.sessions);
    let corpus = generate_corpus(&cfg, &catalog);
    let data = to_dataset(&corpus, LabelScheme::Exact);
    let model = Diagnoser::train(&data, &DiagnoserConfig::default());

    let mut agree = 0;
    let mut total = 0;
    println!("\nphone-only diagnosis of fresh faulted sessions:");
    for (i, kind) in FaultKind::ALL.iter().enumerate() {
        let spec = SessionSpec {
            seed: 9_000 + i as u64,
            fault: FaultPlan {
                kind: *kind,
                intensity: 0.85,
            },
            background: 0.3,
            wan: WanProfile::Dsl,
        };
        let session = run_controlled_session(&spec, &catalog);
        // The app only has its own measurements.
        let phone_view: Vec<(String, f64)> = session
            .metrics
            .iter()
            .filter(|(n, _)| n.starts_with("mobile"))
            .cloned()
            .collect();
        let dx = model.diagnose(&phone_view);
        let truth = session.truth.label(LabelScheme::Exact);
        let hit = dx.label == truth
            || (truth != "good"
                && dx.label.rsplit_once('_').map(|x| x.0) == truth.rsplit_once('_').map(|x| x.0));
        total += 1;
        if hit {
            agree += 1;
        }
        println!(
            "  induced {:<18} truth {:<26} -> phone says {:<26} {}",
            kind.name(),
            truth,
            dx.label,
            if hit { "✓" } else { "✗" }
        );
    }
    println!("\nphone-only agreement on fault family: {agree}/{total}");
    println!("(the paper: the mobile VP alone reaches 88.18% exact-problem accuracy)");
}
