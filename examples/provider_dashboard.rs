//! Content-provider dashboard: diagnosing client-side trouble from the
//! server alone.
//!
//! Figure 9's striking result: a content provider, with nothing but its
//! own TCP view of the flow, can flag sessions whose *client device*
//! was overloaded or whose radio signal was weak. This example trains
//! the exact-problem model, streams a mixed workload, and prints the
//! provider-side dashboard with the ground truth alongside.
//!
//! The closing summary is scraped from the **live ops endpoint** — the
//! same `/metrics` Prometheus exposition `vqd serve --metrics-addr`
//! exposes — rather than from an exit snapshot, demonstrating how a
//! production dashboard would consume the daemon.
//!
//! ```text
//! cargo run --release --example provider_dashboard
//! ```

use std::io::{Read as _, Write as _};
use std::sync::Arc;

use vqd::prelude::*;

/// One GET against the live ops endpoint, body only.
fn scrape(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = std::net::TcpStream::connect(addr).expect("connect to ops endpoint");
    write!(s, "GET {path} HTTP/1.1\r\nHost: dashboard\r\n\r\n").expect("send request");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("read response");
    resp.split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or(resp)
}

/// Pull one sample value out of an exposition document (sanitized
/// Prometheus name, e.g. `core_diagnose_calls`).
fn sample(exposition: &str, name: &str) -> f64 {
    exposition
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

fn main() {
    // The closing summary is read over HTTP from the ops listener
    // rather than re-aggregated from per-session state.
    vqd_obs::enable();
    let catalog = Catalog::top100(42);
    let cfg = CorpusConfig {
        sessions: 300,
        seed: 55,
        p_fault: 0.55,
        ..Default::default()
    };
    println!("training on {} lab sessions...", cfg.sessions);
    let corpus = generate_corpus(&cfg, &catalog);
    let data = to_dataset(&corpus, LabelScheme::Exact);
    let model = Diagnoser::train(&data, &DiagnoserConfig::default());

    println!("\nprovider dashboard — server vantage point only:");
    println!(
        "{:<4} {:<20} {:>9} {:>9}  induced truth",
        "id", "server diagnosis", "cpu(gt)", "rssi(gt)"
    );
    let mix = [
        FaultKind::None,
        FaultKind::MobileLoad,
        FaultKind::LowRssi,
        FaultKind::WanCongestion,
        FaultKind::MobileLoad,
        FaultKind::None,
        FaultKind::LowRssi,
        FaultKind::LanCongestion,
    ];
    for (i, kind) in mix.iter().enumerate() {
        let spec = SessionSpec {
            seed: 60_000 + i as u64,
            fault: FaultPlan {
                kind: *kind,
                intensity: 0.9,
            },
            background: 0.35,
            wan: WanProfile::Dsl,
        };
        let session = run_controlled_session(&spec, &catalog);
        let server_view: Vec<(String, f64)> = session
            .metrics
            .iter()
            .filter(|(n, _)| n.starts_with("server"))
            .cloned()
            .collect();
        let dx = model.diagnose(&server_view);
        let get = |name: &str| {
            session
                .metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        let cpu = get("mobile.hw.cpu_avg").unwrap_or(f64::NAN);
        let rssi = get("mobile.phy.rssi_avg").unwrap_or(f64::NAN);
        println!(
            "{:<4} {:<20} {:>8.2}  {:>8.1}  {}",
            i,
            dx.label,
            cpu,
            rssi,
            session.truth.label(LabelScheme::Exact)
        );
    }
    // Stand up the same ops listener `vqd serve --metrics-addr` runs,
    // mark it ready, and read the dashboard numbers back over HTTP.
    let readiness = Arc::new(Readiness::default());
    for leg in [
        &readiness.model_loaded,
        &readiness.shards_running,
        &readiness.journal_writable,
    ] {
        leg.store(true, std::sync::atomic::Ordering::SeqCst);
    }
    let ops = OpsServer::bind(
        "127.0.0.1:0",
        Arc::clone(&readiness),
        std::time::Duration::from_millis(0),
    )
    .expect("bind ops listener");
    let addr = ops.local_addr();
    assert!(scrape(addr, "/readyz").starts_with("ready"));
    let exposition = scrape(addr, "/metrics");
    println!("\npipeline summary (scraped live from http://{addr}/metrics):");
    println!(
        "  {} sessions simulated, {} stalls observed, {} dispatched sim events",
        sample(&exposition, "simnet_sessions") as u64,
        sample(&exposition, "core_qoe_stalls") as u64,
        sample(&exposition, "simnet_sched_dispatched") as u64,
    );
    let calls = sample(&exposition, "core_diagnose_calls") as u64;
    let conf_n = sample(&exposition, "core_diagnose_confidence_count");
    let cov_n = sample(&exposition, "core_diagnose_coverage_count");
    if conf_n > 0.0 {
        println!(
            "  {} server-side diagnoses, mean confidence {:.2}, mean telemetry coverage {:.2}",
            calls,
            sample(&exposition, "core_diagnose_confidence_sum") / conf_n,
            sample(&exposition, "core_diagnose_coverage_sum") / cov_n.max(1.0),
        );
    }
    ops.shutdown();
    println!("\n(the paper: server-flagged 'mobile load' sessions really do have high CPU,");
    println!(" and 'low RSSI' sessions really do have weak signal — with no client data at all)");
}
