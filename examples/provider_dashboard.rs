//! Content-provider dashboard: diagnosing client-side trouble from the
//! server alone.
//!
//! Figure 9's striking result: a content provider, with nothing but its
//! own TCP view of the flow, can flag sessions whose *client device*
//! was overloaded or whose radio signal was weak. This example trains
//! the exact-problem model, streams a mixed workload, and prints the
//! provider-side dashboard with the ground truth alongside.
//!
//! ```text
//! cargo run --release --example provider_dashboard
//! ```

use vqd::prelude::*;

fn main() {
    // The closing summary is read from the metrics registry rather
    // than re-aggregated from per-session state.
    vqd_obs::enable();
    let catalog = Catalog::top100(42);
    let cfg = CorpusConfig {
        sessions: 300,
        seed: 55,
        p_fault: 0.55,
        ..Default::default()
    };
    println!("training on {} lab sessions...", cfg.sessions);
    let corpus = generate_corpus(&cfg, &catalog);
    let data = to_dataset(&corpus, LabelScheme::Exact);
    let model = Diagnoser::train(&data, &DiagnoserConfig::default());

    println!("\nprovider dashboard — server vantage point only:");
    println!(
        "{:<4} {:<20} {:>9} {:>9}  induced truth",
        "id", "server diagnosis", "cpu(gt)", "rssi(gt)"
    );
    let mix = [
        FaultKind::None,
        FaultKind::MobileLoad,
        FaultKind::LowRssi,
        FaultKind::WanCongestion,
        FaultKind::MobileLoad,
        FaultKind::None,
        FaultKind::LowRssi,
        FaultKind::LanCongestion,
    ];
    for (i, kind) in mix.iter().enumerate() {
        let spec = SessionSpec {
            seed: 60_000 + i as u64,
            fault: FaultPlan {
                kind: *kind,
                intensity: 0.9,
            },
            background: 0.35,
            wan: WanProfile::Dsl,
        };
        let session = run_controlled_session(&spec, &catalog);
        let server_view: Vec<(String, f64)> = session
            .metrics
            .iter()
            .filter(|(n, _)| n.starts_with("server"))
            .cloned()
            .collect();
        let dx = model.diagnose(&server_view);
        let get = |name: &str| {
            session
                .metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        let cpu = get("mobile.hw.cpu_avg").unwrap_or(f64::NAN);
        let rssi = get("mobile.phy.rssi_avg").unwrap_or(f64::NAN);
        println!(
            "{:<4} {:<20} {:>8.2}  {:>8.1}  {}",
            i,
            dx.label,
            cpu,
            rssi,
            session.truth.label(LabelScheme::Exact)
        );
    }
    let snap = vqd_obs::snapshot();
    println!("\npipeline summary (metrics registry):");
    println!(
        "  {} sessions simulated, {} stalls observed, {} dispatched sim events",
        snap.counter("simnet.sessions"),
        snap.counter("core.qoe.stalls"),
        snap.counter("simnet.sched.dispatched"),
    );
    if let Some(h) = snap.hist("core.diagnose.confidence") {
        println!(
            "  {} server-side diagnoses, mean confidence {:.2}, mean telemetry coverage {:.2}",
            snap.counter("core.diagnose.calls"),
            h.mean(),
            snap.hist("core.diagnose.coverage")
                .map(vqd_obs::LogHistogram::mean)
                .unwrap_or(0.0),
        );
    }
    println!("\n(the paper: server-flagged 'mobile load' sessions really do have high CPU,");
    println!(" and 'low RSSI' sessions really do have weak signal — with no client data at all)");
}
