//! Quickstart: train the root-cause model on a small controlled corpus
//! and diagnose three fresh sessions (healthy, low-RSSI, device load).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vqd::prelude::*;

fn main() {
    // 1. Ground truth: simulate labelled sessions on the controlled
    //    testbed (server — shaped WAN — router/AP — WLAN — phone).
    let catalog = Catalog::top100(42);
    let sessions: usize = std::env::var("VQD_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250);
    println!("simulating {sessions} training sessions...");
    let cfg = CorpusConfig {
        sessions,
        seed: 1,
        p_fault: 0.55,
        ..Default::default()
    };
    let corpus = generate_corpus(&cfg, &catalog);
    let good = corpus
        .iter()
        .filter(|r| r.truth.qoe == QoeClass::Good)
        .count();
    println!(
        "  corpus: {} sessions, {} good / {} problematic",
        corpus.len(),
        good,
        corpus.len() - good
    );

    // 2. Train: feature construction -> FCBF -> C4.5.
    let data = to_dataset(&corpus, LabelScheme::Exact);
    let model = Diagnoser::train(&data, &DiagnoserConfig::default());
    println!(
        "  model uses {} features (selected by FCBF):",
        model.selected_features().len()
    );
    for f in model.selected_features() {
        println!("    {f}");
    }

    // 3. Diagnose fresh sessions the model has never seen.
    let cases = [
        ("healthy", FaultKind::None, 0.0),
        ("poor signal", FaultKind::LowRssi, 0.9),
        ("device overload", FaultKind::MobileLoad, 0.9),
    ];
    for (what, kind, intensity) in cases {
        let spec = SessionSpec {
            seed: 4242 + intensity as u64,
            fault: FaultPlan { kind, intensity },
            background: 0.4,
            wan: WanProfile::Dsl,
        };
        let session = run_controlled_session(&spec, &catalog);
        let dx = model.diagnose(&session.metrics);
        println!(
            "\nscenario '{what}': induced={} qoe={:?}",
            kind.name(),
            session.truth.qoe
        );
        println!(
            "  -> diagnosis: {} (confidence {:.2})",
            dx.label, dx.dist[dx.class]
        );
        println!(
            "  session: startup {:?}s, {} stalls, {:.1}s frame skips",
            session
                .qoe
                .startup_delay_s()
                .map(|s| (s * 10.0).round() / 10.0),
            session.qoe.stalls.len(),
            session.qoe.frame_skip_s
        );
    }
}
