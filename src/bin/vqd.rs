//! `vqd` — command-line front end for the diagnosis framework.
//!
//! ```text
//! vqd corpus     --sessions 600 --seed 2015 --out corpus.tsv
//! vqd train      --corpus corpus.tsv --labels exact --out model.vqd
//! vqd diagnose   --model model.vqd --metrics session.tsv
//! vqd diagnose   --model model.vqd --batch corpus.tsv --threads 0
//! vqd simulate   --fault low_rssi --intensity 0.9 --model model.vqd
//! vqd inspect    --model model.vqd
//! vqd robustness --corpus corpus.tsv --test test.tsv --labels exact
//! vqd stats      --sessions 50
//! vqd help
//! ```
//!
//! Corpus files use the same tab-separated format as the bench cache
//! (`fault\tqoe\tname=value\t…` per line); metrics files are
//! `name=value` per line or tab-separated on one line.
//!
//! Exit codes: 0 success, 1 runtime failure (I/O, corrupt file), 2
//! usage error (unknown command, missing or malformed flag).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;

use vqd::prelude::*;

const USAGE: &str = "usage: vqd <command> [--opt value ...]\n\
    \n\
    vqd corpus     --sessions 600 --seed 2015 --out corpus.tsv|corpus.vqdc [--farm 4]\n\
    \x20              [--procs 4] [--format v1|v2|v2raw]\n\
    vqd corpus convert --in corpus.tsv --out corpus.vqdc [--format v1|v2|v2raw]   (and back)\n\
    vqd train      --corpus corpus.tsv|corpus.vqdc --labels exact|location|existence --out model.vqd\n\
    \x20              [--out-of-core --chunk-rows 65536 --spill-pairs 4194304 --spill-dir /tmp]\n\
    vqd diagnose   --model model.vqd --metrics session.tsv\n\
    vqd diagnose   --model model.vqd --batch corpus.tsv [--threads 0] [--out results.tsv]\n\
    \x20              [--explain audit.jsonl] [--shuffle 7 [--shuffle-mem 1048576]]\n\
    vqd simulate   --fault low_rssi --intensity 0.9 [--model model.vqd] [--out session.tsv]\n\
    vqd inspect    --model model.vqd\n\
    vqd robustness --corpus corpus.tsv [--test test.tsv] [--model model.vqd]\n\
    \x20              [--labels exact|location|existence] [--kinds vp_dropout,corruption,...]\n\
    \x20              [--intensities 0,0.25,0.5,0.75,1] [--seed 7] [--threads 0]\n\
    vqd events     --corpus corpus.tsv [--shuffle 7 [--shuffle-mem 1048576]] [--ts 1.0]\n\
    \x20              [--out events.jsonl]\n\
    vqd serve      --model model.vqd --stdin|--listen 127.0.0.1:4815 [--shards 4]\n\
    \x20              [--flush-batch 32] [--queue 1024] [--lateness 30]\n\
    \x20              [--max-sessions 4096] [--strict] [--out results.tsv]\n\
    \x20              [--journal dir] [--journal-flush 256] [--recover]\n\
    \x20              [--snapshot dir] [--snapshot-every 512] [--snapshot-keep 2]\n\
    \x20              [--shed-high 1048576] [--no-shed]\n\
    \x20              [--metrics-addr 127.0.0.1:9464] [--audit-log audit.jsonl] [--no-drift]\n\
    vqd recover    --journal dir [--snapshot dir] [--out results.tsv] [--next-seq]\n\
    vqd stats      [--sessions 50 --seed 2015] | [--metrics metrics.jsonl] | [--trace trace.json]\n\
    vqd help\n\
    \n\
    `robustness` trains on --corpus (or loads --model), then sweeps the\n\
    degradation kind x intensity grid over the --test corpus, reporting\n\
    accuracy, telemetry coverage and exact-answer rate per cell.\n\
    Degradation kinds: vp_dropout, group_loss, truncation, corruption,\n\
    clock_skew.\n\
    \n\
    Corpus files come in two losslessly interconvertible formats,\n\
    sniffed by magic everywhere a corpus is read: the tab-separated\n\
    text format (debug/interchange) and the binary columnar `.vqdc`\n\
    format (checksummed feature-major column blocks; the fast path for\n\
    million-session corpora). `corpus` writes whichever the --out\n\
    extension names; `corpus convert` translates between them (and\n\
    between .vqdc versions). --format picks the binary layout: v1\n\
    (uncompressed columns, the PR 8 layout), v2 (compressed column\n\
    blocks, the default) or v2raw (v2 container, no compression; the\n\
    fastest mmap read path). Both versions load transparently.\n\
    `corpus --farm N` shards generation across N independent sim\n\
    workers by contiguous seed range — the merged corpus is\n\
    byte-identical to --farm 1 at any width. `corpus --procs P` runs\n\
    the same farm as P worker *processes*, each writing a shard .vqdc\n\
    the parent stream-merges in range order — still byte-identical,\n\
    and the parent never holds the corpus in memory.\n\
    \n\
    `train --out-of-core` streams a `.vqdc` corpus column by column\n\
    through FC + FCBF + an external-sort C4.5 fit, holding O(rows)\n\
    memory instead of the full matrix; the model file is byte-identical\n\
    to in-memory `train` at any --chunk-rows/--spill-pairs.\n\
    \n\
    `diagnose --batch` scores every session of a corpus file through\n\
    the batched serving engine (one TSV line per session: label,\n\
    resolution, confidence, coverage, fallback). Results are\n\
    bit-identical to per-session `diagnose` at any --threads value.\n\
    Corpora stream through in bounded chunks, so `events` and\n\
    `diagnose --batch` handle corpora larger than memory. --shuffle\n\
    <seed> (both commands) permutes via a seeded external key-sort\n\
    that spills sorted runs past --shuffle-mem records: the order\n\
    depends only on the seed and the record count, never the budget,\n\
    so shuffled streams replay identically beyond RAM.\n\
    \n\
    `events` explodes a corpus into the JSONL probe-event stream a live\n\
    deployment would emit (optionally shuffled by --shuffle <seed>, with\n\
    synthetic --ts <step> arrival timestamps). `serve` is the streaming\n\
    daemon: it reassembles sessions from such events (stdin or a TCP\n\
    socket; the literal line \"shutdown\" stops a socket daemon),\n\
    diagnoses each on completion / watermark expiry / eviction, and\n\
    emits the same TSV as `diagnose --batch` — bit-identical per\n\
    session at any arrival order and --shards count (emission order\n\
    varies; sort both by session to compare). Malformed lines are\n\
    dropped with a warning unless --strict. SIGINT/SIGTERM drain the\n\
    shards, flush every open session, write a final snapshot (when\n\
    configured) and exit 0.\n\
    \n\
    Crash safety: --journal <dir> appends every accepted event to a\n\
    checksummed write-ahead log before it reaches a shard (group\n\
    commit every --journal-flush records); --snapshot <dir> also\n\
    persists full daemon state every --snapshot-every events and at\n\
    shutdown, keeping --snapshot-keep files and pruning the journal\n\
    behind the oldest survivor. After a crash, `vqd recover` (read\n\
    only) reports the resume point, and `vqd serve ... --recover`\n\
    rebuilds state from snapshot + journal replay; with --out the\n\
    results file is deduplicated, so every session is answered exactly\n\
    once across any number of crashes. Past --shed-high buffered\n\
    samples per shard the daemon sheds the least informative samples\n\
    of the fattest sessions instead of stalling (--no-shed disables).\n\
    \n\
    Live ops surface (serve): --metrics-addr binds a dependency-free\n\
    HTTP listener with /metrics (Prometheus text exposition of the\n\
    metrics registry, rendered from a scrape-safe cached snapshot),\n\
    /healthz (liveness) and /readyz (503 naming the missing legs until\n\
    model loaded, shards running and journal writable). --audit-log\n\
    appends one JSON line per flushed session recording every split\n\
    the compiled-tree descent crossed (node, feature, threshold,\n\
    observed value, direction) — replayable to the exact verdict;\n\
    `diagnose --batch --explain` writes the same records offline.\n\
    Models trained by this version carry a drift stamp (training-time\n\
    feature sketches + label mix); serve compares live traffic against\n\
    it on the flush cadence, publishes serve.drift.* gauges and logs\n\
    threshold crossings (--no-drift disables). Graceful shutdown\n\
    flushes the audit sink and writes the --stats snapshot last.\n\
    \n\
    Observability (corpus / train / robustness):\n\
    \x20 --trace <path>   collect pipeline + sim spans, write Chrome trace_event JSON\n\
    \x20 --stats <path>   write a JSONL metrics snapshot at exit\n\
    \x20 --no-obs         disable metric recording entirely\n\
    Recording is determinism-neutral: output files (corpora, models,\n\
    reports) are byte-identical with it on or off.\n\
    \n\
    `stats` profiles a small corpus run and prints the metrics registry\n\
    (counters, gauges, histograms); with --metrics it renders an existing\n\
    JSONL snapshot, with --trace it validates a trace file.";

/// Parsed argv: `(command, subcommand, --key value flags)`.
type ParsedArgs = (String, Option<String>, HashMap<String, String>);

/// Split argv into `(command, subcommand, --key value flags)`. A bare
/// word directly after the command is its subcommand (`vqd corpus
/// convert`); flags without a value are recorded as `"true"`; any
/// other positional argument is a usage error.
fn parse_args() -> Result<ParsedArgs, VqdError> {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| "help".to_string());
    let mut sub: Option<String> = None;
    let mut opts = HashMap::new();
    let mut key: Option<String> = None;
    for (i, a) in args.enumerate() {
        if let Some(k) = a.strip_prefix("--") {
            if let Some(prev) = key.take() {
                opts.insert(prev, "true".to_string());
            }
            key = Some(k.to_string());
        } else if let Some(k) = key.take() {
            opts.insert(k, a);
        } else if i == 0 {
            sub = Some(a);
        } else {
            return Err(VqdError::Config(format!(
                "unexpected positional argument {a:?} (flags are --key value)"
            )));
        }
    }
    if let Some(prev) = key.take() {
        opts.insert(prev, "true".to_string());
    }
    Ok((cmd, sub, opts))
}

struct Opts(HashMap<String, String>);

impl Opts {
    fn get(&self, k: &str) -> Option<String> {
        self.0.get(k).cloned()
    }

    /// A flag that must be present.
    fn require(&self, k: &str, what: &str) -> Result<String, VqdError> {
        self.get(k)
            .ok_or_else(|| VqdError::Config(format!("missing required flag --{k} <{what}>")))
    }

    /// A numeric flag with a default; malformed values are usage
    /// errors, not silent defaults.
    fn num(&self, k: &str, default: f64) -> Result<f64, VqdError> {
        match self.get(k) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| VqdError::Config(format!("--{k} expects a number, got {v:?}"))),
        }
    }

    fn label_scheme(&self) -> Result<LabelScheme, VqdError> {
        match self.get("labels").as_deref() {
            None | Some("exact") => Ok(LabelScheme::Exact),
            Some("location") => Ok(LabelScheme::Location),
            Some("existence") => Ok(LabelScheme::Existence),
            Some(other) => Err(VqdError::Config(format!(
                "--labels expects exact|location|existence, got {other:?}"
            ))),
        }
    }
}

fn read_file(path: &str) -> Result<String, VqdError> {
    std::fs::read_to_string(path).map_err(|e| VqdError::io(path, e))
}

fn write_file(path: &str, text: &str) -> Result<(), VqdError> {
    std::fs::write(path, text).map_err(|e| VqdError::io(path, e))
}

/// Parse a session-metrics file: `name=value` tokens separated by
/// newlines and/or tabs. Malformed tokens name their line.
fn metrics_from_text(text: &str) -> Result<Vec<(String, f64)>, VqdError> {
    let mut metrics = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        for kv in line.split('\t') {
            let kv = kv.trim();
            if kv.is_empty() {
                continue;
            }
            let (k, v) = kv.split_once('=').ok_or_else(|| {
                VqdError::corpus(idx + 1, format!("metric token {kv:?} is not name=value"))
            })?;
            let value: f64 = v.parse().map_err(|_| {
                VqdError::corpus(idx + 1, format!("metric {k:?} has non-numeric value {v:?}"))
            })?;
            metrics.push((k.to_string(), value));
        }
    }
    Ok(metrics)
}

/// Output paths requested by the shared observability flags
/// (`--trace`, `--stats`, `--no-obs`), written at command exit.
struct ObsOut {
    trace: Option<String>,
    stats: Option<String>,
}

/// Wire up the global recorder from the shared flags. Recording is on
/// by default (it is determinism-neutral and near-free); `--no-obs`
/// turns it off, `--trace` additionally collects spans.
fn obs_setup(opts: &Opts) -> ObsOut {
    let out = ObsOut {
        trace: opts.get("trace"),
        stats: opts.get("stats"),
    };
    if opts.get("no-obs").is_some() {
        vqd_obs::disable();
    } else if out.trace.is_some() {
        vqd_obs::enable_tracing();
    } else {
        vqd_obs::enable();
    }
    out
}

/// Write the trace / metrics files requested by the shared flags.
fn obs_finish(out: &ObsOut) -> Result<(), VqdError> {
    if let Some(path) = &out.trace {
        let spans = vqd_obs::take_spans();
        write_file(path, &vqd_obs::chrome_trace_json(&spans))?;
        eprintln!("wrote {} trace spans to {path}", spans.len());
    }
    if let Some(path) = &out.stats {
        write_file(path, &vqd_obs::snapshot().to_jsonl())?;
        eprintln!("wrote metrics snapshot to {path}");
    }
    Ok(())
}

/// The one human-readable generation summary. Rendered from the
/// metrics registry when recording is on; falls back to the plain
/// stats struct under `--no-obs`.
fn corpus_summary(stats: &vqd::core::dataset::CorpusGenStats) -> String {
    let snap = vqd_obs::snapshot();
    if vqd_obs::enabled() && !snap.is_empty() {
        let (p50, p95, p99) = snap
            .hist("core.session.wall_ms")
            .map(|h| h.percentiles())
            .unwrap_or((0.0, 0.0, 0.0));
        format!(
            "throughput: {:.1} sessions/sec, {:.2} M events/sec ({} sessions, {} events, {:.2}s wall; session p50 {p50:.0} ms, p95 {p95:.0} ms, p99 {p99:.0} ms)",
            snap.gauge("core.corpus.sessions_per_sec").unwrap_or(0.0),
            snap.gauge("core.corpus.events_per_sec").unwrap_or(0.0) / 1e6,
            snap.counter("core.corpus.sessions"),
            snap.counter("simnet.sched.dispatched"),
            snap.gauge("core.corpus.wall_s").unwrap_or(0.0),
        )
    } else {
        format!(
            "throughput: {:.1} sessions/sec, {:.2} M events/sec ({} events, {:.2}s wall; session p50 {:.0} ms, p95 {:.0} ms, p99 {:.0} ms)",
            stats.sessions_per_sec,
            stats.events_per_sec / 1e6,
            stats.events,
            stats.wall_s,
            stats.p50_session_ms,
            stats.p95_session_ms,
            stats.p99_session_ms,
        )
    }
}

/// Write a corpus in the format the path's extension names: binary
/// columnar for `.vqdc` (at the version `wopts` picks), the text
/// format otherwise.
fn write_corpus(path: &str, runs: &[LabeledRun], wopts: &VqdcWriteOptions) -> Result<(), VqdError> {
    if path.ends_with(".vqdc") {
        write_vqdc_with(runs, path, wopts)
    } else {
        write_file(path, &corpus_to_text(runs))
    }
}

/// The `--format v1|v2|v2raw` flag shared by `corpus` and `corpus
/// convert` (default: v2, compressed).
fn vqdc_format(opts: &Opts) -> Result<VqdcWriteOptions, VqdError> {
    match opts.get("format") {
        None => Ok(VqdcWriteOptions::default()),
        Some(s) => VqdcWriteOptions::parse(&s)
            .ok_or_else(|| VqdError::Config(format!("--format expects v1|v2|v2raw, got {s:?}"))),
    }
}

fn cmd_corpus(opts: &Opts) -> Result<(), VqdError> {
    let sessions = opts.num("sessions", 400.0)? as usize;
    let seed = opts.num("seed", 2015.0)? as u64;
    let out = opts.get("out").unwrap_or_else(|| "corpus.tsv".to_string());
    let farm = opts.num("farm", 0.0)? as usize;
    let procs = opts.num("procs", 0.0)? as usize;
    let wopts = vqdc_format(opts)?;
    let obs = obs_setup(opts);
    let cfg = CorpusConfig {
        sessions,
        seed,
        ..Default::default()
    };
    let catalog = Catalog::top100(42);
    // Hidden worker mode: `--worker-range start:len` makes this
    // process one shard engine of a multi-process farm — simulate the
    // contiguous spec sub-range and write it as an ordinary corpus
    // file (the parent merges the shards in range order).
    if let Some(range) = opts.get("worker-range") {
        let (start, len) = parse_worker_range(&range)?;
        let width = farm.max(1);
        let (runs, _events) = generate_corpus_range(&cfg, &catalog, start, len, width)?;
        write_corpus(&out, &runs, &wopts)?;
        eprintln!("worker wrote {out}: sessions {start}..{}", start + len);
        return obs_finish(&obs);
    }
    if procs > 1 {
        let pf = ProcFarmConfig {
            exe: std::env::current_exe().map_err(|e| VqdError::io("vqd", e))?,
            procs,
            width: farm.max(procs),
            shard_dir: None,
        };
        let fs = generate_corpus_multiproc(&cfg, &pf, std::path::Path::new(&out), &wopts)?;
        eprintln!("wrote {out}: {} runs", fs.sessions);
        eprintln!(
            "farm: {} worker processes, {:.1} sessions/sec ({} sessions, {:.2}s wall; sessions per worker {:?})",
            fs.procs, fs.sessions_per_sec, fs.sessions, fs.wall_s, fs.proc_sessions,
        );
        return obs_finish(&obs);
    }
    let (runs, summary) = if farm > 0 {
        let (runs, fs) = generate_corpus_farm(&cfg, &catalog, farm);
        let summary = format!(
            "farm: {} shards, {:.1} sessions/sec ({} sessions, {} events, {:.2}s wall; sessions per shard {:?})",
            fs.width, fs.sessions_per_sec, fs.sessions, fs.events, fs.wall_s, fs.shard_sessions,
        );
        (runs, summary)
    } else {
        let (runs, stats) = generate_corpus_with_stats(&cfg, &catalog);
        let summary = corpus_summary(&stats);
        (runs, summary)
    };
    write_corpus(&out, &runs, &wopts)?;
    let good = runs
        .iter()
        .filter(|r| r.truth.qoe == QoeClass::Good)
        .count();
    eprintln!("wrote {out}: {} runs ({good} good)", runs.len());
    eprintln!("{summary}");
    obs_finish(&obs)
}

/// Parse the hidden `--worker-range start:len` flag.
fn parse_worker_range(s: &str) -> Result<(usize, usize), VqdError> {
    let parsed = s
        .split_once(':')
        .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)));
    parsed.ok_or_else(|| {
        VqdError::Config(format!(
            "--worker-range expects start:len (two integers), got {s:?}"
        ))
    })
}

/// `vqd corpus convert`: translate a corpus between the text and
/// binary columnar formats (the direction follows the --out
/// extension). Round-tripping either way is bit-exact. Both sides
/// stream, so a larger-than-RAM corpus converts in bounded memory.
fn cmd_corpus_convert(opts: &Opts) -> Result<(), VqdError> {
    let input = opts.require("in", "file")?;
    let out = opts.require("out", "file")?;
    let fmt = |binary: bool| if binary { "binary" } else { "text" };
    let to_binary = out.ends_with(".vqdc");
    let wopts = vqdc_format(opts)?;
    let stats = convert_corpus_with(&input, &out, to_binary, &wopts)?;
    eprintln!(
        "converted {input} ({}) -> {out} ({}): {} sessions",
        fmt(stats.from_binary),
        fmt(to_binary),
        stats.sessions
    );
    Ok(())
}

fn cmd_train(opts: &Opts) -> Result<(), VqdError> {
    let corpus = opts.require("corpus", "file")?;
    let out = opts.get("out").unwrap_or_else(|| "model.vqd".to_string());
    let obs = obs_setup(opts);
    if opts.get("out-of-core").is_some() {
        return cmd_train_ooc(opts, &corpus, &out, &obs);
    }
    let runs = CorpusReader::open(&corpus)?.read_all()?;
    let data = to_dataset(&runs, opts.label_scheme()?);
    let model = Diagnoser::train(&data, &DiagnoserConfig::default());
    model.save(&out)?;
    let snap = vqd_obs::snapshot();
    match snap.hist("ml.fit.wall_ms") {
        Some(h) => eprintln!(
            "trained on {} runs, {}/{} features survived FCBF, {} tree nodes in {:.0} ms -> {out}",
            runs.len(),
            snap.counter("features.fcbf.selected"),
            snap.counter("features.fcbf.candidates"),
            snap.hist("ml.fit.nodes").map(|n| n.max()).unwrap_or(0.0),
            h.max(),
        ),
        None => eprintln!(
            "trained on {} runs, {} features selected -> {out}",
            runs.len(),
            model.selected_features().len()
        ),
    }
    obs_finish(&obs)
}

/// `vqd train --out-of-core`: stream the pipeline column by column
/// from a binary corpus. The model file is byte-identical to the
/// in-memory path over the same corpus and labels.
fn cmd_train_ooc(opts: &Opts, corpus: &str, out: &str, obs: &ObsOut) -> Result<(), VqdError> {
    if !sniff_vqdc(corpus) {
        return Err(VqdError::Config(format!(
            "--out-of-core needs a binary corpus; convert first: \
             vqd corpus convert --in {corpus} --out corpus.vqdc"
        )));
    }
    let reader = VqdcReader::open(corpus)?;
    let defaults = vqd::ml::stream_fit::StreamFitConfig::default();
    let fit = vqd::ml::stream_fit::StreamFitConfig {
        chunk_rows: (opts.num("chunk-rows", defaults.chunk_rows as f64)? as usize).max(1),
        spill_pairs: opts.num("spill-pairs", defaults.spill_pairs as f64)? as usize,
        tmp_dir: opts.get("spill-dir").map(Into::into),
    };
    let cfg = OocConfig {
        diagnoser: DiagnoserConfig::default(),
        scheme: opts.label_scheme()?,
        fit,
    };
    let (model, report) = train_out_of_core(&reader, &cfg)?;
    model.save(out)?;
    eprintln!(
        "out-of-core: trained on {} sessions, {} raw -> {} constructed -> {} selected features -> {out}",
        report.sessions, report.raw_features, report.constructed_features, report.selected_features,
    );
    eprintln!(
        "external sort: {} spill runs ({} bytes); peak gather {} pairs resident",
        report.fit.spill_runs, report.fit.spilled_bytes, report.fit.peak_gather_pairs,
    );
    obs_finish(obs)
}

fn print_diagnosis(model: &Diagnoser, dx: &Diagnosis) {
    println!("{} (confidence {:.2})", dx.label, dx.quality.confidence);
    for (c, p) in model.classes.iter().zip(&dx.dist) {
        if *p > 0.01 {
            println!("  {c:<28} {p:.3}");
        }
    }
    println!(
        "telemetry: {:.0}% of tree-relevant features present, {:.0}% of prediction weight via missing-value fallbacks",
        100.0 * dx.quality.feature_coverage,
        100.0 * dx.quality.missing_descent
    );
    if !dx.quality.silent_vps.is_empty() {
        println!(
            "silent vantage points: {}",
            dx.quality.silent_vps.join(", ")
        );
    }
    if let Some(fb) = &dx.fallback_label {
        let q = match dx.resolution {
            Resolution::Existence => "existence (Q1)",
            Resolution::Location => "location (Q2)",
            Resolution::Exact => "exact (Q3)",
        };
        println!("telemetry too sparse for an exact root cause; {q} answer: {fb}");
    }
}

/// One audit record as a JSON line: the session's verdict plus every
/// split the compiled-tree descent crossed. `Diagnoser::replay_audit`
/// reproduces the verdict from the `steps` array alone; the `feature`
/// name is resolved from the model schema for human readers (`feat`
/// stays the authoritative column index). Missing observed values
/// serialize as `null` (JSON has no NaN).
fn audit_record(session: &str, dx: &Diagnosis, features: &[String], steps: &[AuditStep]) -> String {
    use vqd_obs::json::Json;
    let steps_json = steps
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("node", Json::num(s.node as f64)),
                ("feat", Json::num(s.feat as f64)),
                (
                    "feature",
                    Json::str(
                        features
                            .get(s.feat as usize)
                            .map(String::as_str)
                            .unwrap_or("?"),
                    ),
                ),
                ("thr", Json::num(s.thr)),
                ("value", Json::num(s.value)),
                ("dir", Json::str(s.dir.name())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("session", Json::str(session)),
        ("label", Json::str(&dx.label)),
        ("class", Json::num(dx.class as f64)),
        ("resolution", Json::str(resolution_name(dx.resolution))),
        ("confidence", Json::num(dx.quality.confidence)),
        ("coverage", Json::num(dx.quality.feature_coverage)),
        ("steps", Json::Arr(steps_json)),
    ])
    .to_string()
}

fn cmd_diagnose(opts: &Opts) -> Result<(), VqdError> {
    let model = Diagnoser::load(opts.require("model", "file")?)?;
    if let Some(path) = opts.get("batch") {
        return cmd_diagnose_batch(&model, opts, &path);
    }
    let metrics = metrics_from_text(&read_file(&opts.require("metrics", "file")?)?)?;
    let dx = model.diagnose(&metrics);
    print_diagnosis(&model, &dx);
    Ok(())
}

/// `vqd diagnose --batch corpus.tsv|corpus.vqdc`: score every session
/// in a corpus file through the batched engine, one TSV result line
/// per session (order matches the input at any thread count). The
/// corpus streams through in bounded chunks — per-session results are
/// independent, so chunking never changes a line. With `--shuffle
/// <seed>` the sessions are permuted by the seeded external shuffle
/// first (still bounded memory); each session's result line is
/// identical to the unshuffled run, only the order moves.
fn cmd_diagnose_batch(model: &Diagnoser, opts: &Opts, path: &str) -> Result<(), VqdError> {
    use std::io::Write;
    let threads = opts.num("threads", 0.0)? as usize;
    let obs = obs_setup(opts);
    let out_path = opts.get("out");
    let shuffle = shuffle_opts(opts)?;
    let mut reader = CorpusReader::open(path)?;
    let mut w = open_sink(&out_path)?;
    let io_err = |e: std::io::Error| VqdError::io(out_path.as_deref().unwrap_or("<stdout>"), e);
    w.write_all(RESULT_HEADER.as_bytes()).map_err(io_err)?;
    let explain_path = opts.get("explain");
    let mut explain = match &explain_path {
        Some(p) => Some(std::io::BufWriter::new(
            std::fs::File::create(p).map_err(|e| VqdError::io(p.as_str(), e))?,
        )),
        None => None,
    };

    let mut tiers = [0usize; 3];
    let mut n = 0usize;
    let mut wall = 0.0f64;
    let mut score_chunk = |chunk: &[LabeledRun],
                           w: &mut dyn Write,
                           explain: &mut Option<std::io::BufWriter<std::fs::File>>|
     -> Result<(), VqdError> {
        let sessions: Vec<&Vec<(String, f64)>> = chunk.iter().map(|r| &r.metrics).collect();
        let t0 = std::time::Instant::now();
        let batch = model.diagnose_batch_with(
            &sessions,
            threads,
            BatchOptions {
                audit: explain.is_some(),
                ..Default::default()
            },
        );
        wall += t0.elapsed().as_secs_f64();
        let mut out = String::with_capacity(64 * chunk.len());
        for i in 0..chunk.len() {
            let dx = batch.get(i);
            let tier = match dx.resolution {
                Resolution::Exact => 0,
                Resolution::Location => 1,
                Resolution::Existence => 2,
            };
            tiers[tier] += 1;
            if let (Some(ew), Some(steps)) = (explain.as_mut(), batch.audit_path(i)) {
                let rec = audit_record(&(n + i).to_string(), &dx, model.selected_features(), steps);
                writeln!(ew, "{rec}")
                    .map_err(|e| VqdError::io(explain_path.as_deref().unwrap_or("?"), e))?;
            }
            // Shared with `vqd serve`, so streaming-vs-offline
            // equality gates compare bytes.
            out.push_str(&result_line(&(n + i).to_string(), &dx));
        }
        w.write_all(out.as_bytes()).map_err(io_err)?;
        n += chunk.len();
        Ok(())
    };
    if let Some((seed, budget)) = shuffle {
        // Pass 1: spool every session's text line through the
        // external shuffle. Pass 2: re-parse and score in shuffled
        // order, chunked exactly like the straight path.
        let mut sh = ExternalShuffle::new(seed, budget, None);
        loop {
            let chunk = reader.next_chunk(DEFAULT_CHUNK_SESSIONS)?;
            if chunk.is_empty() {
                break;
            }
            for run in &chunk {
                let line = corpus_to_text(std::slice::from_ref(run));
                sh.push(line.trim_end_matches('\n').as_bytes())?;
            }
        }
        let mut drain = sh.finish()?;
        let mut pending: Vec<LabeledRun> = Vec::with_capacity(DEFAULT_CHUNK_SESSIONS);
        let mut parsed = 0usize;
        loop {
            let rec = drain.next_record()?;
            if let Some(rec) = &rec {
                let line = String::from_utf8_lossy(rec);
                parsed += 1;
                pending.push(parse_corpus_line(parsed, &line)?);
            }
            if pending.len() >= DEFAULT_CHUNK_SESSIONS || (rec.is_none() && !pending.is_empty()) {
                score_chunk(&pending, &mut *w, &mut explain)?;
                pending.clear();
            }
            if rec.is_none() {
                break;
            }
        }
    } else {
        loop {
            let chunk = reader.next_chunk(DEFAULT_CHUNK_SESSIONS)?;
            if chunk.is_empty() {
                break;
            }
            score_chunk(&chunk, &mut *w, &mut explain)?;
        }
    }
    w.flush().map_err(io_err)?;
    if let Some(ew) = explain.as_mut() {
        ew.flush()
            .map_err(|e| VqdError::io(explain_path.as_deref().unwrap_or("?"), e))?;
    }
    if let Some(p) = &out_path {
        eprintln!("wrote {n} diagnoses to {p}");
    }
    if let Some(p) = &explain_path {
        eprintln!("wrote {n} audit records to {p}");
    }
    eprintln!(
        "diagnosed {n} sessions in {:.1} ms ({:.0} sessions/sec); resolution: {} exact, {} location, {} existence",
        wall * 1e3,
        n as f64 / wall.max(1e-9),
        tiers[0],
        tiers[1],
        tiers[2],
    );
    obs_finish(&obs)
}

/// Line-oriented output sink for the streaming commands: a buffered
/// file when `--out` is given, stdout otherwise.
fn open_sink(out: &Option<String>) -> Result<Box<dyn std::io::Write>, VqdError> {
    Ok(match out {
        Some(p) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(p).map_err(|e| VqdError::io(p.as_str(), e))?,
        )),
        None => Box::new(std::io::stdout().lock()),
    })
}

/// The `--shuffle <seed>` flag with its optional `--shuffle-mem N`
/// budget (records buffered in memory before the external shuffle
/// spills a sorted run — wall time and disk only, never the order).
fn shuffle_opts(opts: &Opts) -> Result<Option<(u64, usize)>, VqdError> {
    let Some(seed) = opts.get("shuffle") else {
        return Ok(None);
    };
    let seed: u64 = seed
        .parse()
        .map_err(|_| VqdError::Config(format!("--shuffle expects a seed, got {seed:?}")))?;
    let budget = opts.num("shuffle-mem", DEFAULT_SHUFFLE_BUDGET as f64)? as usize;
    Ok(Some((seed, budget)))
}

/// `vqd events`: explode a corpus into the JSONL probe-event stream a
/// live deployment would have emitted, optionally shuffled (the
/// daemon's determinism makes the shuffle invisible in its output).
/// Both paths stream in bounded memory: `--shuffle` runs a seeded
/// external key-sort shuffle whose order depends only on the seed and
/// the event count — never on the `--shuffle-mem` budget.
fn cmd_events(opts: &Opts) -> Result<(), VqdError> {
    use std::io::Write;
    let path = opts.require("corpus", "file")?;
    let shuffle = shuffle_opts(opts)?;
    let ts_step = match opts.get("ts") {
        Some(_) => Some(opts.num("ts", 1.0)?),
        None => None,
    };
    let out_path = opts.get("out");
    let mut reader = CorpusReader::open(&path)?;
    let mut w = open_sink(&out_path)?;
    let io_err = |e: std::io::Error| VqdError::io(out_path.as_deref().unwrap_or("<stdout>"), e);
    let mut n_events = 0usize;
    let mut n_sessions = 0usize;
    if let Some((seed, budget)) = shuffle {
        let mut sh = ExternalShuffle::new(seed, budget, None);
        loop {
            let chunk = reader.next_chunk(DEFAULT_CHUNK_SESSIONS)?;
            if chunk.is_empty() {
                break;
            }
            let events = corpus_to_events_from(&chunk, n_sessions);
            for ev in &events {
                sh.push(ev.to_jsonl().as_bytes())?;
            }
            n_sessions += chunk.len();
        }
        let mut drain = sh.finish()?;
        while let Some(rec) = drain.next_record()? {
            let line = String::from_utf8_lossy(&rec);
            if let Some(step) = ts_step {
                // Arrival timestamps follow the *shuffled* order, so
                // re-stamp each event as it is emitted.
                let mut ev = ProbeEvent::parse(&line).map_err(|source| VqdError::Event {
                    line: n_events + 1,
                    source,
                })?;
                ev.ts = Some(n_events as f64 * step);
                writeln!(w, "{}", ev.to_jsonl()).map_err(io_err)?;
            } else {
                w.write_all(&rec).map_err(io_err)?;
                w.write_all(b"\n").map_err(io_err)?;
            }
            n_events += 1;
        }
    } else {
        loop {
            let chunk = reader.next_chunk(DEFAULT_CHUNK_SESSIONS)?;
            if chunk.is_empty() {
                break;
            }
            let mut events = corpus_to_events_from(&chunk, n_sessions);
            if let Some(step) = ts_step {
                // Synthetic arrival timestamps in emission order, for
                // exercising --lateness watermarks.
                for ev in events.iter_mut() {
                    ev.ts = Some(n_events as f64 * step);
                    n_events += 1;
                }
            } else {
                n_events += events.len();
            }
            n_sessions += chunk.len();
            for ev in &events {
                writeln!(w, "{}", ev.to_jsonl()).map_err(io_err)?;
            }
        }
    }
    w.flush().map_err(io_err)?;
    if let Some(p) = &out_path {
        eprintln!("wrote {n_events} events ({n_sessions} sessions) to {p}");
    }
    Ok(())
}

/// Set by the SIGINT/SIGTERM handler; every ingest loop polls it and
/// falls through to the graceful-shutdown path (drain shards, flush
/// open sessions, final snapshot, exit 0).
static STOP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn stop_requested() -> bool {
    STOP.load(std::sync::atomic::Ordering::SeqCst)
}

/// Route SIGINT and SIGTERM to the `STOP` flag. Raw `signal(2)` FFI —
/// storing to an atomic is async-signal-safe, and the handler does
/// nothing else. No-op off Unix.
#[cfg(unix)]
fn install_stop_handler() {
    extern "C" fn on_stop(_sig: i32) {
        STOP.store(true, std::sync::atomic::Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_stop as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_stop as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_stop_handler() {}

/// `vqd serve`: the streaming diagnosis daemon. Reads JSONL probe
/// events from stdin or a TCP socket, reassembles sessions across
/// shard workers, and emits one diagnosis TSV line per flushed
/// session — bit-identical per session to `diagnose --batch`. With
/// `--journal` every accepted event hits a write-ahead log first and
/// `--recover` resumes after a crash with exactly-once output.
fn cmd_serve(opts: &Opts) -> Result<(), VqdError> {
    use std::io::Write;
    use std::path::Path;
    use std::sync::atomic::Ordering;
    use std::sync::{Arc, Mutex, PoisonError};

    let model_path = opts.require("model", "file")?;
    let obs = obs_setup(opts);

    // The ops listener comes up before anything heavy happens so
    // orchestration can watch /readyz flip leg by leg: all three start
    // false, and the daemon raises each as the piece becomes real.
    let readiness = Arc::new(Readiness::default());
    let ops = match opts.get("metrics-addr") {
        Some(addr) => {
            let srv = OpsServer::bind(
                &addr,
                Arc::clone(&readiness),
                std::time::Duration::from_millis(250),
            )
            .map_err(|e| VqdError::io(addr.as_str(), e))?;
            eprintln!("ops listener on http://{}/metrics", srv.local_addr());
            Some(srv)
        }
        None => None,
    };
    // Test/CI hook: hold the not-ready window open long enough for an
    // external probe to observe /readyz answering 503.
    if let Some(ms) = std::env::var("VQD_SERVE_MODEL_LOAD_DELAY_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
    let model = Arc::new(Diagnoser::load(model_path)?);
    readiness.model_loaded.store(true, Ordering::SeqCst);

    let shed = if opts.get("no-shed").is_some() {
        None
    } else {
        Some((opts.num("shed-high", 1_048_576.0)? as usize).max(1))
    };
    // Per-diagnosis decision audit: one JSON line per flushed session,
    // appended (a recovering daemon must not clobber earlier records).
    let audit_path = opts.get("audit-log");
    let audit_sink: Option<Arc<Mutex<std::io::BufWriter<std::fs::File>>>> = match &audit_path {
        Some(p) => {
            let f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(p)
                .map_err(|e| VqdError::io(p.as_str(), e))?;
            Some(Arc::new(Mutex::new(std::io::BufWriter::new(f))))
        }
        None => None,
    };
    // Drift monitoring runs whenever the model carries a training-time
    // stamp (v2 format); --no-drift opts out, v1 models have nothing
    // to compare against.
    let drift = if opts.get("no-drift").is_none() {
        match model.drift_stamp() {
            Some(stamp) => Some(Arc::new(Mutex::new(DriftMonitor::new(stamp.clone())))),
            None => {
                eprintln!("note: model has no drift stamp (v1 format); drift monitoring off");
                None
            }
        }
    } else {
        None
    };
    let cfg =
        ServeConfig {
            shards: (opts.num("shards", 4.0)? as usize).max(1),
            queue_capacity: (opts.num("queue", 1024.0)? as usize).max(1),
            flush_batch: (opts.num("flush-batch", 32.0)? as usize).max(1),
            lateness: match opts.get("lateness") {
                None => None,
                Some(v) => Some(v.parse().map_err(|_| {
                    VqdError::Config(format!("--lateness expects seconds, got {v:?}"))
                })?),
            },
            max_sessions: (opts.num("max-sessions", 4096.0)? as usize).max(1),
            shed,
            audit: audit_sink.is_some(),
            drift: drift.clone(),
        };
    let strict = opts.get("strict").is_some();
    let out_path = opts.get("out");
    let to_stdout = out_path.is_none();

    // ---- Durability wiring. --------------------------------------
    let recovering = opts.get("recover").is_some();
    let journal = match opts.get("journal") {
        Some(dir) => {
            let mut spec = JournalSpec::new(dir);
            spec.flush_every = (opts.num("journal-flush", 256.0)? as u64).max(1);
            Some(spec)
        }
        None => {
            if recovering {
                return Err(VqdError::Config(
                    "--recover needs --journal <dir> to replay from".to_string(),
                ));
            }
            None
        }
    };
    let snapshots = match opts.get("snapshot") {
        Some(dir) => {
            let mut spec = SnapshotSpec::new(dir, opts.num("snapshot-every", 512.0)? as u64);
            spec.keep = (opts.num("snapshot-keep", 2.0)? as usize).max(1);
            Some(spec)
        }
        None => None,
    };
    let durability = Durability { journal, snapshots };
    let journaling = durability.journal.is_some();
    if !journaling {
        // Nothing to open: daemons without durability are "journal
        // ready" by definition.
        readiness.journal_writable.store(true, Ordering::SeqCst);
    }

    let recovered = if recovering {
        let emitted = match &out_path {
            Some(p) => {
                let (emitted, prep) = prepare_output(Path::new(p))?;
                if prep.truncated_bytes > 0 {
                    eprintln!(
                        "recover: truncated {} torn byte(s) off {p}",
                        prep.truncated_bytes
                    );
                }
                eprintln!(
                    "recover: {} session(s) already answered in {p}",
                    prep.emitted
                );
                emitted
            }
            None => {
                eprintln!(
                    "warning: --recover without --out cannot suppress re-emission; \
                     replayed sessions will print again"
                );
                std::collections::HashSet::new()
            }
        };
        let r = recover_state(&durability, emitted)?;
        eprintln!(
            "recover: snapshot seq {} ({}), replaying {} journal record(s); next seq {}",
            r.snapshot_seq,
            r.snapshot_path
                .as_ref()
                .map(|p| p.display().to_string())
                .unwrap_or_else(|| "none".to_string()),
            r.replay_len(),
            r.next_seq,
        );
        Some(r)
    } else {
        None
    };

    // Results leave through the sink on worker threads: straight to
    // stdout in daemon mode (line-flushed, results appear as sessions
    // resolve); into an append-mode file written line by line when
    // journaling (a crash must not lose answered sessions); or into a
    // buffer written once at exit for the plain --out case.
    enum Out {
        Stdout,
        Durable(Mutex<std::fs::File>),
        Buffered(Mutex<String>),
    }
    let out: Arc<Out> = Arc::new(match &out_path {
        None => Out::Stdout,
        Some(p) if journaling => {
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(p)
                .map_err(|e| VqdError::io(p, e))?;
            let fresh = f.metadata().map_err(|e| VqdError::io(p, e))?.len() == 0;
            if fresh {
                f.write_all(RESULT_HEADER.as_bytes())
                    .map_err(|e| VqdError::io(p, e))?;
            }
            Out::Durable(Mutex::new(f))
        }
        Some(_) => Out::Buffered(Mutex::new(String::from(RESULT_HEADER))),
    });
    if to_stdout {
        let mut so = std::io::stdout().lock();
        let _ = so.write_all(RESULT_HEADER.as_bytes());
        let _ = so.flush();
    }
    let sink_out = Arc::clone(&out);
    let sink_audit = audit_sink.clone();
    let feat_names: Arc<Vec<String>> = Arc::new(model.selected_features().to_vec());
    let sink = move |fs: FlushedSession| {
        if let (Some(sink), Some(steps)) = (&sink_audit, fs.audit.as_deref()) {
            let rec = audit_record(&fs.session, &fs.diagnosis, &feat_names, steps);
            let mut w = sink.lock().unwrap_or_else(PoisonError::into_inner);
            if let Err(e) = writeln!(w, "{rec}") {
                eprintln!("error: audit write failed: {e}");
            }
        }
        let line = result_line(&fs.session, &fs.diagnosis);
        match &*sink_out {
            Out::Stdout => {
                let mut so = std::io::stdout().lock();
                let _ = so.write_all(line.as_bytes());
                let _ = so.flush();
            }
            // One write(2) per line: the answer is in the kernel
            // before the tombstone can reach a snapshot, which is
            // what exactly-once recovery leans on.
            Out::Durable(f) => {
                let mut f = f.lock().unwrap_or_else(PoisonError::into_inner);
                if let Err(e) = f.write_all(line.as_bytes()) {
                    eprintln!("error: result write failed: {e}");
                }
            }
            Out::Buffered(buf) => {
                buf.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push_str(&line);
            }
        }
    };
    let mut server = StreamServer::start(model, cfg, durability, recovered, sink)?;
    readiness.shards_running.store(true, Ordering::SeqCst);
    if journaling {
        // `start` opened (or replayed into) the write-ahead log; the
        // journal leg is only raised once that succeeded.
        readiness.journal_writable.store(true, Ordering::SeqCst);
    }

    install_stop_handler();
    if opts.get("stdin").is_some() {
        ingest_stdin(&mut server, strict)?;
    } else if let Some(addr) = opts.get("listen") {
        ingest_socket(&mut server, &addr, strict)?;
    } else {
        return Err(VqdError::Config(
            "serve needs an input: --stdin or --listen <addr:port>".to_string(),
        ));
    }
    if stop_requested() {
        eprintln!("signal received: draining shards and flushing open sessions...");
    }

    let next_seq = server.next_seq();
    let report = server.finish()?;
    match (&*out, &out_path) {
        (Out::Buffered(buf), Some(p)) => {
            write_file(p, &buf.lock().unwrap_or_else(PoisonError::into_inner))?;
            eprintln!("wrote {} diagnoses to {p}", report.sessions);
        }
        (Out::Durable(_), Some(p)) => {
            eprintln!(
                "appended {} diagnoses to {p} ({} suppressed as already answered)",
                report.sessions - report.suppressed,
                report.suppressed
            );
        }
        _ => {}
    }
    let (p50, _p95, p99) = report.flush_ms.percentiles();
    eprintln!(
        "served {} events ({} malformed dropped, {} duplicates): {} sessions ({} complete, {} expired, {} evicted, {} at shutdown); resolution: {} exact, {} location, {} existence; {} flushes, flush p50 {p50:.2} ms p99 {p99:.2} ms",
        report.events,
        report.parse_errors,
        report.duplicates,
        report.sessions,
        report.complete,
        report.expired,
        report.evicted,
        report.shutdown,
        report.tiers[0],
        report.tiers[1],
        report.tiers[2],
        report.flush_batches,
    );
    if journaling {
        eprintln!(
            "durability: journal next seq {next_seq}, {} replayed, {} snapshot(s) written, {} samples shed across {} sessions",
            report.replayed, report.snapshots, report.shed_samples, report.shed_sessions,
        );
    }
    // Graceful-shutdown observability order: flush the audit sink
    // first (every record durable), evaluate any remaining drift
    // window, then write the final metrics snapshot so it covers both,
    // and only then stop answering scrapes.
    if let Some(sink) = &audit_sink {
        let mut w = sink.lock().unwrap_or_else(PoisonError::into_inner);
        if let Err(e) = w.flush() {
            eprintln!("error: audit flush failed: {e}");
        } else if let Some(p) = &audit_path {
            eprintln!("audit: decision paths appended to {p}");
        }
    }
    if let Some(mon) = &drift {
        let reading = mon
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .evaluate();
        eprintln!(
            "drift: {} rows windowed, max feature PSI {:.3}, label mix {:.3}, {} alert(s)",
            reading.rows,
            reading.psi.iter().map(|(_, v)| *v).fold(0.0f64, f64::max),
            reading.label_mix,
            reading.alerts.len(),
        );
    }
    let finished = obs_finish(&obs);
    if let Some(ops) = ops {
        ops.shutdown();
    }
    finished
}

/// A line fished out of a byte stream by [`LineAccumulator`].
enum PulledLine {
    /// A complete line (no terminator, `\r` stripped).
    Line(String),
    /// A line that blew past [`vqd::probes::event::MAX_EVENT_LINE`];
    /// the payload is discarded unparsed, only its length survives.
    TooLong(usize),
}

/// Incremental capped line splitter. Feeding chunks never buffers
/// more than `MAX_EVENT_LINE` bytes per line: once a line exceeds the
/// cap the accumulator switches to skip mode and counts the overflow
/// instead of storing it — a hostile or corrupt sender cannot balloon
/// daemon memory, matching the parse-time cap in `ProbeEvent::parse`.
#[derive(Default)]
struct LineAccumulator {
    buf: Vec<u8>,
    /// Bytes skipped of an over-long line still waiting for `\n`.
    skipping: Option<usize>,
}

impl LineAccumulator {
    /// Feed a chunk; append each completed line to `lines`.
    fn push(&mut self, chunk: &[u8], lines: &mut Vec<PulledLine>) {
        const CAP: usize = vqd::probes::event::MAX_EVENT_LINE;
        for &b in chunk {
            if let Some(skipped) = &mut self.skipping {
                if b == b'\n' {
                    let total = *skipped + self.buf.len();
                    self.buf.clear();
                    self.skipping = None;
                    lines.push(PulledLine::TooLong(total));
                } else {
                    *skipped += 1;
                }
                continue;
            }
            if b == b'\n' {
                if self.buf.last() == Some(&b'\r') {
                    self.buf.pop();
                }
                let line = String::from_utf8_lossy(&self.buf).into_owned();
                self.buf.clear();
                lines.push(PulledLine::Line(line));
            } else {
                self.buf.push(b);
                if self.buf.len() > CAP {
                    self.skipping = Some(0);
                }
            }
        }
    }

    /// EOF: whatever is buffered is the (unterminated) final line.
    fn finish(&mut self, lines: &mut Vec<PulledLine>) {
        if let Some(skipped) = self.skipping.take() {
            lines.push(PulledLine::TooLong(skipped + self.buf.len()));
            self.buf.clear();
        } else if !self.buf.is_empty() {
            let line = String::from_utf8_lossy(&self.buf).into_owned();
            self.buf.clear();
            lines.push(PulledLine::Line(line));
        }
    }
}

/// Hand one pulled line to the daemon. Malformed and over-long lines
/// are dropped with a warning (the daemon must outlive bad input)
/// unless `--strict`; durability failures (journal write, disk) are
/// always fatal — dropping an accepted event would break the
/// exactly-once recovery contract.
fn push_pulled(
    server: &mut StreamServer,
    lineno: usize,
    pulled: PulledLine,
    strict: bool,
) -> Result<(), VqdError> {
    let verdict = match pulled {
        PulledLine::Line(l) => server.push_line(lineno, &l),
        PulledLine::TooLong(n) => Err(VqdError::Config(format!(
            "line {lineno}: event line of {n} bytes exceeds the {} byte cap",
            vqd::probes::event::MAX_EVENT_LINE
        ))),
    };
    match verdict {
        Ok(()) => Ok(()),
        Err(e @ (VqdError::Event { .. } | VqdError::Config(_))) => {
            if strict {
                return Err(e);
            }
            eprintln!("warning: {e} (line dropped)");
            Ok(())
        }
        Err(fatal) => Err(fatal),
    }
}

/// True for accept/read errors worth retrying with backoff: EINTR,
/// connection resets/aborts, and fd exhaustion (EMFILE/ENFILE) which
/// clears as connections close.
fn transient_net_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
    ) || matches!(e.raw_os_error(), Some(23) | Some(24)) // ENFILE | EMFILE
}

/// Feed stdin lines to the daemon. A reader thread pulls capped lines
/// so the main loop can poll the STOP flag and drain gracefully even
/// while stdin is idle.
fn ingest_stdin(server: &mut StreamServer, strict: bool) -> Result<(), VqdError> {
    use std::io::Read;
    use std::sync::mpsc;
    use std::time::Duration;

    let (tx, rx) = mpsc::sync_channel::<std::io::Result<Vec<PulledLine>>>(64);
    std::thread::spawn(move || {
        let mut stdin = std::io::stdin().lock();
        let mut acc = LineAccumulator::default();
        let mut chunk = [0u8; 8192];
        loop {
            match stdin.read(&mut chunk) {
                Ok(0) => {
                    let mut lines = Vec::new();
                    acc.finish(&mut lines);
                    let _ = tx.send(Ok(lines));
                    break;
                }
                Ok(n) => {
                    let mut lines = Vec::new();
                    acc.push(&chunk[..n], &mut lines);
                    if !lines.is_empty() && tx.send(Ok(lines)).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    let _ = tx.send(Err(e));
                    break;
                }
            }
        }
    });

    let mut lineno = 0usize;
    loop {
        if stop_requested() {
            return Ok(());
        }
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(Ok(lines)) => {
                for pulled in lines {
                    lineno += 1;
                    push_pulled(server, lineno, pulled, strict)?;
                }
            }
            Ok(Err(e)) => return Err(VqdError::io("<stdin>", e)),
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

/// Feed the daemon from a TCP socket, one sequential connection at a
/// time; the literal line `shutdown` stops the daemon. Transient
/// accept/read errors retry with doubling backoff (capped count,
/// `serve.ingest.retries` counter); the listener polls non-blocking
/// so SIGINT/SIGTERM drain promptly.
fn ingest_socket(server: &mut StreamServer, addr: &str, strict: bool) -> Result<(), VqdError> {
    use std::io::Read;
    use std::time::Duration;

    const MAX_RETRIES: u32 = 8;
    let listener = std::net::TcpListener::bind(addr).map_err(|e| VqdError::io(addr, e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| VqdError::io(addr, e))?;
    eprintln!("listening on {addr}; send the line \"shutdown\" to stop");

    let mut lineno = 0usize;
    let mut retries = 0u32;
    let mut backoff = Duration::from_millis(10);
    let note_retry = |retries: &mut u32, backoff: &mut Duration, what: &str, e: &std::io::Error| {
        *retries += 1;
        if vqd_obs::enabled() {
            vqd_obs::recorder().counter_add("serve.ingest.retries", 1);
        }
        eprintln!("warning: {what} failed ({e}); retry {retries}/{MAX_RETRIES} in {backoff:?}");
        std::thread::sleep(*backoff);
        *backoff = (*backoff * 2).min(Duration::from_secs(1));
    };

    'daemon: loop {
        if stop_requested() {
            break;
        }
        let conn = match listener.accept() {
            Ok((conn, _peer)) => {
                retries = 0;
                backoff = Duration::from_millis(10);
                conn
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
                continue;
            }
            Err(e) if transient_net_error(&e) => {
                if retries >= MAX_RETRIES {
                    return Err(VqdError::io(addr, e));
                }
                note_retry(&mut retries, &mut backoff, "accept", &e);
                continue;
            }
            Err(e) => return Err(VqdError::io(addr, e)),
        };
        // Blocking reads with a timeout: the loop keeps polling STOP
        // while the sender is idle, and a partial line survives in
        // the accumulator across timeouts.
        conn.set_nonblocking(false)
            .map_err(|e| VqdError::io(addr, e))?;
        conn.set_read_timeout(Some(Duration::from_millis(100)))
            .map_err(|e| VqdError::io(addr, e))?;
        let mut conn = conn;
        let mut acc = LineAccumulator::default();
        let mut chunk = [0u8; 8192];
        loop {
            if stop_requested() {
                break 'daemon;
            }
            let mut lines = Vec::new();
            let mut eof = false;
            match conn.read(&mut chunk) {
                Ok(0) => {
                    acc.finish(&mut lines);
                    eof = true;
                }
                Ok(n) => {
                    retries = 0;
                    backoff = Duration::from_millis(10);
                    acc.push(&chunk[..n], &mut lines);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    continue;
                }
                Err(e) if transient_net_error(&e) => {
                    if retries >= MAX_RETRIES {
                        return Err(VqdError::io(addr, e));
                    }
                    note_retry(&mut retries, &mut backoff, "read", &e);
                    continue;
                }
                Err(e) => {
                    eprintln!("warning: connection read failed: {e}; dropping connection");
                    break;
                }
            }
            for pulled in lines {
                if matches!(&pulled, PulledLine::Line(l) if l.trim() == "shutdown") {
                    break 'daemon;
                }
                lineno += 1;
                push_pulled(server, lineno, pulled, strict)?;
            }
            if eof {
                break;
            }
        }
    }
    Ok(())
}

/// `vqd recover`: read-only inspection of a crashed daemon's journal,
/// snapshots and output file — what a `serve --recover` would do,
/// without doing it. `--next-seq` prints only the sender's resume
/// point, for scripting (`RESUME=$(vqd recover ... --next-seq)`).
fn cmd_recover(opts: &Opts) -> Result<(), VqdError> {
    use std::path::Path;
    let journal = opts.require("journal", "dir")?;
    let snapshot = opts.get("snapshot");
    let out = opts.get("out");
    let info = inspect_recovery(
        Path::new(&journal),
        snapshot.as_deref().map(Path::new),
        out.as_deref().map(Path::new),
    )?;
    if opts.get("next-seq").is_some() {
        println!("{}", info.next_seq);
        return Ok(());
    }
    println!(
        "journal:  {} segment(s), seq [{}, {}), {} torn byte(s) at the tail",
        info.segments, info.first_seq, info.next_seq, info.torn_bytes,
    );
    match &info.snapshot_path {
        Some(p) => println!(
            "snapshot: {} (seq {}, {} in-flight session(s), {} tombstone(s))",
            p.display(),
            info.snapshot_seq,
            info.snapshot_sessions,
            info.snapshot_tombstones,
        ),
        None => println!("snapshot: none"),
    }
    if out.is_some() {
        println!(
            "output:   {} session(s) already answered, {} torn byte(s)",
            info.emitted, info.output_torn_bytes,
        );
    }
    println!(
        "recovery would replay {} journal record(s); senders resume from seq {}",
        info.replay, info.next_seq,
    );
    Ok(())
}

fn cmd_simulate(opts: &Opts) -> Result<(), VqdError> {
    let kind = match opts.get("fault") {
        None => FaultKind::None,
        Some(f) if f == FaultKind::None.name() => FaultKind::None,
        Some(f) => FaultKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == f)
            .ok_or_else(|| {
                let names: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
                VqdError::Config(format!(
                    "--fault expects one of none, {}; got {f:?}",
                    names.join(", ")
                ))
            })?,
    };
    let spec = SessionSpec {
        seed: opts.num("seed", 7.0)? as u64,
        fault: FaultPlan {
            kind,
            intensity: opts.num("intensity", 0.8)?,
        },
        background: opts.num("background", 0.4)?,
        wan: WanProfile::Dsl,
    };
    let session = run_controlled_session(&spec, &Catalog::top100(42));
    println!(
        "session: induced={} qoe={:?} stalls={} startup={:?}",
        kind.name(),
        session.truth.qoe,
        session.qoe.stalls.len(),
        session.qoe.startup_delay_s()
    );
    if let Some(mpath) = opts.get("model") {
        let model = Diagnoser::load(mpath)?;
        let dx = model.diagnose(&session.metrics);
        print_diagnosis(&model, &dx);
    }
    if let Some(out) = opts.get("out") {
        let mut s = String::new();
        for (n, v) in &session.metrics {
            s.push_str(&format!("{n}={v:?}\n"));
        }
        write_file(&out, &s)?;
        eprintln!("wrote session metrics to {out}");
    }
    Ok(())
}

fn cmd_inspect(opts: &Opts) -> Result<(), VqdError> {
    let model = Diagnoser::load(opts.require("model", "file")?)?;
    println!("classes: {}", model.classes.join(", "));
    println!("features ({}):", model.selected_features().len());
    for f in model.selected_features() {
        println!("  {f}");
    }
    println!(
        "\ndecision tree ({} nodes, depth {}):",
        model.tree().size(),
        model.tree().depth()
    );
    print!("{}", model.tree().to_text());
    Ok(())
}

fn cmd_robustness(opts: &Opts) -> Result<(), VqdError> {
    let scheme = opts.label_scheme()?;
    let seed = opts.num("seed", 7.0)? as u64;
    let threads = opts.num("threads", 0.0)? as usize;
    let obs = obs_setup(opts);

    let kinds: Vec<DegradeKind> = match opts.get("kinds") {
        None => DegradeKind::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(|k| {
                DegradeKind::from_name(k.trim()).ok_or_else(|| {
                    let names: Vec<&str> = DegradeKind::ALL.iter().map(|k| k.name()).collect();
                    VqdError::Config(format!(
                        "--kinds: unknown degradation {k:?} (expected {})",
                        names.join(", ")
                    ))
                })
            })
            .collect::<Result<_, _>>()?,
    };
    let intensities: Vec<f64> = match opts.get("intensities") {
        None => vec![0.0, 0.25, 0.5, 0.75, 1.0],
        Some(list) => list
            .split(',')
            .map(|v| {
                v.trim()
                    .parse()
                    .map_err(|_| VqdError::Config(format!("--intensities: {v:?} is not a number")))
            })
            .collect::<Result<_, _>>()?,
    };

    let train_runs = corpus_from_text(&read_file(&opts.require("corpus", "file")?)?)?;
    let model = match opts.get("model") {
        Some(mpath) => Diagnoser::load(mpath)?,
        None => {
            eprintln!("training on {} runs...", train_runs.len());
            Diagnoser::train(
                &to_dataset(&train_runs, scheme),
                &DiagnoserConfig::default(),
            )
        }
    };
    let test_runs = match opts.get("test") {
        Some(t) => corpus_from_text(&read_file(&t)?)?,
        None => {
            eprintln!("note: no --test corpus; evaluating on the training corpus (resubstitution)");
            train_runs
        }
    };

    eprintln!(
        "sweeping {} kinds x {} intensities over {} sessions...",
        kinds.len(),
        intensities.len(),
        test_runs.len()
    );
    let cells = sweep(
        &model,
        &test_runs,
        scheme,
        &kinds,
        &intensities,
        seed,
        threads,
    );
    let baseline = majority_baseline(&test_runs, scheme);
    print!("{}", vqd::core::robustness::report(&cells, baseline));
    obs_finish(&obs)
}

/// Render an existing JSONL metrics snapshot as a table.
fn render_metrics_file(path: &str) -> Result<(), VqdError> {
    use vqd_obs::json::Json;
    let text = read_file(path)?;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = Json::parse(line)
            .map_err(|e| VqdError::corpus(idx + 1, format!("bad metrics line: {e}")))?;
        let field = |k: &str| obj.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
        let kind = obj.get("kind").and_then(Json::as_str).unwrap_or("?");
        let name = obj.get("name").and_then(Json::as_str).unwrap_or("?");
        match kind {
            "hist" => println!(
                "hist     {name:<44} n={} mean={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
                field("count"),
                field("mean"),
                field("p50"),
                field("p95"),
                field("p99"),
                field("max"),
            ),
            _ => println!("{kind:<8} {name:<44} {}", field("value")),
        }
    }
    Ok(())
}

/// `vqd stats`: with `--metrics` render a snapshot file, with
/// `--trace` validate a trace file; otherwise self-profile a small
/// corpus + train + diagnose pipeline and print the live registry.
fn cmd_stats(opts: &Opts) -> Result<(), VqdError> {
    if let Some(path) = opts.get("metrics") {
        return render_metrics_file(&path);
    }
    if let Some(path) = opts.get("trace") {
        let n = vqd_obs::validate_trace(&read_file(&path)?)
            .map_err(|e| VqdError::corpus(0, format!("{path}: {e}")))?;
        println!("{path}: valid Chrome trace, {n} events");
        return Ok(());
    }
    let sessions = opts.num("sessions", 50.0)? as usize;
    let seed = opts.num("seed", 2015.0)? as u64;
    vqd_obs::enable();
    let cfg = CorpusConfig {
        sessions,
        seed,
        ..Default::default()
    };
    let (runs, _stats) = generate_corpus_with_stats(&cfg, &Catalog::top100(42));
    let model = Diagnoser::train(
        &to_dataset(&runs, LabelScheme::Exact),
        &DiagnoserConfig::default(),
    );
    for r in &runs {
        let _ = model.diagnose(&r.metrics);
    }
    print!("{}", vqd_obs::snapshot().render_text());
    Ok(())
}

fn main() {
    let code = match parse_args() {
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            2
        }
        Ok((cmd, sub, opts)) => {
            let opts = Opts(opts);
            let result = match (cmd.as_str(), sub.as_deref()) {
                ("corpus", Some("convert")) => cmd_corpus_convert(&opts),
                (c, Some(s)) => Err(VqdError::Config(format!(
                    "unknown subcommand {s:?} for {c:?} (did you mean corpus convert?)"
                ))),
                _ => match cmd.as_str() {
                    "corpus" => cmd_corpus(&opts),
                    "train" => cmd_train(&opts),
                    "diagnose" => cmd_diagnose(&opts),
                    "events" => cmd_events(&opts),
                    "serve" => cmd_serve(&opts),
                    "recover" => cmd_recover(&opts),
                    "simulate" => cmd_simulate(&opts),
                    "inspect" => cmd_inspect(&opts),
                    "robustness" => cmd_robustness(&opts),
                    "stats" => cmd_stats(&opts),
                    "help" | "--help" | "-h" => {
                        println!("{USAGE}");
                        Ok(())
                    }
                    other => {
                        eprintln!("error: unknown command {other:?}\n\n{USAGE}");
                        std::process::exit(2);
                    }
                },
            };
            match result {
                Ok(()) => 0,
                Err(e @ VqdError::Config(_)) => {
                    eprintln!("error: {e}\n\n{USAGE}");
                    2
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            }
        }
    };
    std::process::exit(code);
}
