//! `vqd` — command-line front end for the diagnosis framework.
//!
//! ```text
//! vqd corpus   --sessions 600 --seed 2015 --out corpus.tsv
//! vqd train    --corpus corpus.tsv --labels exact --out model.vqd
//! vqd diagnose --model model.vqd --metrics session.tsv
//! vqd simulate --fault low_rssi --intensity 0.9 --model model.vqd
//! vqd inspect  --model model.vqd
//! ```
//!
//! Corpus files use the same tab-separated format as the bench cache
//! (`fault\tqoe\tname=value\t…` per line); metrics files are
//! `name=value` per line or tab-separated on one line.

use std::collections::HashMap;

use vqd::prelude::*;
use vqd_core::dataset::LabeledRun;

fn parse_args() -> (String, HashMap<String, String>) {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| "help".to_string());
    let mut opts = HashMap::new();
    let mut key: Option<String> = None;
    for a in args {
        if let Some(k) = a.strip_prefix("--") {
            if let Some(prev) = key.take() {
                opts.insert(prev, "true".to_string());
            }
            key = Some(k.to_string());
        } else if let Some(k) = key.take() {
            opts.insert(k, a);
        }
    }
    if let Some(prev) = key.take() {
        opts.insert(prev, "true".to_string());
    }
    (cmd, opts)
}

fn runs_to_text(runs: &[LabeledRun]) -> String {
    let mut s = String::new();
    for r in runs {
        s.push_str(r.truth.fault.name());
        s.push('\t');
        s.push_str(r.truth.qoe.name());
        for (n, v) in &r.metrics {
            s.push_str(&format!("\t{n}={v:?}"));
        }
        s.push('\n');
    }
    s
}

fn runs_from_text(text: &str) -> Vec<LabeledRun> {
    text.lines()
        .filter(|l| !l.is_empty())
        .map(|line| {
            let mut parts = line.split('\t');
            let fault_name = parts.next().unwrap_or("none");
            let fault = FaultKind::ALL
                .iter()
                .copied()
                .find(|f| f.name() == fault_name)
                .unwrap_or(FaultKind::None);
            let qoe = match parts.next().unwrap_or("good") {
                "mild" => QoeClass::Mild,
                "severe" => QoeClass::Severe,
                _ => QoeClass::Good,
            };
            let metrics = parts
                .filter_map(|kv| {
                    let (k, v) = kv.split_once('=')?;
                    Some((k.to_string(), v.parse::<f64>().ok()?))
                })
                .collect();
            LabeledRun {
                metrics,
                truth: GroundTruth { fault, qoe },
            }
        })
        .collect()
}

fn scheme_of(opts: &HashMap<String, String>) -> LabelScheme {
    match opts.get("labels").map(String::as_str) {
        Some("existence") => LabelScheme::Existence,
        Some("location") => LabelScheme::Location,
        _ => LabelScheme::Exact,
    }
}

fn main() {
    let (cmd, opts) = parse_args();
    let get = |k: &str| opts.get(k).cloned();
    let num = |k: &str, d: f64| get(k).and_then(|v| v.parse().ok()).unwrap_or(d);

    match cmd.as_str() {
        "corpus" => {
            let sessions = num("sessions", 400.0) as usize;
            let seed = num("seed", 2015.0) as u64;
            let out = get("out").unwrap_or_else(|| "corpus.tsv".to_string());
            eprintln!("simulating {sessions} controlled sessions (seed {seed})...");
            let cfg = CorpusConfig {
                sessions,
                seed,
                ..Default::default()
            };
            let runs = generate_corpus(&cfg, &Catalog::top100(42));
            std::fs::write(&out, runs_to_text(&runs)).expect("write corpus");
            let good = runs
                .iter()
                .filter(|r| r.truth.qoe == QoeClass::Good)
                .count();
            eprintln!("wrote {out}: {} runs ({good} good)", runs.len());
        }
        "train" => {
            let corpus = get("corpus").expect("--corpus <file>");
            let out = get("out").unwrap_or_else(|| "model.vqd".to_string());
            let text = std::fs::read_to_string(&corpus).expect("read corpus");
            let runs = runs_from_text(&text);
            let data = to_dataset(&runs, scheme_of(&opts));
            let model = Diagnoser::train(&data, &DiagnoserConfig::default());
            model.save(&out).expect("write model");
            eprintln!(
                "trained on {} runs, {} features selected -> {out}",
                runs.len(),
                model.selected_features().len()
            );
        }
        "diagnose" => {
            let model = Diagnoser::load(get("model").expect("--model <file>")).expect("load model");
            let path = get("metrics").expect("--metrics <file>");
            let text = std::fs::read_to_string(&path).expect("read metrics");
            let metrics: Vec<(String, f64)> = text
                .split(['\n', '\t'])
                .filter_map(|kv| {
                    let (k, v) = kv.trim().split_once('=')?;
                    Some((k.to_string(), v.parse::<f64>().ok()?))
                })
                .collect();
            let dx = model.diagnose(&metrics);
            println!("{} (confidence {:.2})", dx.label, dx.dist[dx.class]);
            for (c, p) in model.classes.iter().zip(&dx.dist) {
                if *p > 0.01 {
                    println!("  {c:<28} {p:.3}");
                }
            }
        }
        "simulate" => {
            // One session through the testbed, optionally diagnosed.
            let kind = get("fault")
                .and_then(|f| FaultKind::ALL.iter().copied().find(|k| k.name() == f))
                .unwrap_or(FaultKind::None);
            let spec = SessionSpec {
                seed: num("seed", 7.0) as u64,
                fault: FaultPlan {
                    kind,
                    intensity: num("intensity", 0.8),
                },
                background: num("background", 0.4),
                wan: WanProfile::Dsl,
            };
            let session = run_controlled_session(&spec, &Catalog::top100(42));
            println!(
                "session: induced={} qoe={:?} stalls={} startup={:?}",
                kind.name(),
                session.truth.qoe,
                session.qoe.stalls.len(),
                session.qoe.startup_delay_s()
            );
            if let Some(mpath) = get("model") {
                let model = Diagnoser::load(mpath).expect("load model");
                let dx = model.diagnose(&session.metrics);
                println!(
                    "diagnosis: {} (confidence {:.2})",
                    dx.label, dx.dist[dx.class]
                );
            }
            if let Some(out) = get("out") {
                let mut s = String::new();
                for (n, v) in &session.metrics {
                    s.push_str(&format!("{n}={v:?}\n"));
                }
                std::fs::write(&out, s).expect("write metrics");
                eprintln!("wrote session metrics to {out}");
            }
        }
        "inspect" => {
            let model = Diagnoser::load(get("model").expect("--model <file>")).expect("load model");
            println!("classes: {}", model.classes.join(", "));
            println!("features ({}):", model.selected_features().len());
            for f in model.selected_features() {
                println!("  {f}");
            }
            println!(
                "\ndecision tree ({} nodes, depth {}):",
                model.tree().size(),
                model.tree().depth()
            );
            print!("{}", model.tree().to_text());
        }
        _ => {
            eprintln!(
                "usage: vqd <corpus|train|diagnose|simulate|inspect> [--opt value ...]\n\
                 \n\
                 vqd corpus   --sessions 600 --seed 2015 --out corpus.tsv\n\
                 vqd train    --corpus corpus.tsv --labels exact|location|existence --out model.vqd\n\
                 vqd diagnose --model model.vqd --metrics session.tsv\n\
                 vqd simulate --fault low_rssi --intensity 0.9 [--model model.vqd] [--out session.tsv]\n\
                 vqd inspect  --model model.vqd"
            );
        }
    }
}
