//! # vqd — Video QoE Diagnosis
//!
//! A multi-vantage-point framework for detecting video-streaming QoE
//! problems on mobile devices and identifying their **root cause** —
//! a full reproduction of *"Identifying the Root Cause of Video
//! Streaming Issues on Mobile Devices"* (CoNEXT 2015), including every
//! substrate the paper depends on:
//!
//! | crate | role |
//! |---|---|
//! | [`simnet`] | deterministic packet-level network simulator (links, queues, TCP Reno, UDP, traffic generators) |
//! | [`wireless`] | 802.11 PHY/MAC medium (RSSI, rate adaptation, contention, interference) |
//! | [`video`] | catalogue, HTTP-style server, buffered player, MOS labelling |
//! | [`faults`] | the Table 2 fault injectors and background variation |
//! | [`probes`] | tstat-style flow analysis + HW/NIC/PHY sampling per vantage point |
//! | [`features`] | feature construction (normalisation) and FCBF selection |
//! | [`ml`] | C4.5 (J48), Naive Bayes, linear SVM, MDL discretisation, cross-validation |
//! | [`core`] | scenarios, testbed, corpus generation, the [`Diagnoser`] API, real-world deployments |
//!
//! ## Quickstart
//!
//! ```no_run
//! use vqd::prelude::*;
//!
//! // 1. Generate labelled ground truth on the controlled testbed.
//! let catalog = Catalog::top100(42);
//! let corpus = generate_corpus(&CorpusConfig { sessions: 400, ..Default::default() }, &catalog);
//!
//! // 2. Train the root-cause model (FC → FCBF → C4.5).
//! let data = to_dataset(&corpus, LabelScheme::Exact);
//! let model = Diagnoser::train(&data, &DiagnoserConfig::default());
//!
//! // 3. Diagnose a fresh session from any vantage-point subset.
//! let spec = SessionSpec {
//!     seed: 7,
//!     fault: FaultPlan { kind: FaultKind::LowRssi, intensity: 0.9 },
//!     background: 0.4,
//!     wan: WanProfile::Dsl,
//! };
//! let session = run_controlled_session(&spec, &catalog);
//! let dx = model.diagnose(&session.metrics);
//! println!("diagnosis: {} (p={:.2})", dx.label, dx.dist[dx.class]);
//! ```

pub use vqd_core as core;
pub use vqd_faults as faults;
pub use vqd_features as features;
pub use vqd_ml as ml;
pub use vqd_probes as probes;
pub use vqd_simnet as simnet;
pub use vqd_video as video;
pub use vqd_wireless as wireless;

/// Everything needed for the typical train-and-diagnose workflow.
pub mod prelude {
    pub use vqd_core::chaos::{crash_points, SplitMix64};
    pub use vqd_core::corpus_stream::{
        convert_corpus, convert_corpus_with, merge_corpora, ConvertStats, CorpusReader,
        DEFAULT_CHUNK_SESSIONS,
    };
    pub use vqd_core::dataset::{
        corpus_from_text, corpus_to_text, generate_corpus, generate_corpus_with_stats,
        parse_corpus_line, to_dataset, CorpusConfig, CorpusGenStats, LabeledRun,
    };
    pub use vqd_core::diagnoser::{
        Diagnoser, DiagnoserConfig, Diagnosis, DiagnosisQuality, Resolution,
    };
    pub use vqd_core::drift::{DriftMonitor, DriftReading, DriftStamp, DriftWindow};
    pub use vqd_core::error::VqdError;
    pub use vqd_core::experiments::{eval_by_vp, eval_transfer, VP_SETS};
    pub use vqd_core::extshuffle::{ExternalShuffle, ShuffledReader, DEFAULT_SHUFFLE_BUDGET};
    pub use vqd_core::farm::{
        generate_corpus_farm, generate_corpus_multiproc, generate_corpus_range, FarmStats,
        ProcFarmConfig, ProcFarmStats,
    };
    pub use vqd_core::octrain::{train_out_of_core, OocConfig, OocReport};
    pub use vqd_core::realworld::{
        generate_induced, generate_wild, Access, RealWorldConfig, RwRun, Service,
    };
    pub use vqd_core::robustness::{degrade_corpus, majority_baseline, sweep, RobustnessCell};
    pub use vqd_core::scenario::{class_names, GroundTruth, LabelScheme};
    pub use vqd_core::serving::{AuditTrail, BatchOptions, DiagnosisBatch};
    pub use vqd_core::stream::ops::{OpsServer, Readiness};
    pub use vqd_core::stream::{
        corpus_to_events, corpus_to_events_from, inspect_recovery, prepare_output, recover_state,
        resolution_name, result_line, Durability, FlushCause, FlushedSession, JournalSpec,
        RecoveredState, RecoveryInfo, ServeConfig, ServeReport, SnapshotSpec, StreamServer,
        RESULT_HEADER,
    };
    pub use vqd_core::testbed::{run_controlled_session, SessionOutcome, SessionSpec, WanProfile};
    pub use vqd_core::vqdc::{
        corpus_to_vqdc_bytes, sniff_vqdc, write_vqdc, write_vqdc_with, VqdcIoMode, VqdcReader,
        VqdcSchema, VqdcVersion, VqdcWriteOptions, VqdcWriter, VQDC2_MAGIC, VQDC_MAGIC,
    };
    pub use vqd_faults::{FaultKind, FaultPlan};
    pub use vqd_ml::metrics::ConfusionMatrix;
    pub use vqd_ml::{AuditDir, AuditStep};
    pub use vqd_probes::degrade::{DegradeKind, DegradePlan};
    pub use vqd_probes::event::{EventKind, EventParseError, ProbeEvent};
    pub use vqd_video::catalog::{Catalog, CatalogConfig, Video};
    pub use vqd_video::QoeClass;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let c = Catalog::top100(1);
        assert_eq!(c.videos().len(), 100);
        assert_eq!(class_names(LabelScheme::Existence).len(), 3);
        let _ = FaultPlan {
            kind: FaultKind::None,
            intensity: 0.0,
        };
    }
}
