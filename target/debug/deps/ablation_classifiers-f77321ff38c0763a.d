/root/repo/target/debug/deps/ablation_classifiers-f77321ff38c0763a.d: crates/bench/benches/ablation_classifiers.rs Cargo.toml

/root/repo/target/debug/deps/libablation_classifiers-f77321ff38c0763a.rmeta: crates/bench/benches/ablation_classifiers.rs Cargo.toml

crates/bench/benches/ablation_classifiers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
