/root/repo/target/debug/deps/ablation_pipeline-9fa633369f66dccb.d: crates/bench/benches/ablation_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libablation_pipeline-9fa633369f66dccb.rmeta: crates/bench/benches/ablation_pipeline.rs Cargo.toml

crates/bench/benches/ablation_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
