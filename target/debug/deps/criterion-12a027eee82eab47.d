/root/repo/target/debug/deps/criterion-12a027eee82eab47.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-12a027eee82eab47.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-12a027eee82eab47.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
