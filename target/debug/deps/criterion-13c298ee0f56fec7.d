/root/repo/target/debug/deps/criterion-13c298ee0f56fec7.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-13c298ee0f56fec7.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
