/root/repo/target/debug/deps/criterion-2542dc4e53fd7120.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-2542dc4e53fd7120.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
