/root/repo/target/debug/deps/criterion-822c01e0bea634e8.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-822c01e0bea634e8: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
