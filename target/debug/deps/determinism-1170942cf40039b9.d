/root/repo/target/debug/deps/determinism-1170942cf40039b9.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-1170942cf40039b9.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
