/root/repo/target/debug/deps/determinism-863a5856b153e203.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-863a5856b153e203: tests/determinism.rs

tests/determinism.rs:
