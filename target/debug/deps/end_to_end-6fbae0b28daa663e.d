/root/repo/target/debug/deps/end_to_end-6fbae0b28daa663e.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-6fbae0b28daa663e: tests/end_to_end.rs

tests/end_to_end.rs:
