/root/repo/target/debug/deps/ext_iterative_rca-6cd60b9b8c0e324e.d: crates/bench/benches/ext_iterative_rca.rs Cargo.toml

/root/repo/target/debug/deps/libext_iterative_rca-6cd60b9b8c0e324e.rmeta: crates/bench/benches/ext_iterative_rca.rs Cargo.toml

crates/bench/benches/ext_iterative_rca.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
