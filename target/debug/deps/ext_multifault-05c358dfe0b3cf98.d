/root/repo/target/debug/deps/ext_multifault-05c358dfe0b3cf98.d: crates/bench/benches/ext_multifault.rs Cargo.toml

/root/repo/target/debug/deps/libext_multifault-05c358dfe0b3cf98.rmeta: crates/bench/benches/ext_multifault.rs Cargo.toml

crates/bench/benches/ext_multifault.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
