/root/repo/target/debug/deps/fig3_detection-a0db2fd8865862f6.d: crates/bench/benches/fig3_detection.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_detection-a0db2fd8865862f6.rmeta: crates/bench/benches/fig3_detection.rs Cargo.toml

crates/bench/benches/fig3_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
