/root/repo/target/debug/deps/fig4_exact_problem-403a06ad9df357de.d: crates/bench/benches/fig4_exact_problem.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_exact_problem-403a06ad9df357de.rmeta: crates/bench/benches/fig4_exact_problem.rs Cargo.toml

crates/bench/benches/fig4_exact_problem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
