/root/repo/target/debug/deps/fig5_feature_sets-c986c1df08801e0f.d: crates/bench/benches/fig5_feature_sets.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_feature_sets-c986c1df08801e0f.rmeta: crates/bench/benches/fig5_feature_sets.rs Cargo.toml

crates/bench/benches/fig5_feature_sets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
