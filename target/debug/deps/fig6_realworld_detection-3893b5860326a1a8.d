/root/repo/target/debug/deps/fig6_realworld_detection-3893b5860326a1a8.d: crates/bench/benches/fig6_realworld_detection.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_realworld_detection-3893b5860326a1a8.rmeta: crates/bench/benches/fig6_realworld_detection.rs Cargo.toml

crates/bench/benches/fig6_realworld_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
