/root/repo/target/debug/deps/fig7_realworld_exact-ad135ffd9034708a.d: crates/bench/benches/fig7_realworld_exact.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_realworld_exact-ad135ffd9034708a.rmeta: crates/bench/benches/fig7_realworld_exact.rs Cargo.toml

crates/bench/benches/fig7_realworld_exact.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
