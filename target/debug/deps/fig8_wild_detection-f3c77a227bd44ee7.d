/root/repo/target/debug/deps/fig8_wild_detection-f3c77a227bd44ee7.d: crates/bench/benches/fig8_wild_detection.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_wild_detection-f3c77a227bd44ee7.rmeta: crates/bench/benches/fig8_wild_detection.rs Cargo.toml

crates/bench/benches/fig8_wild_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
