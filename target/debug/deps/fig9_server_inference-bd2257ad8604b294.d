/root/repo/target/debug/deps/fig9_server_inference-bd2257ad8604b294.d: crates/bench/benches/fig9_server_inference.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_server_inference-bd2257ad8604b294.rmeta: crates/bench/benches/fig9_server_inference.rs Cargo.toml

crates/bench/benches/fig9_server_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
