/root/repo/target/debug/deps/losscheck-d02ecae5a8261eb6.d: crates/simnet/tests/losscheck.rs

/root/repo/target/debug/deps/losscheck-d02ecae5a8261eb6: crates/simnet/tests/losscheck.rs

crates/simnet/tests/losscheck.rs:
