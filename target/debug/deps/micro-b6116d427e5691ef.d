/root/repo/target/debug/deps/micro-b6116d427e5691ef.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-b6116d427e5691ef.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
