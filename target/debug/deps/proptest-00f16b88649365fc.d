/root/repo/target/debug/deps/proptest-00f16b88649365fc.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-00f16b88649365fc.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-00f16b88649365fc.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
