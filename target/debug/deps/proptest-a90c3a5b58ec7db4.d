/root/repo/target/debug/deps/proptest-a90c3a5b58ec7db4.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-a90c3a5b58ec7db4.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
