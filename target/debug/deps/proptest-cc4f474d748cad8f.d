/root/repo/target/debug/deps/proptest-cc4f474d748cad8f.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-cc4f474d748cad8f.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
