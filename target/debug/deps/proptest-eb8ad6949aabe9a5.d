/root/repo/target/debug/deps/proptest-eb8ad6949aabe9a5.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-eb8ad6949aabe9a5: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
