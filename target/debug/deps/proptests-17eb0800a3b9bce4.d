/root/repo/target/debug/deps/proptests-17eb0800a3b9bce4.d: crates/ml/tests/proptests.rs

/root/repo/target/debug/deps/proptests-17eb0800a3b9bce4: crates/ml/tests/proptests.rs

crates/ml/tests/proptests.rs:
