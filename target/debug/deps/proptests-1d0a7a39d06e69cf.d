/root/repo/target/debug/deps/proptests-1d0a7a39d06e69cf.d: crates/probes/tests/proptests.rs

/root/repo/target/debug/deps/proptests-1d0a7a39d06e69cf: crates/probes/tests/proptests.rs

crates/probes/tests/proptests.rs:
