/root/repo/target/debug/deps/proptests-2da7aef3b36485ef.d: crates/video/tests/proptests.rs

/root/repo/target/debug/deps/proptests-2da7aef3b36485ef: crates/video/tests/proptests.rs

crates/video/tests/proptests.rs:
