/root/repo/target/debug/deps/proptests-3d27f899b3c492f8.d: crates/video/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-3d27f899b3c492f8.rmeta: crates/video/tests/proptests.rs Cargo.toml

crates/video/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
