/root/repo/target/debug/deps/proptests-45e75b9c5117a07d.d: crates/features/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-45e75b9c5117a07d.rmeta: crates/features/tests/proptests.rs Cargo.toml

crates/features/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
