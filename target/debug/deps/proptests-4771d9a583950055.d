/root/repo/target/debug/deps/proptests-4771d9a583950055.d: crates/faults/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-4771d9a583950055.rmeta: crates/faults/tests/proptests.rs Cargo.toml

crates/faults/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
