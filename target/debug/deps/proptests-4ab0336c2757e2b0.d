/root/repo/target/debug/deps/proptests-4ab0336c2757e2b0.d: crates/wireless/tests/proptests.rs

/root/repo/target/debug/deps/proptests-4ab0336c2757e2b0: crates/wireless/tests/proptests.rs

crates/wireless/tests/proptests.rs:
