/root/repo/target/debug/deps/proptests-5efaf4db6deae565.d: crates/simnet/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-5efaf4db6deae565.rmeta: crates/simnet/tests/proptests.rs Cargo.toml

crates/simnet/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
