/root/repo/target/debug/deps/proptests-7d1078b3e2353e1c.d: crates/wireless/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-7d1078b3e2353e1c.rmeta: crates/wireless/tests/proptests.rs Cargo.toml

crates/wireless/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
