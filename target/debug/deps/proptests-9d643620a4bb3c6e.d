/root/repo/target/debug/deps/proptests-9d643620a4bb3c6e.d: crates/simnet/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9d643620a4bb3c6e: crates/simnet/tests/proptests.rs

crates/simnet/tests/proptests.rs:
