/root/repo/target/debug/deps/proptests-c79da7e6082868b0.d: crates/probes/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-c79da7e6082868b0.rmeta: crates/probes/tests/proptests.rs Cargo.toml

crates/probes/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
