/root/repo/target/debug/deps/proptests-cc8cb69b9ec507fc.d: crates/faults/tests/proptests.rs

/root/repo/target/debug/deps/proptests-cc8cb69b9ec507fc: crates/faults/tests/proptests.rs

crates/faults/tests/proptests.rs:
