/root/repo/target/debug/deps/proptests-d7032fa0f94ba434.d: crates/features/tests/proptests.rs

/root/repo/target/debug/deps/proptests-d7032fa0f94ba434: crates/features/tests/proptests.rs

crates/features/tests/proptests.rs:
