/root/repo/target/debug/deps/proptests-e550eddc4f415b27.d: crates/ml/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-e550eddc4f415b27.rmeta: crates/ml/tests/proptests.rs Cargo.toml

crates/ml/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
