/root/repo/target/debug/deps/rand-10180e039e7c9e33.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-10180e039e7c9e33.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
