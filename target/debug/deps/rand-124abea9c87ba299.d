/root/repo/target/debug/deps/rand-124abea9c87ba299.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-124abea9c87ba299: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
