/root/repo/target/debug/deps/rand-68984dac29f52c47.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-68984dac29f52c47.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-68984dac29f52c47.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
