/root/repo/target/debug/deps/rand-fa58fe153743c482.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-fa58fe153743c482.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
