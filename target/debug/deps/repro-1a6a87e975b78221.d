/root/repo/target/debug/deps/repro-1a6a87e975b78221.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-1a6a87e975b78221.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
