/root/repo/target/debug/deps/repro-e0c8f32cd266d227.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-e0c8f32cd266d227: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
