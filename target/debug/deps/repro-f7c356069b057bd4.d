/root/repo/target/debug/deps/repro-f7c356069b057bd4.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-f7c356069b057bd4.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
