/root/repo/target/debug/deps/sec52_location-2aec6314fe173614.d: crates/bench/benches/sec52_location.rs Cargo.toml

/root/repo/target/debug/deps/libsec52_location-2aec6314fe173614.rmeta: crates/bench/benches/sec52_location.rs Cargo.toml

crates/bench/benches/sec52_location.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
