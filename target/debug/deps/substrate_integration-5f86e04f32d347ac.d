/root/repo/target/debug/deps/substrate_integration-5f86e04f32d347ac.d: tests/substrate_integration.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_integration-5f86e04f32d347ac.rmeta: tests/substrate_integration.rs Cargo.toml

tests/substrate_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
