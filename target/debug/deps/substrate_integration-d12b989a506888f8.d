/root/repo/target/debug/deps/substrate_integration-d12b989a506888f8.d: tests/substrate_integration.rs

/root/repo/target/debug/deps/substrate_integration-d12b989a506888f8: tests/substrate_integration.rs

tests/substrate_integration.rs:
