/root/repo/target/debug/deps/table1_feature_selection-72cb3456c7ebeead.d: crates/bench/benches/table1_feature_selection.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_feature_selection-72cb3456c7ebeead.rmeta: crates/bench/benches/table1_feature_selection.rs Cargo.toml

crates/bench/benches/table1_feature_selection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
