/root/repo/target/debug/deps/table4_feature_ranking-14995a87ec2916c3.d: crates/bench/benches/table4_feature_ranking.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_feature_ranking-14995a87ec2916c3.rmeta: crates/bench/benches/table4_feature_ranking.rs Cargo.toml

crates/bench/benches/table4_feature_ranking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
