/root/repo/target/debug/deps/table5_wild_rootcause-cdb451527f7c9da6.d: crates/bench/benches/table5_wild_rootcause.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_wild_rootcause-cdb451527f7c9da6.rmeta: crates/bench/benches/table5_wild_rootcause.rs Cargo.toml

crates/bench/benches/table5_wild_rootcause.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
