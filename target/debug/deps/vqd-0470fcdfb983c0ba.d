/root/repo/target/debug/deps/vqd-0470fcdfb983c0ba.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvqd-0470fcdfb983c0ba.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
