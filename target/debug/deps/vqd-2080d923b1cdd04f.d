/root/repo/target/debug/deps/vqd-2080d923b1cdd04f.d: src/bin/vqd.rs Cargo.toml

/root/repo/target/debug/deps/libvqd-2080d923b1cdd04f.rmeta: src/bin/vqd.rs Cargo.toml

src/bin/vqd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
