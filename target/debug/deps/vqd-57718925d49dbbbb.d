/root/repo/target/debug/deps/vqd-57718925d49dbbbb.d: src/bin/vqd.rs

/root/repo/target/debug/deps/vqd-57718925d49dbbbb: src/bin/vqd.rs

src/bin/vqd.rs:
