/root/repo/target/debug/deps/vqd-6fb0c1fcd9ea6312.d: src/bin/vqd.rs

/root/repo/target/debug/deps/vqd-6fb0c1fcd9ea6312: src/bin/vqd.rs

src/bin/vqd.rs:
