/root/repo/target/debug/deps/vqd-aab81fd4927489e7.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvqd-aab81fd4927489e7.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
