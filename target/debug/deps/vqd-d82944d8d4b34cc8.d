/root/repo/target/debug/deps/vqd-d82944d8d4b34cc8.d: src/lib.rs

/root/repo/target/debug/deps/vqd-d82944d8d4b34cc8: src/lib.rs

src/lib.rs:
