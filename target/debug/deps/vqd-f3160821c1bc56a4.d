/root/repo/target/debug/deps/vqd-f3160821c1bc56a4.d: src/lib.rs

/root/repo/target/debug/deps/libvqd-f3160821c1bc56a4.rlib: src/lib.rs

/root/repo/target/debug/deps/libvqd-f3160821c1bc56a4.rmeta: src/lib.rs

src/lib.rs:
