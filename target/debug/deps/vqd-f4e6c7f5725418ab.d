/root/repo/target/debug/deps/vqd-f4e6c7f5725418ab.d: src/bin/vqd.rs Cargo.toml

/root/repo/target/debug/deps/libvqd-f4e6c7f5725418ab.rmeta: src/bin/vqd.rs Cargo.toml

src/bin/vqd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
