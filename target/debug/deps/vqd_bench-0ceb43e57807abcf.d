/root/repo/target/debug/deps/vqd_bench-0ceb43e57807abcf.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libvqd_bench-0ceb43e57807abcf.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libvqd_bench-0ceb43e57807abcf.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
