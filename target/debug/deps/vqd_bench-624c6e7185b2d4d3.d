/root/repo/target/debug/deps/vqd_bench-624c6e7185b2d4d3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/vqd_bench-624c6e7185b2d4d3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
