/root/repo/target/debug/deps/vqd_bench-f5db1bef91fa4e9a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvqd_bench-f5db1bef91fa4e9a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
