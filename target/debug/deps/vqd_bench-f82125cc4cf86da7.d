/root/repo/target/debug/deps/vqd_bench-f82125cc4cf86da7.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvqd_bench-f82125cc4cf86da7.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
