/root/repo/target/debug/deps/vqd_core-2bceecf33e7065c1.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/dataset.rs crates/core/src/diagnoser.rs crates/core/src/experiments.rs crates/core/src/iterative.rs crates/core/src/multifault.rs crates/core/src/realworld.rs crates/core/src/scenario.rs crates/core/src/testbed.rs Cargo.toml

/root/repo/target/debug/deps/libvqd_core-2bceecf33e7065c1.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/dataset.rs crates/core/src/diagnoser.rs crates/core/src/experiments.rs crates/core/src/iterative.rs crates/core/src/multifault.rs crates/core/src/realworld.rs crates/core/src/scenario.rs crates/core/src/testbed.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/dataset.rs:
crates/core/src/diagnoser.rs:
crates/core/src/experiments.rs:
crates/core/src/iterative.rs:
crates/core/src/multifault.rs:
crates/core/src/realworld.rs:
crates/core/src/scenario.rs:
crates/core/src/testbed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
