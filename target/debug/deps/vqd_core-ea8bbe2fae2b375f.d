/root/repo/target/debug/deps/vqd_core-ea8bbe2fae2b375f.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/dataset.rs crates/core/src/diagnoser.rs crates/core/src/experiments.rs crates/core/src/iterative.rs crates/core/src/multifault.rs crates/core/src/realworld.rs crates/core/src/scenario.rs crates/core/src/testbed.rs

/root/repo/target/debug/deps/libvqd_core-ea8bbe2fae2b375f.rlib: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/dataset.rs crates/core/src/diagnoser.rs crates/core/src/experiments.rs crates/core/src/iterative.rs crates/core/src/multifault.rs crates/core/src/realworld.rs crates/core/src/scenario.rs crates/core/src/testbed.rs

/root/repo/target/debug/deps/libvqd_core-ea8bbe2fae2b375f.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/dataset.rs crates/core/src/diagnoser.rs crates/core/src/experiments.rs crates/core/src/iterative.rs crates/core/src/multifault.rs crates/core/src/realworld.rs crates/core/src/scenario.rs crates/core/src/testbed.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/dataset.rs:
crates/core/src/diagnoser.rs:
crates/core/src/experiments.rs:
crates/core/src/iterative.rs:
crates/core/src/multifault.rs:
crates/core/src/realworld.rs:
crates/core/src/scenario.rs:
crates/core/src/testbed.rs:
