/root/repo/target/debug/deps/vqd_faults-2a7e445214305511.d: crates/faults/src/lib.rs crates/faults/src/background.rs crates/faults/src/fault.rs

/root/repo/target/debug/deps/vqd_faults-2a7e445214305511: crates/faults/src/lib.rs crates/faults/src/background.rs crates/faults/src/fault.rs

crates/faults/src/lib.rs:
crates/faults/src/background.rs:
crates/faults/src/fault.rs:
