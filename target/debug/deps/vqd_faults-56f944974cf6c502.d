/root/repo/target/debug/deps/vqd_faults-56f944974cf6c502.d: crates/faults/src/lib.rs crates/faults/src/background.rs crates/faults/src/fault.rs

/root/repo/target/debug/deps/libvqd_faults-56f944974cf6c502.rlib: crates/faults/src/lib.rs crates/faults/src/background.rs crates/faults/src/fault.rs

/root/repo/target/debug/deps/libvqd_faults-56f944974cf6c502.rmeta: crates/faults/src/lib.rs crates/faults/src/background.rs crates/faults/src/fault.rs

crates/faults/src/lib.rs:
crates/faults/src/background.rs:
crates/faults/src/fault.rs:
