/root/repo/target/debug/deps/vqd_faults-957ebad7d399f201.d: crates/faults/src/lib.rs crates/faults/src/background.rs crates/faults/src/fault.rs Cargo.toml

/root/repo/target/debug/deps/libvqd_faults-957ebad7d399f201.rmeta: crates/faults/src/lib.rs crates/faults/src/background.rs crates/faults/src/fault.rs Cargo.toml

crates/faults/src/lib.rs:
crates/faults/src/background.rs:
crates/faults/src/fault.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
