/root/repo/target/debug/deps/vqd_faults-b9b1c7d9bdfcbf99.d: crates/faults/src/lib.rs crates/faults/src/background.rs crates/faults/src/fault.rs Cargo.toml

/root/repo/target/debug/deps/libvqd_faults-b9b1c7d9bdfcbf99.rmeta: crates/faults/src/lib.rs crates/faults/src/background.rs crates/faults/src/fault.rs Cargo.toml

crates/faults/src/lib.rs:
crates/faults/src/background.rs:
crates/faults/src/fault.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
