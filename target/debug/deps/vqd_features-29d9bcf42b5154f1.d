/root/repo/target/debug/deps/vqd_features-29d9bcf42b5154f1.d: crates/features/src/lib.rs crates/features/src/construct.rs crates/features/src/select.rs

/root/repo/target/debug/deps/vqd_features-29d9bcf42b5154f1: crates/features/src/lib.rs crates/features/src/construct.rs crates/features/src/select.rs

crates/features/src/lib.rs:
crates/features/src/construct.rs:
crates/features/src/select.rs:
