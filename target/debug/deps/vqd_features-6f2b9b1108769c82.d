/root/repo/target/debug/deps/vqd_features-6f2b9b1108769c82.d: crates/features/src/lib.rs crates/features/src/construct.rs crates/features/src/select.rs

/root/repo/target/debug/deps/libvqd_features-6f2b9b1108769c82.rlib: crates/features/src/lib.rs crates/features/src/construct.rs crates/features/src/select.rs

/root/repo/target/debug/deps/libvqd_features-6f2b9b1108769c82.rmeta: crates/features/src/lib.rs crates/features/src/construct.rs crates/features/src/select.rs

crates/features/src/lib.rs:
crates/features/src/construct.rs:
crates/features/src/select.rs:
