/root/repo/target/debug/deps/vqd_features-8857d428f60ebbbd.d: crates/features/src/lib.rs crates/features/src/construct.rs crates/features/src/select.rs Cargo.toml

/root/repo/target/debug/deps/libvqd_features-8857d428f60ebbbd.rmeta: crates/features/src/lib.rs crates/features/src/construct.rs crates/features/src/select.rs Cargo.toml

crates/features/src/lib.rs:
crates/features/src/construct.rs:
crates/features/src/select.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
