/root/repo/target/debug/deps/vqd_ml-68aab1d3069b6d8a.d: crates/ml/src/lib.rs crates/ml/src/cv.rs crates/ml/src/dataset.rs crates/ml/src/discretize.rs crates/ml/src/dtree.rs crates/ml/src/info.rs crates/ml/src/metrics.rs crates/ml/src/nb.rs crates/ml/src/svm.rs

/root/repo/target/debug/deps/libvqd_ml-68aab1d3069b6d8a.rlib: crates/ml/src/lib.rs crates/ml/src/cv.rs crates/ml/src/dataset.rs crates/ml/src/discretize.rs crates/ml/src/dtree.rs crates/ml/src/info.rs crates/ml/src/metrics.rs crates/ml/src/nb.rs crates/ml/src/svm.rs

/root/repo/target/debug/deps/libvqd_ml-68aab1d3069b6d8a.rmeta: crates/ml/src/lib.rs crates/ml/src/cv.rs crates/ml/src/dataset.rs crates/ml/src/discretize.rs crates/ml/src/dtree.rs crates/ml/src/info.rs crates/ml/src/metrics.rs crates/ml/src/nb.rs crates/ml/src/svm.rs

crates/ml/src/lib.rs:
crates/ml/src/cv.rs:
crates/ml/src/dataset.rs:
crates/ml/src/discretize.rs:
crates/ml/src/dtree.rs:
crates/ml/src/info.rs:
crates/ml/src/metrics.rs:
crates/ml/src/nb.rs:
crates/ml/src/svm.rs:
