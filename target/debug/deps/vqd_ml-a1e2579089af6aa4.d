/root/repo/target/debug/deps/vqd_ml-a1e2579089af6aa4.d: crates/ml/src/lib.rs crates/ml/src/cv.rs crates/ml/src/dataset.rs crates/ml/src/discretize.rs crates/ml/src/dtree.rs crates/ml/src/info.rs crates/ml/src/metrics.rs crates/ml/src/nb.rs crates/ml/src/svm.rs Cargo.toml

/root/repo/target/debug/deps/libvqd_ml-a1e2579089af6aa4.rmeta: crates/ml/src/lib.rs crates/ml/src/cv.rs crates/ml/src/dataset.rs crates/ml/src/discretize.rs crates/ml/src/dtree.rs crates/ml/src/info.rs crates/ml/src/metrics.rs crates/ml/src/nb.rs crates/ml/src/svm.rs Cargo.toml

crates/ml/src/lib.rs:
crates/ml/src/cv.rs:
crates/ml/src/dataset.rs:
crates/ml/src/discretize.rs:
crates/ml/src/dtree.rs:
crates/ml/src/info.rs:
crates/ml/src/metrics.rs:
crates/ml/src/nb.rs:
crates/ml/src/svm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
