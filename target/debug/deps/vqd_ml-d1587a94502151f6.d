/root/repo/target/debug/deps/vqd_ml-d1587a94502151f6.d: crates/ml/src/lib.rs crates/ml/src/cv.rs crates/ml/src/dataset.rs crates/ml/src/discretize.rs crates/ml/src/dtree.rs crates/ml/src/info.rs crates/ml/src/metrics.rs crates/ml/src/nb.rs crates/ml/src/svm.rs

/root/repo/target/debug/deps/vqd_ml-d1587a94502151f6: crates/ml/src/lib.rs crates/ml/src/cv.rs crates/ml/src/dataset.rs crates/ml/src/discretize.rs crates/ml/src/dtree.rs crates/ml/src/info.rs crates/ml/src/metrics.rs crates/ml/src/nb.rs crates/ml/src/svm.rs

crates/ml/src/lib.rs:
crates/ml/src/cv.rs:
crates/ml/src/dataset.rs:
crates/ml/src/discretize.rs:
crates/ml/src/dtree.rs:
crates/ml/src/info.rs:
crates/ml/src/metrics.rs:
crates/ml/src/nb.rs:
crates/ml/src/svm.rs:
