/root/repo/target/debug/deps/vqd_probes-01c52241f331840f.d: crates/probes/src/lib.rs crates/probes/src/sampler.rs crates/probes/src/tstat.rs crates/probes/src/vantage.rs

/root/repo/target/debug/deps/vqd_probes-01c52241f331840f: crates/probes/src/lib.rs crates/probes/src/sampler.rs crates/probes/src/tstat.rs crates/probes/src/vantage.rs

crates/probes/src/lib.rs:
crates/probes/src/sampler.rs:
crates/probes/src/tstat.rs:
crates/probes/src/vantage.rs:
