/root/repo/target/debug/deps/vqd_probes-188466a6381419fd.d: crates/probes/src/lib.rs crates/probes/src/sampler.rs crates/probes/src/tstat.rs crates/probes/src/vantage.rs Cargo.toml

/root/repo/target/debug/deps/libvqd_probes-188466a6381419fd.rmeta: crates/probes/src/lib.rs crates/probes/src/sampler.rs crates/probes/src/tstat.rs crates/probes/src/vantage.rs Cargo.toml

crates/probes/src/lib.rs:
crates/probes/src/sampler.rs:
crates/probes/src/tstat.rs:
crates/probes/src/vantage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
