/root/repo/target/debug/deps/vqd_probes-a9818754b5e70e10.d: crates/probes/src/lib.rs crates/probes/src/sampler.rs crates/probes/src/tstat.rs crates/probes/src/vantage.rs

/root/repo/target/debug/deps/libvqd_probes-a9818754b5e70e10.rlib: crates/probes/src/lib.rs crates/probes/src/sampler.rs crates/probes/src/tstat.rs crates/probes/src/vantage.rs

/root/repo/target/debug/deps/libvqd_probes-a9818754b5e70e10.rmeta: crates/probes/src/lib.rs crates/probes/src/sampler.rs crates/probes/src/tstat.rs crates/probes/src/vantage.rs

crates/probes/src/lib.rs:
crates/probes/src/sampler.rs:
crates/probes/src/tstat.rs:
crates/probes/src/vantage.rs:
