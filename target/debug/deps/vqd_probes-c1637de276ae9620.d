/root/repo/target/debug/deps/vqd_probes-c1637de276ae9620.d: crates/probes/src/lib.rs crates/probes/src/sampler.rs crates/probes/src/tstat.rs crates/probes/src/vantage.rs Cargo.toml

/root/repo/target/debug/deps/libvqd_probes-c1637de276ae9620.rmeta: crates/probes/src/lib.rs crates/probes/src/sampler.rs crates/probes/src/tstat.rs crates/probes/src/vantage.rs Cargo.toml

crates/probes/src/lib.rs:
crates/probes/src/sampler.rs:
crates/probes/src/tstat.rs:
crates/probes/src/vantage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
