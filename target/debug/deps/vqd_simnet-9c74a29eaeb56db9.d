/root/repo/target/debug/deps/vqd_simnet-9c74a29eaeb56db9.d: crates/simnet/src/lib.rs crates/simnet/src/engine.rs crates/simnet/src/host.rs crates/simnet/src/ids.rs crates/simnet/src/link.rs crates/simnet/src/medium.rs crates/simnet/src/packet.rs crates/simnet/src/rng.rs crates/simnet/src/stats.rs crates/simnet/src/tcp.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs crates/simnet/src/traffic.rs crates/simnet/src/udp.rs

/root/repo/target/debug/deps/libvqd_simnet-9c74a29eaeb56db9.rlib: crates/simnet/src/lib.rs crates/simnet/src/engine.rs crates/simnet/src/host.rs crates/simnet/src/ids.rs crates/simnet/src/link.rs crates/simnet/src/medium.rs crates/simnet/src/packet.rs crates/simnet/src/rng.rs crates/simnet/src/stats.rs crates/simnet/src/tcp.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs crates/simnet/src/traffic.rs crates/simnet/src/udp.rs

/root/repo/target/debug/deps/libvqd_simnet-9c74a29eaeb56db9.rmeta: crates/simnet/src/lib.rs crates/simnet/src/engine.rs crates/simnet/src/host.rs crates/simnet/src/ids.rs crates/simnet/src/link.rs crates/simnet/src/medium.rs crates/simnet/src/packet.rs crates/simnet/src/rng.rs crates/simnet/src/stats.rs crates/simnet/src/tcp.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs crates/simnet/src/traffic.rs crates/simnet/src/udp.rs

crates/simnet/src/lib.rs:
crates/simnet/src/engine.rs:
crates/simnet/src/host.rs:
crates/simnet/src/ids.rs:
crates/simnet/src/link.rs:
crates/simnet/src/medium.rs:
crates/simnet/src/packet.rs:
crates/simnet/src/rng.rs:
crates/simnet/src/stats.rs:
crates/simnet/src/tcp.rs:
crates/simnet/src/time.rs:
crates/simnet/src/topology.rs:
crates/simnet/src/traffic.rs:
crates/simnet/src/udp.rs:
