/root/repo/target/debug/deps/vqd_simnet-bc34120202120d67.d: crates/simnet/src/lib.rs crates/simnet/src/engine.rs crates/simnet/src/host.rs crates/simnet/src/ids.rs crates/simnet/src/link.rs crates/simnet/src/medium.rs crates/simnet/src/packet.rs crates/simnet/src/rng.rs crates/simnet/src/stats.rs crates/simnet/src/tcp.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs crates/simnet/src/traffic.rs crates/simnet/src/udp.rs Cargo.toml

/root/repo/target/debug/deps/libvqd_simnet-bc34120202120d67.rmeta: crates/simnet/src/lib.rs crates/simnet/src/engine.rs crates/simnet/src/host.rs crates/simnet/src/ids.rs crates/simnet/src/link.rs crates/simnet/src/medium.rs crates/simnet/src/packet.rs crates/simnet/src/rng.rs crates/simnet/src/stats.rs crates/simnet/src/tcp.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs crates/simnet/src/traffic.rs crates/simnet/src/udp.rs Cargo.toml

crates/simnet/src/lib.rs:
crates/simnet/src/engine.rs:
crates/simnet/src/host.rs:
crates/simnet/src/ids.rs:
crates/simnet/src/link.rs:
crates/simnet/src/medium.rs:
crates/simnet/src/packet.rs:
crates/simnet/src/rng.rs:
crates/simnet/src/stats.rs:
crates/simnet/src/tcp.rs:
crates/simnet/src/time.rs:
crates/simnet/src/topology.rs:
crates/simnet/src/traffic.rs:
crates/simnet/src/udp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
