/root/repo/target/debug/deps/vqd_video-38c78b80937af46a.d: crates/video/src/lib.rs crates/video/src/catalog.rs crates/video/src/mos.rs crates/video/src/player.rs crates/video/src/server.rs crates/video/src/session.rs Cargo.toml

/root/repo/target/debug/deps/libvqd_video-38c78b80937af46a.rmeta: crates/video/src/lib.rs crates/video/src/catalog.rs crates/video/src/mos.rs crates/video/src/player.rs crates/video/src/server.rs crates/video/src/session.rs Cargo.toml

crates/video/src/lib.rs:
crates/video/src/catalog.rs:
crates/video/src/mos.rs:
crates/video/src/player.rs:
crates/video/src/server.rs:
crates/video/src/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
