/root/repo/target/debug/deps/vqd_video-64ddbf22976916ef.d: crates/video/src/lib.rs crates/video/src/catalog.rs crates/video/src/mos.rs crates/video/src/player.rs crates/video/src/server.rs crates/video/src/session.rs

/root/repo/target/debug/deps/libvqd_video-64ddbf22976916ef.rlib: crates/video/src/lib.rs crates/video/src/catalog.rs crates/video/src/mos.rs crates/video/src/player.rs crates/video/src/server.rs crates/video/src/session.rs

/root/repo/target/debug/deps/libvqd_video-64ddbf22976916ef.rmeta: crates/video/src/lib.rs crates/video/src/catalog.rs crates/video/src/mos.rs crates/video/src/player.rs crates/video/src/server.rs crates/video/src/session.rs

crates/video/src/lib.rs:
crates/video/src/catalog.rs:
crates/video/src/mos.rs:
crates/video/src/player.rs:
crates/video/src/server.rs:
crates/video/src/session.rs:
