/root/repo/target/debug/deps/vqd_video-66bec8066ef65a3d.d: crates/video/src/lib.rs crates/video/src/catalog.rs crates/video/src/mos.rs crates/video/src/player.rs crates/video/src/server.rs crates/video/src/session.rs

/root/repo/target/debug/deps/vqd_video-66bec8066ef65a3d: crates/video/src/lib.rs crates/video/src/catalog.rs crates/video/src/mos.rs crates/video/src/player.rs crates/video/src/server.rs crates/video/src/session.rs

crates/video/src/lib.rs:
crates/video/src/catalog.rs:
crates/video/src/mos.rs:
crates/video/src/player.rs:
crates/video/src/server.rs:
crates/video/src/session.rs:
