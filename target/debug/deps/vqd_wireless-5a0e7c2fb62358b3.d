/root/repo/target/debug/deps/vqd_wireless-5a0e7c2fb62358b3.d: crates/wireless/src/lib.rs crates/wireless/src/phy.rs crates/wireless/src/rates.rs crates/wireless/src/wlan.rs

/root/repo/target/debug/deps/vqd_wireless-5a0e7c2fb62358b3: crates/wireless/src/lib.rs crates/wireless/src/phy.rs crates/wireless/src/rates.rs crates/wireless/src/wlan.rs

crates/wireless/src/lib.rs:
crates/wireless/src/phy.rs:
crates/wireless/src/rates.rs:
crates/wireless/src/wlan.rs:
