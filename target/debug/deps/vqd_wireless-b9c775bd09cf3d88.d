/root/repo/target/debug/deps/vqd_wireless-b9c775bd09cf3d88.d: crates/wireless/src/lib.rs crates/wireless/src/phy.rs crates/wireless/src/rates.rs crates/wireless/src/wlan.rs

/root/repo/target/debug/deps/libvqd_wireless-b9c775bd09cf3d88.rlib: crates/wireless/src/lib.rs crates/wireless/src/phy.rs crates/wireless/src/rates.rs crates/wireless/src/wlan.rs

/root/repo/target/debug/deps/libvqd_wireless-b9c775bd09cf3d88.rmeta: crates/wireless/src/lib.rs crates/wireless/src/phy.rs crates/wireless/src/rates.rs crates/wireless/src/wlan.rs

crates/wireless/src/lib.rs:
crates/wireless/src/phy.rs:
crates/wireless/src/rates.rs:
crates/wireless/src/wlan.rs:
