/root/repo/target/debug/deps/vqd_wireless-d45e5f948fc01f02.d: crates/wireless/src/lib.rs crates/wireless/src/phy.rs crates/wireless/src/rates.rs crates/wireless/src/wlan.rs Cargo.toml

/root/repo/target/debug/deps/libvqd_wireless-d45e5f948fc01f02.rmeta: crates/wireless/src/lib.rs crates/wireless/src/phy.rs crates/wireless/src/rates.rs crates/wireless/src/wlan.rs Cargo.toml

crates/wireless/src/lib.rs:
crates/wireless/src/phy.rs:
crates/wireless/src/rates.rs:
crates/wireless/src/wlan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
