/root/repo/target/debug/deps/vqd_wireless-e0affc56b1b2ba3f.d: crates/wireless/src/lib.rs crates/wireless/src/phy.rs crates/wireless/src/rates.rs crates/wireless/src/wlan.rs Cargo.toml

/root/repo/target/debug/deps/libvqd_wireless-e0affc56b1b2ba3f.rmeta: crates/wireless/src/lib.rs crates/wireless/src/phy.rs crates/wireless/src/rates.rs crates/wireless/src/wlan.rs Cargo.toml

crates/wireless/src/lib.rs:
crates/wireless/src/phy.rs:
crates/wireless/src/rates.rs:
crates/wireless/src/wlan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
