/root/repo/target/debug/examples/isp_monitor-d645e05f2204ef65.d: examples/isp_monitor.rs

/root/repo/target/debug/examples/isp_monitor-d645e05f2204ef65: examples/isp_monitor.rs

examples/isp_monitor.rs:
