/root/repo/target/debug/examples/isp_monitor-fcd4e34c1f77d398.d: examples/isp_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libisp_monitor-fcd4e34c1f77d398.rmeta: examples/isp_monitor.rs Cargo.toml

examples/isp_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
