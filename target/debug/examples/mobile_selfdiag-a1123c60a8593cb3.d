/root/repo/target/debug/examples/mobile_selfdiag-a1123c60a8593cb3.d: examples/mobile_selfdiag.rs Cargo.toml

/root/repo/target/debug/examples/libmobile_selfdiag-a1123c60a8593cb3.rmeta: examples/mobile_selfdiag.rs Cargo.toml

examples/mobile_selfdiag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
