/root/repo/target/debug/examples/mobile_selfdiag-b1144e37fe4f85c9.d: examples/mobile_selfdiag.rs

/root/repo/target/debug/examples/mobile_selfdiag-b1144e37fe4f85c9: examples/mobile_selfdiag.rs

examples/mobile_selfdiag.rs:
