/root/repo/target/debug/examples/provider_dashboard-a9776c7836d4bedf.d: examples/provider_dashboard.rs

/root/repo/target/debug/examples/provider_dashboard-a9776c7836d4bedf: examples/provider_dashboard.rs

examples/provider_dashboard.rs:
