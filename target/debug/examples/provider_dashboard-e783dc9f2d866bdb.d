/root/repo/target/debug/examples/provider_dashboard-e783dc9f2d866bdb.d: examples/provider_dashboard.rs Cargo.toml

/root/repo/target/debug/examples/libprovider_dashboard-e783dc9f2d866bdb.rmeta: examples/provider_dashboard.rs Cargo.toml

examples/provider_dashboard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
