/root/repo/target/debug/examples/quickstart-5e715fd817a05e2f.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-5e715fd817a05e2f.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
