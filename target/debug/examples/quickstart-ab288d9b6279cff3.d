/root/repo/target/debug/examples/quickstart-ab288d9b6279cff3.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ab288d9b6279cff3: examples/quickstart.rs

examples/quickstart.rs:
