/root/repo/target/release/deps/ablation_classifiers-bb78e469a7ca0a1a.d: crates/bench/benches/ablation_classifiers.rs

/root/repo/target/release/deps/ablation_classifiers-bb78e469a7ca0a1a: crates/bench/benches/ablation_classifiers.rs

crates/bench/benches/ablation_classifiers.rs:
