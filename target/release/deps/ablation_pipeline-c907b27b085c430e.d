/root/repo/target/release/deps/ablation_pipeline-c907b27b085c430e.d: crates/bench/benches/ablation_pipeline.rs

/root/repo/target/release/deps/ablation_pipeline-c907b27b085c430e: crates/bench/benches/ablation_pipeline.rs

crates/bench/benches/ablation_pipeline.rs:
