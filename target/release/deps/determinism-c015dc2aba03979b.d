/root/repo/target/release/deps/determinism-c015dc2aba03979b.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-c015dc2aba03979b: tests/determinism.rs

tests/determinism.rs:
