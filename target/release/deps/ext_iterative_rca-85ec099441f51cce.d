/root/repo/target/release/deps/ext_iterative_rca-85ec099441f51cce.d: crates/bench/benches/ext_iterative_rca.rs

/root/repo/target/release/deps/ext_iterative_rca-85ec099441f51cce: crates/bench/benches/ext_iterative_rca.rs

crates/bench/benches/ext_iterative_rca.rs:
