/root/repo/target/release/deps/ext_multifault-0d48075cfcc421e8.d: crates/bench/benches/ext_multifault.rs

/root/repo/target/release/deps/ext_multifault-0d48075cfcc421e8: crates/bench/benches/ext_multifault.rs

crates/bench/benches/ext_multifault.rs:
