/root/repo/target/release/deps/fig3_detection-abfe9b11455a3b7f.d: crates/bench/benches/fig3_detection.rs

/root/repo/target/release/deps/fig3_detection-abfe9b11455a3b7f: crates/bench/benches/fig3_detection.rs

crates/bench/benches/fig3_detection.rs:
