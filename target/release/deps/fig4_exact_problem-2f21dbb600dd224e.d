/root/repo/target/release/deps/fig4_exact_problem-2f21dbb600dd224e.d: crates/bench/benches/fig4_exact_problem.rs

/root/repo/target/release/deps/fig4_exact_problem-2f21dbb600dd224e: crates/bench/benches/fig4_exact_problem.rs

crates/bench/benches/fig4_exact_problem.rs:
