/root/repo/target/release/deps/fig5_feature_sets-2dd5df0776c99be1.d: crates/bench/benches/fig5_feature_sets.rs

/root/repo/target/release/deps/fig5_feature_sets-2dd5df0776c99be1: crates/bench/benches/fig5_feature_sets.rs

crates/bench/benches/fig5_feature_sets.rs:
