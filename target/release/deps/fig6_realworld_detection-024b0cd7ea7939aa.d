/root/repo/target/release/deps/fig6_realworld_detection-024b0cd7ea7939aa.d: crates/bench/benches/fig6_realworld_detection.rs

/root/repo/target/release/deps/fig6_realworld_detection-024b0cd7ea7939aa: crates/bench/benches/fig6_realworld_detection.rs

crates/bench/benches/fig6_realworld_detection.rs:
