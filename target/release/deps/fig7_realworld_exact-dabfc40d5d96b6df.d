/root/repo/target/release/deps/fig7_realworld_exact-dabfc40d5d96b6df.d: crates/bench/benches/fig7_realworld_exact.rs

/root/repo/target/release/deps/fig7_realworld_exact-dabfc40d5d96b6df: crates/bench/benches/fig7_realworld_exact.rs

crates/bench/benches/fig7_realworld_exact.rs:
