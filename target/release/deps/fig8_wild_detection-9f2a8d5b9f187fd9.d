/root/repo/target/release/deps/fig8_wild_detection-9f2a8d5b9f187fd9.d: crates/bench/benches/fig8_wild_detection.rs

/root/repo/target/release/deps/fig8_wild_detection-9f2a8d5b9f187fd9: crates/bench/benches/fig8_wild_detection.rs

crates/bench/benches/fig8_wild_detection.rs:
