/root/repo/target/release/deps/fig9_server_inference-cc9992d24ddd9187.d: crates/bench/benches/fig9_server_inference.rs

/root/repo/target/release/deps/fig9_server_inference-cc9992d24ddd9187: crates/bench/benches/fig9_server_inference.rs

crates/bench/benches/fig9_server_inference.rs:
