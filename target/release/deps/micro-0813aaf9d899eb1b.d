/root/repo/target/release/deps/micro-0813aaf9d899eb1b.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-0813aaf9d899eb1b: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
