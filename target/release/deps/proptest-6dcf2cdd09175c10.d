/root/repo/target/release/deps/proptest-6dcf2cdd09175c10.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-6dcf2cdd09175c10.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-6dcf2cdd09175c10.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
