/root/repo/target/release/deps/rand-aa6c59f7915da6f5.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-aa6c59f7915da6f5.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-aa6c59f7915da6f5.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
