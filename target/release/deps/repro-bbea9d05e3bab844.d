/root/repo/target/release/deps/repro-bbea9d05e3bab844.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-bbea9d05e3bab844: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
