/root/repo/target/release/deps/repro-c334d10331838903.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-c334d10331838903: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
