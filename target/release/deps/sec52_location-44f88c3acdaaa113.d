/root/repo/target/release/deps/sec52_location-44f88c3acdaaa113.d: crates/bench/benches/sec52_location.rs

/root/repo/target/release/deps/sec52_location-44f88c3acdaaa113: crates/bench/benches/sec52_location.rs

crates/bench/benches/sec52_location.rs:
