/root/repo/target/release/deps/table1_feature_selection-4dae2e0b3244e6f8.d: crates/bench/benches/table1_feature_selection.rs

/root/repo/target/release/deps/table1_feature_selection-4dae2e0b3244e6f8: crates/bench/benches/table1_feature_selection.rs

crates/bench/benches/table1_feature_selection.rs:
