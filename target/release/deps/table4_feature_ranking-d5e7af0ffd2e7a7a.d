/root/repo/target/release/deps/table4_feature_ranking-d5e7af0ffd2e7a7a.d: crates/bench/benches/table4_feature_ranking.rs

/root/repo/target/release/deps/table4_feature_ranking-d5e7af0ffd2e7a7a: crates/bench/benches/table4_feature_ranking.rs

crates/bench/benches/table4_feature_ranking.rs:
