/root/repo/target/release/deps/table5_wild_rootcause-fc5f34d31bef1b0e.d: crates/bench/benches/table5_wild_rootcause.rs

/root/repo/target/release/deps/table5_wild_rootcause-fc5f34d31bef1b0e: crates/bench/benches/table5_wild_rootcause.rs

crates/bench/benches/table5_wild_rootcause.rs:
