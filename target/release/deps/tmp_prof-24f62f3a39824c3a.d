/root/repo/target/release/deps/tmp_prof-24f62f3a39824c3a.d: crates/ml/tests/tmp_prof.rs

/root/repo/target/release/deps/tmp_prof-24f62f3a39824c3a: crates/ml/tests/tmp_prof.rs

crates/ml/tests/tmp_prof.rs:
