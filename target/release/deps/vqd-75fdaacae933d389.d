/root/repo/target/release/deps/vqd-75fdaacae933d389.d: src/bin/vqd.rs

/root/repo/target/release/deps/vqd-75fdaacae933d389: src/bin/vqd.rs

src/bin/vqd.rs:
