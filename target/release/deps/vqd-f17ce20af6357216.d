/root/repo/target/release/deps/vqd-f17ce20af6357216.d: src/lib.rs

/root/repo/target/release/deps/libvqd-f17ce20af6357216.rlib: src/lib.rs

/root/repo/target/release/deps/libvqd-f17ce20af6357216.rmeta: src/lib.rs

src/lib.rs:
