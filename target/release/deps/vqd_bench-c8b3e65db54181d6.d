/root/repo/target/release/deps/vqd_bench-c8b3e65db54181d6.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libvqd_bench-c8b3e65db54181d6.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libvqd_bench-c8b3e65db54181d6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
