/root/repo/target/release/deps/vqd_bench-d22bb226f80cc34b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/vqd_bench-d22bb226f80cc34b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
