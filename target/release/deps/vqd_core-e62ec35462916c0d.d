/root/repo/target/release/deps/vqd_core-e62ec35462916c0d.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/dataset.rs crates/core/src/diagnoser.rs crates/core/src/experiments.rs crates/core/src/iterative.rs crates/core/src/multifault.rs crates/core/src/realworld.rs crates/core/src/scenario.rs crates/core/src/testbed.rs

/root/repo/target/release/deps/libvqd_core-e62ec35462916c0d.rlib: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/dataset.rs crates/core/src/diagnoser.rs crates/core/src/experiments.rs crates/core/src/iterative.rs crates/core/src/multifault.rs crates/core/src/realworld.rs crates/core/src/scenario.rs crates/core/src/testbed.rs

/root/repo/target/release/deps/libvqd_core-e62ec35462916c0d.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/dataset.rs crates/core/src/diagnoser.rs crates/core/src/experiments.rs crates/core/src/iterative.rs crates/core/src/multifault.rs crates/core/src/realworld.rs crates/core/src/scenario.rs crates/core/src/testbed.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/dataset.rs:
crates/core/src/diagnoser.rs:
crates/core/src/experiments.rs:
crates/core/src/iterative.rs:
crates/core/src/multifault.rs:
crates/core/src/realworld.rs:
crates/core/src/scenario.rs:
crates/core/src/testbed.rs:
