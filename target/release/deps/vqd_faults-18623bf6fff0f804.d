/root/repo/target/release/deps/vqd_faults-18623bf6fff0f804.d: crates/faults/src/lib.rs crates/faults/src/background.rs crates/faults/src/fault.rs

/root/repo/target/release/deps/libvqd_faults-18623bf6fff0f804.rlib: crates/faults/src/lib.rs crates/faults/src/background.rs crates/faults/src/fault.rs

/root/repo/target/release/deps/libvqd_faults-18623bf6fff0f804.rmeta: crates/faults/src/lib.rs crates/faults/src/background.rs crates/faults/src/fault.rs

crates/faults/src/lib.rs:
crates/faults/src/background.rs:
crates/faults/src/fault.rs:
