/root/repo/target/release/deps/vqd_features-830074eb5c55ba7d.d: crates/features/src/lib.rs crates/features/src/construct.rs crates/features/src/select.rs

/root/repo/target/release/deps/libvqd_features-830074eb5c55ba7d.rlib: crates/features/src/lib.rs crates/features/src/construct.rs crates/features/src/select.rs

/root/repo/target/release/deps/libvqd_features-830074eb5c55ba7d.rmeta: crates/features/src/lib.rs crates/features/src/construct.rs crates/features/src/select.rs

crates/features/src/lib.rs:
crates/features/src/construct.rs:
crates/features/src/select.rs:
