/root/repo/target/release/deps/vqd_ml-f00028ee2fd202fe.d: crates/ml/src/lib.rs crates/ml/src/cv.rs crates/ml/src/dataset.rs crates/ml/src/discretize.rs crates/ml/src/dtree.rs crates/ml/src/info.rs crates/ml/src/metrics.rs crates/ml/src/nb.rs crates/ml/src/svm.rs

/root/repo/target/release/deps/libvqd_ml-f00028ee2fd202fe.rlib: crates/ml/src/lib.rs crates/ml/src/cv.rs crates/ml/src/dataset.rs crates/ml/src/discretize.rs crates/ml/src/dtree.rs crates/ml/src/info.rs crates/ml/src/metrics.rs crates/ml/src/nb.rs crates/ml/src/svm.rs

/root/repo/target/release/deps/libvqd_ml-f00028ee2fd202fe.rmeta: crates/ml/src/lib.rs crates/ml/src/cv.rs crates/ml/src/dataset.rs crates/ml/src/discretize.rs crates/ml/src/dtree.rs crates/ml/src/info.rs crates/ml/src/metrics.rs crates/ml/src/nb.rs crates/ml/src/svm.rs

crates/ml/src/lib.rs:
crates/ml/src/cv.rs:
crates/ml/src/dataset.rs:
crates/ml/src/discretize.rs:
crates/ml/src/dtree.rs:
crates/ml/src/info.rs:
crates/ml/src/metrics.rs:
crates/ml/src/nb.rs:
crates/ml/src/svm.rs:
