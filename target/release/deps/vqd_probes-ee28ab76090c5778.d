/root/repo/target/release/deps/vqd_probes-ee28ab76090c5778.d: crates/probes/src/lib.rs crates/probes/src/sampler.rs crates/probes/src/tstat.rs crates/probes/src/vantage.rs

/root/repo/target/release/deps/libvqd_probes-ee28ab76090c5778.rlib: crates/probes/src/lib.rs crates/probes/src/sampler.rs crates/probes/src/tstat.rs crates/probes/src/vantage.rs

/root/repo/target/release/deps/libvqd_probes-ee28ab76090c5778.rmeta: crates/probes/src/lib.rs crates/probes/src/sampler.rs crates/probes/src/tstat.rs crates/probes/src/vantage.rs

crates/probes/src/lib.rs:
crates/probes/src/sampler.rs:
crates/probes/src/tstat.rs:
crates/probes/src/vantage.rs:
