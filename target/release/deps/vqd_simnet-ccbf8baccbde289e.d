/root/repo/target/release/deps/vqd_simnet-ccbf8baccbde289e.d: crates/simnet/src/lib.rs crates/simnet/src/engine.rs crates/simnet/src/host.rs crates/simnet/src/ids.rs crates/simnet/src/link.rs crates/simnet/src/medium.rs crates/simnet/src/packet.rs crates/simnet/src/rng.rs crates/simnet/src/stats.rs crates/simnet/src/tcp.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs crates/simnet/src/traffic.rs crates/simnet/src/udp.rs

/root/repo/target/release/deps/libvqd_simnet-ccbf8baccbde289e.rlib: crates/simnet/src/lib.rs crates/simnet/src/engine.rs crates/simnet/src/host.rs crates/simnet/src/ids.rs crates/simnet/src/link.rs crates/simnet/src/medium.rs crates/simnet/src/packet.rs crates/simnet/src/rng.rs crates/simnet/src/stats.rs crates/simnet/src/tcp.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs crates/simnet/src/traffic.rs crates/simnet/src/udp.rs

/root/repo/target/release/deps/libvqd_simnet-ccbf8baccbde289e.rmeta: crates/simnet/src/lib.rs crates/simnet/src/engine.rs crates/simnet/src/host.rs crates/simnet/src/ids.rs crates/simnet/src/link.rs crates/simnet/src/medium.rs crates/simnet/src/packet.rs crates/simnet/src/rng.rs crates/simnet/src/stats.rs crates/simnet/src/tcp.rs crates/simnet/src/time.rs crates/simnet/src/topology.rs crates/simnet/src/traffic.rs crates/simnet/src/udp.rs

crates/simnet/src/lib.rs:
crates/simnet/src/engine.rs:
crates/simnet/src/host.rs:
crates/simnet/src/ids.rs:
crates/simnet/src/link.rs:
crates/simnet/src/medium.rs:
crates/simnet/src/packet.rs:
crates/simnet/src/rng.rs:
crates/simnet/src/stats.rs:
crates/simnet/src/tcp.rs:
crates/simnet/src/time.rs:
crates/simnet/src/topology.rs:
crates/simnet/src/traffic.rs:
crates/simnet/src/udp.rs:
