/root/repo/target/release/deps/vqd_video-5f80db35d15dd09a.d: crates/video/src/lib.rs crates/video/src/catalog.rs crates/video/src/mos.rs crates/video/src/player.rs crates/video/src/server.rs crates/video/src/session.rs

/root/repo/target/release/deps/libvqd_video-5f80db35d15dd09a.rlib: crates/video/src/lib.rs crates/video/src/catalog.rs crates/video/src/mos.rs crates/video/src/player.rs crates/video/src/server.rs crates/video/src/session.rs

/root/repo/target/release/deps/libvqd_video-5f80db35d15dd09a.rmeta: crates/video/src/lib.rs crates/video/src/catalog.rs crates/video/src/mos.rs crates/video/src/player.rs crates/video/src/server.rs crates/video/src/session.rs

crates/video/src/lib.rs:
crates/video/src/catalog.rs:
crates/video/src/mos.rs:
crates/video/src/player.rs:
crates/video/src/server.rs:
crates/video/src/session.rs:
