/root/repo/target/release/deps/vqd_wireless-83945e78ef40ad40.d: crates/wireless/src/lib.rs crates/wireless/src/phy.rs crates/wireless/src/rates.rs crates/wireless/src/wlan.rs

/root/repo/target/release/deps/libvqd_wireless-83945e78ef40ad40.rlib: crates/wireless/src/lib.rs crates/wireless/src/phy.rs crates/wireless/src/rates.rs crates/wireless/src/wlan.rs

/root/repo/target/release/deps/libvqd_wireless-83945e78ef40ad40.rmeta: crates/wireless/src/lib.rs crates/wireless/src/phy.rs crates/wireless/src/rates.rs crates/wireless/src/wlan.rs

crates/wireless/src/lib.rs:
crates/wireless/src/phy.rs:
crates/wireless/src/rates.rs:
crates/wireless/src/wlan.rs:
