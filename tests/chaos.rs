//! Deterministic crash-injection harness: kill the daemon at seeded
//! event boundaries, recover from journal + snapshot, and assert the
//! recovery invariant — the merged output TSV is byte-identical to
//! offline batch diagnosis, every session answered exactly once, for
//! any crash point, shard count and arrival order.
//!
//! Crashes are simulated in-process (`StreamServer::crash` abandons
//! the workers and discards the journal's unflushed tail, exactly
//! what `kill -9` loses); the CI `chaos-smoke` job repeats the same
//! protocol against the release binary with real `kill -9`.

use std::collections::HashSet;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use vqd::prelude::*;

fn fixture() -> &'static (Arc<Diagnoser>, Vec<LabeledRun>) {
    static FIX: OnceLock<(Arc<Diagnoser>, Vec<LabeledRun>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let cfg = CorpusConfig {
            sessions: 24,
            seed: 1789,
            ..Default::default()
        };
        let runs = generate_corpus(&cfg, &Catalog::top100(42));
        let model = Diagnoser::train(
            &to_dataset(&runs, LabelScheme::Exact),
            &DiagnoserConfig::default(),
        );
        (Arc::new(model), runs)
    })
}

/// Deterministic xorshift64* Fisher–Yates, same scheme as `vqd events
/// --shuffle`.
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("vqd-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Offline truth: the sorted result lines `vqd diagnose --batch`
/// would emit for this corpus.
fn offline_lines(model: &Diagnoser, runs: &[LabeledRun]) -> Vec<String> {
    let sessions: Vec<&Vec<(String, f64)>> = runs.iter().map(|r| &r.metrics).collect();
    let batch = model.diagnose_batch(&sessions, 1);
    let mut lines: Vec<String> = (0..runs.len())
        .map(|i| result_line(&i.to_string(), &batch.get(i)))
        .collect();
    lines.sort_unstable();
    lines
}

/// A sink that appends result lines to `path` with one unbuffered
/// `write(2)` per line — durable against `kill -9` the way the CLI's
/// journaling output path is.
fn file_sink(path: &Path) -> impl FnMut(FlushedSession) + Send + 'static {
    let mut f = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap_or_else(|e| panic!("open {}: {e}", path.display()));
    move |fs: FlushedSession| {
        f.write_all(result_line(&fs.session, &fs.diagnosis).as_bytes())
            .unwrap_or_else(|e| panic!("append output: {e}"));
    }
}

struct ChaosOutcome {
    incarnations: usize,
    replayed: u64,
}

/// Run `events` through the daemon, crashing at each crash point (an
/// absolute accepted-event count) and recovering, then finishing
/// gracefully. Returns after asserting the recovery invariant.
fn run_chaos(
    tag: &str,
    shards: usize,
    events: &[ProbeEvent],
    crash_at: &[u64],
    snapshot_every: u64,
    flush_every: u64,
) -> ChaosOutcome {
    let (model, runs) = fixture();
    let base = tmpdir(tag);
    let jdir = base.join("journal");
    let sdir = base.join("snaps");
    let out = base.join("out.tsv");
    let durability = || Durability {
        journal: Some(JournalSpec {
            dir: jdir.clone(),
            segment_bytes: 4096, // small segments: rotation + pruning exercised
            flush_every,
        }),
        snapshots: Some(SnapshotSpec {
            dir: sdir.clone(),
            every_events: snapshot_every,
            keep: 2,
        }),
    };
    let cfg = || ServeConfig {
        shards,
        flush_batch: 5,
        ..ServeConfig::default()
    };

    let mut points = crash_at.iter().copied();
    let mut incarnations = 0;
    let replayed = loop {
        incarnations += 1;
        let (emitted, _) = prepare_output(&out).unwrap();
        let rec = recover_state(&durability(), emitted).unwrap();
        let resume = rec.next_seq;
        assert!(
            resume <= events.len() as u64,
            "journal cannot hold more than was sent"
        );
        let mut server = StreamServer::start(
            Arc::clone(model),
            cfg(),
            durability(),
            Some(rec),
            file_sink(&out),
        )
        .unwrap();
        // The journal seq is the ingest ack: re-feed from `resume`.
        // Group commit means resume may trail the previous crash
        // point; each point is consumed once either way.
        match points.next() {
            Some(crash) => {
                let crash = crash.max(resume);
                for ev in &events[resume as usize..crash as usize] {
                    server.push_event(ev.clone()).unwrap();
                }
                assert_eq!(server.next_seq(), crash, "crash lands on an event boundary");
                server.crash();
            }
            None => {
                for ev in &events[resume as usize..] {
                    server.push_event(ev.clone()).unwrap();
                }
                let report = server.finish().unwrap();
                assert_eq!(report.parse_errors, 0);
                break report.replayed;
            }
        }
    };

    // The invariant: merged output == offline batch, bytes and all,
    // each session exactly once.
    let text = std::fs::read_to_string(&out).unwrap();
    let mut got: Vec<String> = text.lines().map(|l| format!("{l}\n")).collect();
    got.sort_unstable();
    let want = offline_lines(model, runs);
    assert_eq!(
        got.len(),
        want.len(),
        "{tag}: every session answered exactly once (got {} lines, want {})",
        got.len(),
        want.len()
    );
    assert_eq!(got, want, "{tag}: recovered output != offline batch");

    std::fs::remove_dir_all(&base).unwrap();
    ChaosOutcome {
        incarnations,
        replayed,
    }
}

/// The acceptance gate: seeded crash points at shards 1 and 8 over a
/// shuffled-arrival corpus stream.
#[test]
fn crash_recover_equals_offline_at_shards_1_and_8() {
    let (_, runs) = fixture();
    for shards in [1usize, 8] {
        let mut events = corpus_to_events(runs);
        shuffle(&mut events, 0xC0FFEE ^ shards as u64);
        let points = crash_points(0x5EED ^ shards as u64, events.len() as u64, 3);
        assert_eq!(points.len(), 3);
        let outcome = run_chaos(
            &format!("gate-s{shards}"),
            shards,
            &events,
            &points,
            97, // snapshot cadence: several snapshots per run
            7,  // group commit: crashes lose an unflushed tail
        );
        assert_eq!(outcome.incarnations, 4, "3 crashes + 1 graceful run");
    }
}

/// Journal-only recovery (no snapshots would be cut before the first
/// cadence tick): replay-from-zero must carry the whole weight.
#[test]
fn recovery_works_before_any_snapshot_exists() {
    let (_, runs) = fixture();
    let mut events = corpus_to_events(runs);
    shuffle(&mut events, 11);
    // One early crash: long replay, sessions mid-reassembly.
    let points = vec![events.len() as u64 / 10];
    let outcome = run_chaos(
        "early", 3, &events, &points,
        1_000_000, // cadence never fires; only shutdown snapshots
        1,         // strict commit: nothing lost, resume == crash point
    );
    assert_eq!(outcome.incarnations, 2);
    assert!(outcome.replayed > 0, "journal suffix must replay");
}

/// The output file already answers a session whose events replay
/// again: the re-flush must be suppressed, not duplicated. Driven
/// deterministically — a graceful journaled run followed by a
/// `--recover` restart over the same journal and output file, the
/// worst case where *every* journal record replays and *every*
/// session was already answered.
#[test]
fn resent_events_after_recovery_do_not_duplicate_answers() {
    let (model, runs) = fixture();
    let events = corpus_to_events(runs);
    let base = tmpdir("dedup");
    let jdir = base.join("journal");
    let out = base.join("out.tsv");
    let durability = || Durability {
        journal: Some(JournalSpec::new(jdir.clone())),
        snapshots: None, // no snapshot: recovery replays the whole journal
    };
    let cfg = || ServeConfig {
        shards: 2,
        flush_batch: 5,
        ..ServeConfig::default()
    };

    // Incarnation 1: graceful run. Every session is answered in the
    // output and every event is durable in the journal.
    let mut server = StreamServer::start(
        Arc::clone(model),
        cfg(),
        durability(),
        None,
        file_sink(&out),
    )
    .unwrap();
    for ev in events.iter().cloned() {
        server.push_event(ev).unwrap();
    }
    let r1 = server.finish().unwrap();
    assert_eq!(r1.sessions as usize, runs.len());

    // Incarnation 2: the ack to the sender was lost, so the operator
    // restarts with --recover anyway. The full journal replays, every
    // session completes again, and every re-flush must be suppressed —
    // the output file must not change by a byte.
    let before = std::fs::read(&out).unwrap();
    let (emitted, prep) = prepare_output(&out).unwrap();
    assert_eq!(prep.emitted, runs.len());
    let rec = recover_state(&durability(), emitted).unwrap();
    assert_eq!(rec.replay_len(), events.len());
    let server = StreamServer::start(
        Arc::clone(model),
        cfg(),
        durability(),
        Some(rec),
        file_sink(&out),
    )
    .unwrap();
    let r2 = server.finish().unwrap();
    assert_eq!(r2.replayed as usize, events.len());
    assert_eq!(
        r2.suppressed as usize,
        runs.len(),
        "every replayed answer must be suppressed"
    );
    assert_eq!(
        before,
        std::fs::read(&out).unwrap(),
        "output file must not change by a byte"
    );
    let mut got: Vec<String> = String::from_utf8(before)
        .unwrap()
        .lines()
        .map(|l| format!("{l}\n"))
        .collect();
    got.sort_unstable();
    assert_eq!(got, offline_lines(model, runs));
}

/// Restart with a *different* shard count: snapshot state re-routes
/// by id hash, and the invariant still holds.
#[test]
fn recovery_survives_shard_count_changes() {
    let (model, runs) = fixture();
    let mut events = corpus_to_events(runs);
    shuffle(&mut events, 23);
    let base = tmpdir("reshard");
    let jdir = base.join("journal");
    let sdir = base.join("snaps");
    let out = base.join("out.tsv");
    let durability = || Durability {
        journal: Some(JournalSpec {
            dir: jdir.clone(),
            segment_bytes: 4096,
            flush_every: 1,
        }),
        snapshots: Some(SnapshotSpec {
            dir: sdir.clone(),
            every_events: 120,
            keep: 2,
        }),
    };
    let crash = events.len() as u64 / 2;
    // First incarnation: 8 shards, crash midway.
    let rec = recover_state(&durability(), HashSet::new()).unwrap();
    let mut server = StreamServer::start(
        Arc::clone(model),
        ServeConfig {
            shards: 8,
            ..ServeConfig::default()
        },
        durability(),
        Some(rec),
        file_sink(&out),
    )
    .unwrap();
    for ev in &events[..crash as usize] {
        server.push_event(ev.clone()).unwrap();
    }
    server.crash();
    // Second incarnation: 1 shard.
    let (emitted, _) = prepare_output(&out).unwrap();
    let rec = recover_state(&durability(), emitted).unwrap();
    assert_eq!(rec.next_seq, crash);
    let mut server = StreamServer::start(
        Arc::clone(model),
        ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        },
        durability(),
        Some(rec),
        file_sink(&out),
    )
    .unwrap();
    for ev in &events[crash as usize..] {
        server.push_event(ev.clone()).unwrap();
    }
    server.finish().unwrap();

    let text = std::fs::read_to_string(&out).unwrap();
    let mut got: Vec<String> = text.lines().map(|l| format!("{l}\n")).collect();
    got.sort_unstable();
    assert_eq!(got, offline_lines(model, runs), "reshard broke recovery");
    std::fs::remove_dir_all(&base).unwrap();
}

/// `vqd recover`'s engine is strictly read-only and reports the
/// resume point mid-crash.
#[test]
fn inspection_reports_resume_point_without_touching_state() {
    let (model, runs) = fixture();
    let events = corpus_to_events(runs);
    let base = tmpdir("inspect");
    let jdir = base.join("journal");
    let sdir = base.join("snaps");
    let out = base.join("out.tsv");
    let durability = Durability {
        journal: Some(JournalSpec {
            dir: jdir.clone(),
            segment_bytes: 4096,
            flush_every: 1,
        }),
        snapshots: Some(SnapshotSpec {
            dir: sdir.clone(),
            every_events: 100,
            keep: 2,
        }),
    };
    let rec = recover_state(&durability, HashSet::new()).unwrap();
    let mut server = StreamServer::start(
        Arc::clone(model),
        ServeConfig::default(),
        durability.clone(),
        Some(rec),
        file_sink(&out),
    )
    .unwrap();
    let crash = 2 * events.len() as u64 / 3;
    for ev in &events[..crash as usize] {
        server.push_event(ev.clone()).unwrap();
    }
    server.crash();

    let info = inspect_recovery(&jdir, Some(&sdir), Some(&out)).unwrap();
    assert_eq!(info.next_seq, crash, "flush_every=1: ack == crash point");
    assert!(info.snapshot_seq > 0, "cadence must have cut snapshots");
    assert!(info.replay <= crash - info.snapshot_seq.min(crash));
    // Inspection twice in a row sees identical state (read-only).
    let again = inspect_recovery(&jdir, Some(&sdir), Some(&out)).unwrap();
    assert_eq!(again.next_seq, info.next_seq);
    assert_eq!(again.snapshot_seq, info.snapshot_seq);
    assert_eq!(again.emitted, info.emitted);
    std::fs::remove_dir_all(&base).unwrap();
}

/// Overload shedding: past the high-water mark the daemon sheds
/// lowest-value samples, keeps answering every session, and the shed
/// counters say so. (Equality with offline no longer holds for shed
/// sessions — that is the documented trade.)
#[test]
fn shedding_degrades_answers_instead_of_stalling() {
    let (model, runs) = fixture();
    // No end markers: sessions stay resident and buffered samples
    // grow past any small high-water mark.
    let mut events = Vec::new();
    for (i, r) in runs.iter().enumerate() {
        for (j, (name, v)) in r.metrics.iter().enumerate() {
            events.push(ProbeEvent::sample(
                i.to_string(),
                j as u64,
                name.clone(),
                *v,
            ));
        }
    }
    shuffle(&mut events, 5);
    let got: Arc<Mutex<Vec<FlushedSession>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&got);
    let mut server = StreamServer::new(
        Arc::clone(model),
        ServeConfig {
            shards: 2,
            shed: Some(200),
            ..ServeConfig::default()
        },
        move |fs| {
            sink.lock().unwrap_or_else(PoisonError::into_inner).push(fs);
        },
    );
    for ev in events {
        server.push_event(ev).unwrap();
    }
    let report = server.finish().unwrap();
    assert_eq!(
        report.sessions as usize,
        runs.len(),
        "every session answered"
    );
    assert!(report.shed_samples > 0, "high-water of 200 must shed");
    assert!(report.shed_sessions > 0);
    let got = got.lock().unwrap_or_else(PoisonError::into_inner);
    let shed_total: u64 = got.iter().map(|fs| fs.shed).sum();
    assert_eq!(
        shed_total, report.shed_samples,
        "per-session counters add up"
    );
    // Determinism: the same input sheds the same samples.
    let mut events2 = Vec::new();
    for (i, r) in runs.iter().enumerate() {
        for (j, (name, v)) in r.metrics.iter().enumerate() {
            events2.push(ProbeEvent::sample(
                i.to_string(),
                j as u64,
                name.clone(),
                *v,
            ));
        }
    }
    shuffle(&mut events2, 5);
    let got2: Arc<Mutex<Vec<FlushedSession>>> = Arc::new(Mutex::new(Vec::new()));
    let sink2 = Arc::clone(&got2);
    let mut server2 = StreamServer::new(
        Arc::clone(model),
        ServeConfig {
            shards: 2,
            shed: Some(200),
            ..ServeConfig::default()
        },
        move |fs| {
            sink2
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(fs);
        },
    );
    for ev in events2 {
        server2.push_event(ev).unwrap();
    }
    let report2 = server2.finish().unwrap();
    assert_eq!(report.shed_samples, report2.shed_samples);
    let got2 = got2.lock().unwrap_or_else(PoisonError::into_inner);
    let mut a: Vec<String> = got
        .iter()
        .map(|fs| result_line(&fs.session, &fs.diagnosis))
        .collect();
    let mut b: Vec<String> = got2
        .iter()
        .map(|fs| result_line(&fs.session, &fs.diagnosis))
        .collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "shedding must be deterministic");
}
