//! Million-session-scale contracts: the sharded sim farm must merge
//! deterministically, the `.vqdc` binary corpus format must round-trip
//! losslessly (down to NaN payloads and `-0.0` signs) and fail
//! *typed* on corrupt input, and out-of-core training must reproduce
//! the in-memory model bit-for-bit whatever the chunk/spill budget.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use vqd::core::colcodec::{decode_block, encode_block};
use vqd::core::octrain::{train_out_of_core, OocConfig};
use vqd::core::vqdc::{
    corpus_to_vqdc_bytes, corpus_to_vqdc_bytes_with, VqdcIoMode, VqdcReader, VqdcVersion,
    VqdcWriteOptions,
};
use vqd::ml::stream_fit::StreamFitConfig;
use vqd::prelude::*;

fn catalog() -> Catalog {
    Catalog::top100(42)
}

/// Bit-exact fingerprint of a corpus: metric names in order plus the
/// raw IEEE-754 bits of every value (NaN-safe, `-0.0`-safe — stricter
/// than `==`).
fn fingerprint(runs: &[LabeledRun]) -> Vec<(String, u64)> {
    runs.iter()
        .flat_map(|r| r.metrics.iter().map(|(n, v)| (n.clone(), v.to_bits())))
        .collect()
}

/// Write `bytes` to a unique scratch file and return its path.
fn scratch_file(bytes: &[u8]) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "vqd-corpus-scale-{}-{}.vqdc",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, bytes).expect("write scratch corpus");
    path
}

// ---------------------------------------------------------------------
// Farm-merge determinism
// ---------------------------------------------------------------------

#[test]
fn farm_merge_identical_at_widths_1_2_8() {
    let cfg = CorpusConfig {
        sessions: 60,
        seed: 9200,
        p_fault: 0.5,
        ..Default::default()
    };
    let plain = generate_corpus(&cfg, &catalog());
    let want = fingerprint(&plain);
    for width in [1usize, 2, 8] {
        let (runs, stats) = generate_corpus_farm(&cfg, &catalog(), width);
        assert_eq!(stats.width, width);
        assert_eq!(stats.shard_sessions.iter().sum::<usize>(), 60);
        assert_eq!(
            fingerprint(&runs),
            want,
            "farm width {width} diverged from the single-process generator"
        );
        for (a, b) in plain.iter().zip(&runs) {
            assert_eq!(a.truth, b.truth);
        }
    }
}

// ---------------------------------------------------------------------
// Out-of-core training equality
// ---------------------------------------------------------------------

#[test]
fn out_of_core_training_matches_in_memory_at_any_budget() {
    let cfg = CorpusConfig {
        sessions: 50,
        seed: 9300,
        p_fault: 0.6,
        ..Default::default()
    };
    let runs = generate_corpus(&cfg, &catalog());
    let path = scratch_file(&corpus_to_vqdc_bytes(&runs).expect("encode corpus"));
    let reader = VqdcReader::open(&path).expect("open corpus");
    let want = Diagnoser::train(
        &to_dataset(&runs, LabelScheme::Exact),
        &DiagnoserConfig::default(),
    )
    .serialize();
    // Tiny chunk + tiny spill budget forces the external-sort path;
    // the huge budget keeps everything in memory. Same bits either way.
    for (chunk_rows, spill_pairs) in [(3usize, 32usize), (7, 128), (1 << 16, 1 << 22)] {
        let ooc = OocConfig {
            scheme: LabelScheme::Exact,
            fit: StreamFitConfig {
                chunk_rows,
                spill_pairs,
                ..Default::default()
            },
            ..Default::default()
        };
        let (model, report) = train_out_of_core(&reader, &ooc).expect("out-of-core train");
        assert_eq!(report.sessions, 50);
        assert_eq!(
            model.serialize(),
            want,
            "chunk_rows {chunk_rows} / spill_pairs {spill_pairs} changed the model"
        );
    }
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------
// Property tests: lossless round-trip, typed corruption errors
// ---------------------------------------------------------------------

/// Metric-name pool: rows draw ordered subsets so the corpus exercises
/// shape sharing (repeated shapes) and shape diversity (subsets).
const NAME_POOL: [&str; 8] = [
    "mobile.phy.rssi_avg",
    "mobile.hw.cpu_avg",
    "mobile.tcp.rtt",
    "ap.mac.retx",
    "gw.tcp.loss",
    "server.tcp.iat",
    "server.http.rate",
    "mobile.app.buffering_ratio",
];

const FAULTS: [FaultKind; 6] = [
    FaultKind::None,
    FaultKind::WanCongestion,
    FaultKind::LanShaping,
    FaultKind::MobileLoad,
    FaultKind::LowRssi,
    FaultKind::WifiInterference,
];
const QOES: [QoeClass; 3] = [QoeClass::Good, QoeClass::Mild, QoeClass::Severe];

/// Expand one proptest-drawn `(seed, rot, fault, qoe)` tuple into a
/// row. The seed drives a SplitMix64 stream that picks presence and
/// values per cell; values deliberately stress the encoding — raw
/// random bits (which include NaNs, infinities and subnormals) mixed
/// with canonical NaN, payload-carrying NaN, signed zero and
/// subnormal/huge magnitudes. The rotation varies emission order
/// without ever duplicating a name within a row.
fn build_run(spec: &(u64, usize, usize, usize)) -> LabeledRun {
    let (seed, rot, fault, qoe) = *spec;
    let mut rng = SplitMix64::new(seed);
    let mut metrics = Vec::with_capacity(NAME_POOL.len());
    for k in 0..NAME_POOL.len() {
        let i = (k + rot) % NAME_POOL.len();
        if rng.next_u64() & 1 == 0 {
            continue;
        }
        let v = match rng.next_u64() % 8 {
            0..=2 => f64::from_bits(rng.next_u64()),
            3 => f64::NAN,
            4 => f64::from_bits(0x7ff8_0000_dead_beef),
            5 => -0.0,
            6 => f64::MIN_POSITIVE / 2.0,
            _ => f64::NEG_INFINITY,
        };
        metrics.push((NAME_POOL[i].to_string(), v));
    }
    LabeledRun {
        metrics,
        truth: GroundTruth {
            fault: FAULTS[fault % FAULTS.len()],
            qoe: QOES[qoe % QOES.len()],
        },
    }
}

fn build_runs(specs: &[(u64, usize, usize, usize)]) -> Vec<LabeledRun> {
    specs.iter().map(build_run).collect()
}

proptest! {
    /// text → binary → text is the identity, and the reconstructed
    /// runs carry the exact value bits (stricter than text equality).
    #[test]
    fn vqdc_round_trip_is_lossless(
        specs in proptest::collection::vec(
            (any::<u64>(), 0usize..8, 0usize..6, 0usize..3),
            0..12,
        ),
    ) {
        let runs = build_runs(&specs);
        let bytes = corpus_to_vqdc_bytes(&runs).expect("encode");
        let path = scratch_file(&bytes);
        let back = VqdcReader::open(&path).expect("open").to_runs().expect("decode");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back.len(), runs.len());
        for (a, b) in runs.iter().zip(&back) {
            prop_assert_eq!(a.truth, b.truth);
        }
        prop_assert_eq!(fingerprint(&back), fingerprint(&runs));
        prop_assert_eq!(
            vqd::core::dataset::corpus_to_text(&back),
            vqd::core::dataset::corpus_to_text(&runs)
        );
    }

    /// Truncating a valid file anywhere yields a typed error (or, for
    /// prefix-intact truncations caught later, a typed error from the
    /// column reads) — never a panic, never silent data loss.
    #[test]
    fn vqdc_truncation_never_panics(
        specs in proptest::collection::vec(
            (any::<u64>(), 0usize..8, 0usize..6, 0usize..3),
            1..6,
        ),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = corpus_to_vqdc_bytes(&build_runs(&specs)).expect("encode");
        let cut = cut.index(bytes.len());
        let path = scratch_file(&bytes[..cut]);
        match VqdcReader::open(&path) {
            Err(VqdError::BinCorpus { .. } | VqdError::Io { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error type: {e}"),
            Ok(reader) => {
                // Open-time checks passed on the surviving prefix; the
                // checksummed full read must still refuse the file.
                prop_assert!(reader.to_runs().is_err(), "truncated file decoded cleanly");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Flipping any single byte yields a typed error at open or a
    /// checksum failure on read — never a panic.
    #[test]
    fn vqdc_bitflip_never_panics(
        specs in proptest::collection::vec(
            (any::<u64>(), 0usize..8, 0usize..6, 0usize..3),
            1..6,
        ),
        at in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = corpus_to_vqdc_bytes(&build_runs(&specs)).expect("encode");
        let at = at.index(bytes.len());
        bytes[at] ^= flip;
        let path = scratch_file(&bytes);
        if let Ok(reader) = VqdcReader::open(&path) {
            // A flip the header checks missed must be caught by the
            // column checksums or decode cleanly if it only disturbed
            // redundancy the open re-derives; either way: no panic.
            let _ = reader.to_runs();
            let _ = reader.verify();
        }
        std::fs::remove_file(&path).ok();
    }

    /// The v2 container under every option set: round-trips are
    /// lossless at any block geometry, and the mmap and pread read
    /// paths return the identical value bits for every column.
    #[test]
    fn vqdc2_round_trip_and_io_backends_agree(
        specs in proptest::collection::vec(
            (any::<u64>(), 0usize..8, 0usize..6, 0usize..3),
            0..12,
        ),
        block_rows in 1u32..16,
        compress in any::<bool>(),
    ) {
        let runs = build_runs(&specs);
        let opts = VqdcWriteOptions { version: VqdcVersion::V2, block_rows, compress };
        let bytes = corpus_to_vqdc_bytes_with(&runs, &opts).expect("encode v2");
        let path = scratch_file(&bytes);
        let pread = VqdcReader::open_with(&path, VqdcIoMode::Pread).expect("open pread");
        let auto = VqdcReader::open_with(&path, VqdcIoMode::Auto).expect("open auto");
        let back = auto.to_runs().expect("decode v2");
        prop_assert_eq!(fingerprint(&back), fingerprint(&runs));
        let n = pread.n_rows();
        for j in 0..pread.feature_names().len() {
            let mut a = vec![0.0f64; n];
            let mut b = vec![0.0f64; n];
            pread.fill_column(j, 0, &mut a).expect("pread column");
            auto.fill_column(j, 0, &mut b).expect("auto column");
            let abits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let bbits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(abits, bbits, "column {} diverged between backends", j);
        }
        std::fs::remove_file(&path).ok();
    }

    /// v2 corruption: any single-byte flip anywhere (block data, block
    /// directory, trailer) is a typed error or a clean decode of
    /// re-derivable redundancy — never a panic, at any geometry.
    #[test]
    fn vqdc2_bitflip_never_panics(
        specs in proptest::collection::vec(
            (any::<u64>(), 0usize..8, 0usize..6, 0usize..3),
            1..6,
        ),
        block_rows in 1u32..8,
        at in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let opts = VqdcWriteOptions { version: VqdcVersion::V2, block_rows, compress: true };
        let mut bytes = corpus_to_vqdc_bytes_with(&build_runs(&specs), &opts).expect("encode");
        let at = at.index(bytes.len());
        bytes[at] ^= flip;
        let path = scratch_file(&bytes);
        if let Ok(reader) = VqdcReader::open(&path) {
            let _ = reader.to_runs();
            let _ = reader.verify();
        }
        std::fs::remove_file(&path).ok();
    }

    /// v2 truncation (which can land inside compressed blocks, the
    /// block directory or the trailer): typed error at open or on the
    /// first checksummed read.
    #[test]
    fn vqdc2_truncation_never_panics(
        specs in proptest::collection::vec(
            (any::<u64>(), 0usize..8, 0usize..6, 0usize..3),
            1..6,
        ),
        cut in any::<prop::sample::Index>(),
    ) {
        let opts = VqdcWriteOptions::default();
        let bytes = corpus_to_vqdc_bytes_with(&build_runs(&specs), &opts).expect("encode");
        let cut = cut.index(bytes.len());
        let path = scratch_file(&bytes[..cut]);
        match VqdcReader::open(&path) {
            Err(VqdError::BinCorpus { .. } | VqdError::Io { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error type: {e}"),
            Ok(reader) => {
                prop_assert!(reader.to_runs().is_err(), "truncated v2 file decoded cleanly");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// The column codec alone: encode/decode is the bit-exact identity
    /// over adversarial cells (raw random bits — including NaNs with
    /// payloads, infinities, subnormals — plus signed zeros and runs of
    /// repeats), compressed or not.
    #[test]
    fn column_codec_round_trips_bit_exactly(
        draws in proptest::collection::vec((any::<u64>(), 0usize..7), 0..300),
        compress in any::<bool>(),
    ) {
        // Each draw picks a raw bit pattern or one of the adversarial
        // special values (payload NaN, signed zero, infinities).
        let cells: Vec<u64> = draws
            .iter()
            .map(|&(bits, sel)| match sel {
                0 | 1 => bits,
                2 => f64::NAN.to_bits(),
                3 => 0x7ff8_0000_dead_beef_u64,
                4 => (-0.0f64).to_bits(),
                5 => f64::INFINITY.to_bits(),
                _ => f64::NEG_INFINITY.to_bits(),
            })
            .collect();
        let mut enc = Vec::new();
        let codec = encode_block(&cells, compress, &mut enc);
        let mut out = Vec::new();
        decode_block(codec, &enc, cells.len(), &mut out).expect("decode own encoding");
        prop_assert_eq!(out, cells);
    }

    /// Constant columns (the NaN-filler case that dominates sparse
    /// corpora) must round-trip and actually compress.
    #[test]
    fn constant_columns_collapse(bits in any::<u64>(), n in 65usize..2048) {
        let cells = vec![bits; n];
        let mut enc = Vec::new();
        let codec = encode_block(&cells, true, &mut enc);
        let mut out = Vec::new();
        decode_block(codec, &enc, n, &mut out).expect("decode");
        prop_assert_eq!(out, cells);
        prop_assert!(
            enc.len() < n * 8 / 4,
            "constant run of {} cells only reached {} bytes",
            n,
            enc.len()
        );
    }

    /// Corrupt *codec streams* (truncated or bit-flipped after a valid
    /// encode) are typed `Err`s from `decode_block`, never panics.
    #[test]
    fn corrupt_codec_streams_never_panic(
        cells in proptest::collection::vec(any::<u64>(), 1..200),
        cut in any::<prop::sample::Index>(),
        flip in 1u8..=255,
        at in any::<prop::sample::Index>(),
    ) {
        let mut enc = Vec::new();
        let codec = encode_block(&cells, true, &mut enc);
        let mut out = Vec::new();
        // Truncation at every possible length.
        let cut = cut.index(enc.len() + 1);
        if cut < enc.len() {
            let _ = decode_block(codec, &enc[..cut], cells.len(), &mut out);
        }
        // A single-byte flip: either a typed error or a clean decode
        // of some other valid stream — but never a panic, and never a
        // wrong-length output on Ok.
        let mut flipped = enc.clone();
        let at = at.index(flipped.len());
        flipped[at] ^= flip;
        out.clear();
        if decode_block(codec, &flipped, cells.len(), &mut out).is_ok() {
            prop_assert_eq!(out.len(), cells.len());
        }
    }
}

// ---------------------------------------------------------------------
// Multi-process farm and CLI-level determinism
// ---------------------------------------------------------------------

/// Run the vqd binary with `args`, panicking with its stderr on
/// nonzero exit.
fn vqd_cli(args: &[&str]) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_vqd"))
        .args(args)
        .output()
        .expect("spawn vqd");
    assert!(
        out.status.success(),
        "vqd {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn scratch_path(name: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "vqd-cs-cli-{}-{}-{name}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The multi-process farm writes the identical bytes as the
/// in-process farm and the plain generator — at 1 and 2 worker
/// processes, for both output formats.
#[test]
fn multiproc_farm_output_is_byte_identical() {
    for ext in ["tsv", "vqdc"] {
        let plain = scratch_path(&format!("plain.{ext}"));
        vqd_cli(&[
            "corpus",
            "--sessions",
            "30",
            "--seed",
            "77",
            "--out",
            &plain.to_string_lossy(),
        ]);
        let want = std::fs::read(&plain).expect("read plain corpus");
        for procs in ["1", "2", "3"] {
            let out = scratch_path(&format!("procs{procs}.{ext}"));
            vqd_cli(&[
                "corpus",
                "--sessions",
                "30",
                "--seed",
                "77",
                "--farm",
                "4",
                "--procs",
                procs,
                "--out",
                &out.to_string_lossy(),
            ]);
            let got = std::fs::read(&out).expect("read farm corpus");
            assert_eq!(got, want, "--procs {procs} changed the {ext} output bytes");
            std::fs::remove_file(&out).ok();
        }
        std::fs::remove_file(&plain).ok();
    }
}

/// A crashed worker process surfaces as `VqdError::Farm` naming the
/// session sub-range it owned.
#[test]
fn crashed_farm_worker_is_a_typed_error_naming_its_range() {
    use vqd::prelude::{generate_corpus_multiproc, ProcFarmConfig, VqdcWriteOptions};
    let cfg = CorpusConfig {
        sessions: 10,
        seed: 3,
        ..Default::default()
    };
    let pf = ProcFarmConfig {
        // A binary that exits nonzero no matter the args.
        exe: std::path::PathBuf::from("/bin/false"),
        procs: 2,
        width: 2,
        shard_dir: None,
    };
    let out = scratch_path("crash.vqdc");
    let err = generate_corpus_multiproc(&cfg, &pf, &out, &VqdcWriteOptions::default())
        .expect_err("worker crash must fail the farm");
    match &err {
        VqdError::Farm { start, len, .. } => {
            assert_eq!(
                (*start, *len),
                (0, 5),
                "range must name the first failed shard"
            );
        }
        other => panic!("expected VqdError::Farm, got: {other}"),
    }
    let msg = err.to_string();
    assert!(
        msg.contains("sessions 0..5"),
        "error must name the seed sub-range: {msg}"
    );
    std::fs::remove_file(&out).ok();
}

/// `corpus convert` moves v1 → v2 → v1 with byte-identical v1 files
/// and text-identical content at every hop.
#[test]
fn convert_round_trips_between_versions() {
    let v1 = scratch_path("v1.vqdc");
    vqd_cli(&[
        "corpus",
        "--sessions",
        "25",
        "--seed",
        "55",
        "--format",
        "v1",
        "--out",
        &v1.to_string_lossy(),
    ]);
    let v1_bytes = std::fs::read(&v1).expect("read v1");
    assert_eq!(&v1_bytes[..8], b"VQDCORP1");
    let v2 = scratch_path("v2.vqdc");
    vqd_cli(&[
        "corpus",
        "convert",
        "--in",
        &v1.to_string_lossy(),
        "--format",
        "v2",
        "--out",
        &v2.to_string_lossy(),
    ]);
    let v2_bytes = std::fs::read(&v2).expect("read v2");
    assert_eq!(&v2_bytes[..8], b"VQDCORP2");
    assert!(
        v2_bytes.len() < v1_bytes.len(),
        "v2 ({}) must compress below v1 ({})",
        v2_bytes.len(),
        v1_bytes.len()
    );
    let back = scratch_path("back.vqdc");
    vqd_cli(&[
        "corpus",
        "convert",
        "--in",
        &v2.to_string_lossy(),
        "--format",
        "v1",
        "--out",
        &back.to_string_lossy(),
    ]);
    assert_eq!(
        std::fs::read(&back).expect("read round-trip"),
        v1_bytes,
        "v1 -> v2 -> v1 must reproduce the original file bytes"
    );
    for p in [v1, v2, back] {
        std::fs::remove_file(&p).ok();
    }
}

/// `events --shuffle` and `diagnose --batch --shuffle` must emit the
/// identical bytes at any `--shuffle-mem` budget (the external
/// shuffle's order depends only on seed and count).
#[test]
fn cli_shuffle_order_is_budget_independent() {
    let corpus = scratch_path("shuf.tsv");
    vqd_cli(&[
        "corpus",
        "--sessions",
        "20",
        "--seed",
        "21",
        "--out",
        &corpus.to_string_lossy(),
    ]);
    let model = scratch_path("shuf-model.vqd");
    vqd_cli(&[
        "train",
        "--corpus",
        &corpus.to_string_lossy(),
        "--labels",
        "exact",
        "--out",
        &model.to_string_lossy(),
    ]);
    let mut events_outputs = Vec::new();
    let mut diag_outputs = Vec::new();
    for budget in ["3", "1048576"] {
        let ev = scratch_path(&format!("events-{budget}.jsonl"));
        vqd_cli(&[
            "events",
            "--corpus",
            &corpus.to_string_lossy(),
            "--shuffle",
            "6",
            "--shuffle-mem",
            budget,
            "--ts",
            "0.5",
            "--out",
            &ev.to_string_lossy(),
        ]);
        events_outputs.push(std::fs::read(&ev).expect("read events"));
        std::fs::remove_file(&ev).ok();
        let dg = scratch_path(&format!("diag-{budget}.tsv"));
        vqd_cli(&[
            "diagnose",
            "--model",
            &model.to_string_lossy(),
            "--batch",
            &corpus.to_string_lossy(),
            "--shuffle",
            "6",
            "--shuffle-mem",
            budget,
            "--out",
            &dg.to_string_lossy(),
        ]);
        diag_outputs.push(std::fs::read(&dg).expect("read diagnoses"));
        std::fs::remove_file(&dg).ok();
    }
    assert_eq!(
        events_outputs[0], events_outputs[1],
        "events --shuffle order changed with the memory budget"
    );
    assert_eq!(
        diag_outputs[0], diag_outputs[1],
        "diagnose --shuffle order changed with the memory budget"
    );
    assert!(!events_outputs[0].is_empty());
    std::fs::remove_file(&corpus).ok();
    std::fs::remove_file(&model).ok();
}
