//! Million-session-scale contracts: the sharded sim farm must merge
//! deterministically, the `.vqdc` binary corpus format must round-trip
//! losslessly (down to NaN payloads and `-0.0` signs) and fail
//! *typed* on corrupt input, and out-of-core training must reproduce
//! the in-memory model bit-for-bit whatever the chunk/spill budget.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use vqd::core::octrain::{train_out_of_core, OocConfig};
use vqd::core::vqdc::{corpus_to_vqdc_bytes, VqdcReader};
use vqd::ml::stream_fit::StreamFitConfig;
use vqd::prelude::*;

fn catalog() -> Catalog {
    Catalog::top100(42)
}

/// Bit-exact fingerprint of a corpus: metric names in order plus the
/// raw IEEE-754 bits of every value (NaN-safe, `-0.0`-safe — stricter
/// than `==`).
fn fingerprint(runs: &[LabeledRun]) -> Vec<(String, u64)> {
    runs.iter()
        .flat_map(|r| r.metrics.iter().map(|(n, v)| (n.clone(), v.to_bits())))
        .collect()
}

/// Write `bytes` to a unique scratch file and return its path.
fn scratch_file(bytes: &[u8]) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "vqd-corpus-scale-{}-{}.vqdc",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, bytes).expect("write scratch corpus");
    path
}

// ---------------------------------------------------------------------
// Farm-merge determinism
// ---------------------------------------------------------------------

#[test]
fn farm_merge_identical_at_widths_1_2_8() {
    let cfg = CorpusConfig {
        sessions: 60,
        seed: 9200,
        p_fault: 0.5,
        ..Default::default()
    };
    let plain = generate_corpus(&cfg, &catalog());
    let want = fingerprint(&plain);
    for width in [1usize, 2, 8] {
        let (runs, stats) = generate_corpus_farm(&cfg, &catalog(), width);
        assert_eq!(stats.width, width);
        assert_eq!(stats.shard_sessions.iter().sum::<usize>(), 60);
        assert_eq!(
            fingerprint(&runs),
            want,
            "farm width {width} diverged from the single-process generator"
        );
        for (a, b) in plain.iter().zip(&runs) {
            assert_eq!(a.truth, b.truth);
        }
    }
}

// ---------------------------------------------------------------------
// Out-of-core training equality
// ---------------------------------------------------------------------

#[test]
fn out_of_core_training_matches_in_memory_at_any_budget() {
    let cfg = CorpusConfig {
        sessions: 50,
        seed: 9300,
        p_fault: 0.6,
        ..Default::default()
    };
    let runs = generate_corpus(&cfg, &catalog());
    let path = scratch_file(&corpus_to_vqdc_bytes(&runs).expect("encode corpus"));
    let reader = VqdcReader::open(&path).expect("open corpus");
    let want = Diagnoser::train(
        &to_dataset(&runs, LabelScheme::Exact),
        &DiagnoserConfig::default(),
    )
    .serialize();
    // Tiny chunk + tiny spill budget forces the external-sort path;
    // the huge budget keeps everything in memory. Same bits either way.
    for (chunk_rows, spill_pairs) in [(3usize, 32usize), (7, 128), (1 << 16, 1 << 22)] {
        let ooc = OocConfig {
            scheme: LabelScheme::Exact,
            fit: StreamFitConfig {
                chunk_rows,
                spill_pairs,
                ..Default::default()
            },
            ..Default::default()
        };
        let (model, report) = train_out_of_core(&reader, &ooc).expect("out-of-core train");
        assert_eq!(report.sessions, 50);
        assert_eq!(
            model.serialize(),
            want,
            "chunk_rows {chunk_rows} / spill_pairs {spill_pairs} changed the model"
        );
    }
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------
// Property tests: lossless round-trip, typed corruption errors
// ---------------------------------------------------------------------

/// Metric-name pool: rows draw ordered subsets so the corpus exercises
/// shape sharing (repeated shapes) and shape diversity (subsets).
const NAME_POOL: [&str; 8] = [
    "mobile.phy.rssi_avg",
    "mobile.hw.cpu_avg",
    "mobile.tcp.rtt",
    "ap.mac.retx",
    "gw.tcp.loss",
    "server.tcp.iat",
    "server.http.rate",
    "mobile.app.buffering_ratio",
];

const FAULTS: [FaultKind; 6] = [
    FaultKind::None,
    FaultKind::WanCongestion,
    FaultKind::LanShaping,
    FaultKind::MobileLoad,
    FaultKind::LowRssi,
    FaultKind::WifiInterference,
];
const QOES: [QoeClass; 3] = [QoeClass::Good, QoeClass::Mild, QoeClass::Severe];

/// Expand one proptest-drawn `(seed, rot, fault, qoe)` tuple into a
/// row. The seed drives a SplitMix64 stream that picks presence and
/// values per cell; values deliberately stress the encoding — raw
/// random bits (which include NaNs, infinities and subnormals) mixed
/// with canonical NaN, payload-carrying NaN, signed zero and
/// subnormal/huge magnitudes. The rotation varies emission order
/// without ever duplicating a name within a row.
fn build_run(spec: &(u64, usize, usize, usize)) -> LabeledRun {
    let (seed, rot, fault, qoe) = *spec;
    let mut rng = SplitMix64::new(seed);
    let mut metrics = Vec::with_capacity(NAME_POOL.len());
    for k in 0..NAME_POOL.len() {
        let i = (k + rot) % NAME_POOL.len();
        if rng.next_u64() & 1 == 0 {
            continue;
        }
        let v = match rng.next_u64() % 8 {
            0..=2 => f64::from_bits(rng.next_u64()),
            3 => f64::NAN,
            4 => f64::from_bits(0x7ff8_0000_dead_beef),
            5 => -0.0,
            6 => f64::MIN_POSITIVE / 2.0,
            _ => f64::NEG_INFINITY,
        };
        metrics.push((NAME_POOL[i].to_string(), v));
    }
    LabeledRun {
        metrics,
        truth: GroundTruth {
            fault: FAULTS[fault % FAULTS.len()],
            qoe: QOES[qoe % QOES.len()],
        },
    }
}

fn build_runs(specs: &[(u64, usize, usize, usize)]) -> Vec<LabeledRun> {
    specs.iter().map(build_run).collect()
}

proptest! {
    /// text → binary → text is the identity, and the reconstructed
    /// runs carry the exact value bits (stricter than text equality).
    #[test]
    fn vqdc_round_trip_is_lossless(
        specs in proptest::collection::vec(
            (any::<u64>(), 0usize..8, 0usize..6, 0usize..3),
            0..12,
        ),
    ) {
        let runs = build_runs(&specs);
        let bytes = corpus_to_vqdc_bytes(&runs).expect("encode");
        let path = scratch_file(&bytes);
        let back = VqdcReader::open(&path).expect("open").to_runs().expect("decode");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back.len(), runs.len());
        for (a, b) in runs.iter().zip(&back) {
            prop_assert_eq!(a.truth, b.truth);
        }
        prop_assert_eq!(fingerprint(&back), fingerprint(&runs));
        prop_assert_eq!(
            vqd::core::dataset::corpus_to_text(&back),
            vqd::core::dataset::corpus_to_text(&runs)
        );
    }

    /// Truncating a valid file anywhere yields a typed error (or, for
    /// prefix-intact truncations caught later, a typed error from the
    /// column reads) — never a panic, never silent data loss.
    #[test]
    fn vqdc_truncation_never_panics(
        specs in proptest::collection::vec(
            (any::<u64>(), 0usize..8, 0usize..6, 0usize..3),
            1..6,
        ),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = corpus_to_vqdc_bytes(&build_runs(&specs)).expect("encode");
        let cut = cut.index(bytes.len());
        let path = scratch_file(&bytes[..cut]);
        match VqdcReader::open(&path) {
            Err(VqdError::BinCorpus { .. } | VqdError::Io { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error type: {e}"),
            Ok(reader) => {
                // Open-time checks passed on the surviving prefix; the
                // checksummed full read must still refuse the file.
                prop_assert!(reader.to_runs().is_err(), "truncated file decoded cleanly");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Flipping any single byte yields a typed error at open or a
    /// checksum failure on read — never a panic.
    #[test]
    fn vqdc_bitflip_never_panics(
        specs in proptest::collection::vec(
            (any::<u64>(), 0usize..8, 0usize..6, 0usize..3),
            1..6,
        ),
        at in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = corpus_to_vqdc_bytes(&build_runs(&specs)).expect("encode");
        let at = at.index(bytes.len());
        bytes[at] ^= flip;
        let path = scratch_file(&bytes);
        if let Ok(reader) = VqdcReader::open(&path) {
            // A flip the header checks missed must be caught by the
            // column checksums or decode cleanly if it only disturbed
            // redundancy the open re-derives; either way: no panic.
            let _ = reader.to_runs();
            let _ = reader.verify();
        }
        std::fs::remove_file(&path).ok();
    }
}
