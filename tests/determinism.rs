//! Determinism regression tests: every parallel stage of the pipeline
//! must produce byte-identical results regardless of worker-thread
//! count, and the columnar pre-sorted C4.5 engine must reproduce the
//! seed implementation's trees exactly.
//!
//! Corpus generation fans sessions out across OS threads, and tree
//! training fans the per-node split search out across features; both
//! merge results back in deterministic index order. These tests pin
//! that contract: 1 thread and 8 threads are indistinguishable from
//! the outside, down to the last bit of every float.

use std::sync::OnceLock;

use vqd::ml::dtree::{C45Config, C45Trainer};
use vqd::prelude::*;

fn catalog() -> Catalog {
    Catalog::top100(42)
}

fn corpus_with_threads(threads: usize) -> Vec<LabeledRun> {
    let cfg = CorpusConfig {
        sessions: 500,
        seed: 9100,
        p_fault: 0.6,
        threads,
        ..Default::default()
    };
    generate_corpus(&cfg, &catalog())
}

/// The 500-session corpus shared by the tests below (generated once,
/// with 8 worker threads).
fn corpus() -> &'static Vec<LabeledRun> {
    static CORPUS: OnceLock<Vec<LabeledRun>> = OnceLock::new();
    CORPUS.get_or_init(|| corpus_with_threads(8))
}

/// Bit-exact fingerprint of a corpus: metric names in order plus the
/// raw IEEE-754 bits of every value (NaN-safe, `-0.0`-safe — stricter
/// than `==`).
fn fingerprint(runs: &[LabeledRun]) -> Vec<(String, u64)> {
    runs.iter()
        .flat_map(|r| r.metrics.iter().map(|(n, v)| (n.clone(), v.to_bits())))
        .collect()
}

#[test]
fn corpus_identical_across_thread_counts() {
    let one = corpus_with_threads(1);
    let eight = corpus();
    assert_eq!(one.len(), eight.len());
    for (a, b) in one.iter().zip(eight.iter()) {
        assert_eq!(a.truth, b.truth);
    }
    assert_eq!(fingerprint(&one), fingerprint(eight));
}

#[test]
fn trained_diagnoser_identical_across_thread_counts() {
    let data = to_dataset(corpus(), LabelScheme::Exact);
    let serialized: Vec<String> = [1usize, 8]
        .iter()
        .map(|&threads| {
            let mut cfg = DiagnoserConfig::default();
            cfg.tree.threads = threads;
            Diagnoser::train(&data, &cfg).serialize()
        })
        .collect();
    assert_eq!(serialized[0], serialized[1]);
}

/// Observability must be write-only: enabling metrics and span
/// tracing cannot change a single bit of the corpus or the trained
/// model, at any worker-thread count.
#[test]
fn corpus_and_model_identical_with_observability_on_and_off() {
    let make = |threads: usize| {
        let cfg = CorpusConfig {
            sessions: 120,
            seed: 4242,
            p_fault: 0.6,
            threads,
            ..Default::default()
        };
        let runs = generate_corpus(&cfg, &catalog());
        let mut dcfg = DiagnoserConfig::default();
        dcfg.tree.threads = threads;
        let model = Diagnoser::train(&to_dataset(&runs, LabelScheme::Exact), &dcfg);
        (corpus_to_text(&runs), model.serialize())
    };

    vqd_obs::disable();
    let (c_off_1, m_off_1) = make(1);
    let (c_off_8, m_off_8) = make(8);

    vqd_obs::enable_tracing();
    let (c_on_1, m_on_1) = make(1);
    let (c_on_8, m_on_8) = make(8);
    let spans = vqd_obs::take_spans();
    let snap = vqd_obs::snapshot();
    vqd_obs::disable();

    // Recording actually happened while enabled...
    assert!(!spans.is_empty(), "tracing collected no spans");
    assert!(snap.counter("core.corpus.sessions") >= 240);
    // ...and perturbed nothing.
    assert_eq!(c_off_1, c_on_1, "1 thread: recording changed the corpus");
    assert_eq!(c_off_8, c_on_8, "8 threads: recording changed the corpus");
    assert_eq!(c_off_1, c_off_8, "thread count changed the corpus");
    assert_eq!(m_off_1, m_on_1, "1 thread: recording changed the model");
    assert_eq!(m_off_8, m_on_8, "8 threads: recording changed the model");
    assert_eq!(m_off_1, m_off_8, "thread count changed the model");
}

#[test]
fn columnar_fit_matches_seed_reference() {
    // The raw exact-label dataset has missing vantage points (NaNs),
    // so this exercises both the unit-weight fast sweep and the
    // fractional-weight generic sweep of the columnar engine.
    let data = to_dataset(corpus(), LabelScheme::Exact);
    let rows: Vec<usize> = (0..data.len()).collect();
    for unpruned in [false, true] {
        for threads in [1usize, 8] {
            let trainer = C45Trainer {
                cfg: C45Config {
                    threads,
                    unpruned,
                    ..Default::default()
                },
            };
            assert_eq!(
                trainer.fit(&data, &rows).serialize(),
                trainer.fit_seed_reference(&data, &rows).serialize(),
                "unpruned={unpruned} threads={threads}"
            );
        }
    }
}
