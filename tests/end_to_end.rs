//! Cross-crate integration tests: the full pipeline from packet-level
//! simulation to root-cause diagnosis.

use vqd::prelude::*;

fn catalog() -> Catalog {
    Catalog::top100(42)
}

fn small_corpus(sessions: usize, seed: u64) -> Vec<LabeledRun> {
    let cfg = CorpusConfig {
        sessions,
        seed,
        p_fault: 0.6,
        p_mobile_wan: 0.25,
        ..Default::default()
    };
    generate_corpus(&cfg, &catalog())
}

#[test]
fn train_on_lab_diagnose_fresh_sessions() {
    let corpus = small_corpus(160, 1000);
    let data = to_dataset(&corpus, LabelScheme::Exact);
    let model = Diagnoser::train(&data, &DiagnoserConfig::default());

    // Fresh, severe, unambiguous faults must be attributed to the right
    // *family* (fault kind, severity aside).
    let mut family_hits = 0;
    // 0.85 for low RSSI keeps the station associated-but-degraded (a
    // fully disconnected phone produces almost no transport evidence).
    let cases = [
        (FaultKind::MobileLoad, 0.92),
        (FaultKind::LowRssi, 0.85),
        (FaultKind::WanCongestion, 0.92),
    ];
    for (i, (kind, intensity)) in cases.iter().enumerate() {
        let spec = SessionSpec {
            seed: 77_000 + i as u64,
            fault: FaultPlan {
                kind: *kind,
                intensity: *intensity,
            },
            background: 0.3,
            wan: WanProfile::Dsl,
        };
        let session = run_controlled_session(&spec, &catalog());
        let dx = model.diagnose(&session.metrics);
        if dx.label.starts_with(kind.name()) {
            family_hits += 1;
        }
    }
    assert!(
        family_hits >= 2,
        "only {family_hits}/3 severe faults attributed correctly"
    );
}

#[test]
fn existence_detection_beats_majority_baseline() {
    let corpus = small_corpus(200, 2000);
    let data = to_dataset(&corpus, LabelScheme::Existence);
    let cm = Diagnoser::cross_validate(&data, &DiagnoserConfig::default(), 10, 1);
    let majority = data.class_counts().into_iter().max().unwrap() as f64 / data.len() as f64;
    assert!(
        cm.accuracy() > majority + 0.03,
        "accuracy {:.3} must beat majority {:.3}",
        cm.accuracy(),
        majority
    );
}

#[test]
fn vantage_point_subsets_all_work() {
    let corpus = small_corpus(150, 3000);
    let data = to_dataset(&corpus, LabelScheme::Existence);
    for (name, vps) in VP_SETS {
        let sub = data.select_features_by(|n| vps.iter().any(|vp| n.starts_with(vp)));
        assert!(
            sub.n_features() > 20,
            "{name}: {} features",
            sub.n_features()
        );
        let cm = Diagnoser::cross_validate(&sub, &DiagnoserConfig::default(), 10, 1);
        assert!(cm.accuracy() > 0.5, "{name}: accuracy {:.2}", cm.accuracy());
    }
}

#[test]
fn lab_model_transfers_to_wild_sessions() {
    let corpus = small_corpus(160, 4000);
    let data = to_dataset(&corpus, LabelScheme::Existence);
    let model = Diagnoser::train(&data, &DiagnoserConfig::default());
    let wild = generate_wild(
        &RealWorldConfig {
            sessions: 40,
            seed: 5000,
            threads: 0,
        },
        &catalog(),
    );
    let runs: Vec<LabeledRun> = wild.into_iter().map(|r| r.run).collect();
    let cm = eval_transfer(&model, &runs, LabelScheme::Existence, None);
    assert!(cm.total() >= 38);
    assert!(
        cm.accuracy() > 0.6,
        "wild transfer accuracy {:.2}",
        cm.accuracy()
    );
}

#[test]
fn severity_tracks_intensity() {
    // The same fault at higher intensity must never yield a *better*
    // QoE class (monotone in expectation; we check two far-apart
    // points on a few seeds to avoid flakiness).
    let order = |q: QoeClass| match q {
        QoeClass::Good => 0,
        QoeClass::Mild => 1,
        QoeClass::Severe => 2,
    };
    let mut violations = 0;
    let mut checks = 0;
    for seed in [1u64, 2, 3] {
        for kind in [FaultKind::WanShaping, FaultKind::MobileLoad] {
            let run = |intensity: f64| {
                let spec = SessionSpec {
                    seed: 88_000 + seed,
                    fault: FaultPlan { kind, intensity },
                    background: 0.2,
                    wan: WanProfile::Dsl,
                };
                run_controlled_session(&spec, &catalog()).truth.qoe
            };
            let lo = run(0.1);
            let hi = run(0.97);
            checks += 1;
            if order(hi) < order(lo) {
                violations += 1;
            }
        }
    }
    assert_eq!(violations, 0, "{violations}/{checks} intensity inversions");
}

#[test]
fn probes_never_use_application_qoe() {
    // The classifier features must not contain application-layer QoE
    // (stall counts etc.) — the paper uses those only for labelling.
    let corpus = small_corpus(10, 6000);
    for r in &corpus {
        for (name, _) in &r.metrics {
            assert!(
                !name.contains("stall") && !name.contains("mos") && !name.contains("startup"),
                "leaked QoE metric: {name}"
            );
        }
    }
}
