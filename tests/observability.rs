//! Live-ops surface integration tests: audit-enabled descent must be
//! bitwise verdict-identical to audit-off across the scalar, batch and
//! streamed paths at shard counts 1 and 8; every flushed session with
//! audit on carries exactly one decision path whose replay reproduces
//! its verdict; and the drift monitor windows serve traffic without
//! false alarms when live traffic matches the training distribution.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use vqd::prelude::*;

fn fixture() -> &'static (Arc<Diagnoser>, Vec<LabeledRun>) {
    static FIX: OnceLock<(Arc<Diagnoser>, Vec<LabeledRun>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let cfg = CorpusConfig {
            sessions: 32,
            seed: 9464,
            ..Default::default()
        };
        let runs = generate_corpus(&cfg, &Catalog::top100(42));
        let model = Diagnoser::train(
            &to_dataset(&runs, LabelScheme::Exact),
            &DiagnoserConfig::default(),
        );
        (Arc::new(model), runs)
    })
}

fn assert_bit_identical(a: &Diagnosis, b: &Diagnosis, what: &str) {
    let bits = |v: f64| v.to_bits();
    assert_eq!(a.label, b.label, "{what}: label");
    assert_eq!(a.class, b.class, "{what}: class");
    for (i, (x, y)) in a.dist.iter().zip(&b.dist).enumerate() {
        assert_eq!(bits(*x), bits(*y), "{what}: dist[{i}] {x} vs {y}");
    }
    assert_eq!(
        bits(a.quality.feature_coverage),
        bits(b.quality.feature_coverage),
        "{what}: coverage"
    );
    assert_eq!(
        bits(a.quality.confidence),
        bits(b.quality.confidence),
        "{what}: confidence"
    );
    assert_eq!(a.resolution, b.resolution, "{what}: resolution");
    assert_eq!(a.fallback_label, b.fallback_label, "{what}: fallback");
}

/// Replay `events` through a daemon and collect every flushed session.
fn serve_all(cfg: ServeConfig, events: Vec<ProbeEvent>) -> Vec<FlushedSession> {
    let (model, _) = fixture();
    let got: Arc<Mutex<Vec<FlushedSession>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&got);
    let mut server = StreamServer::new(Arc::clone(model), cfg, move |fs| {
        sink.lock().unwrap_or_else(PoisonError::into_inner).push(fs);
    });
    for ev in events {
        server
            .push_event(ev)
            .expect("no durability, push cannot fail");
    }
    server.finish().expect("no durability, finish cannot fail");
    Arc::try_unwrap(got)
        .unwrap_or_else(|_| panic!("sink still shared after finish"))
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Deterministic xorshift64* Fisher–Yates, same scheme as `vqd events
/// --shuffle`.
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// The acceptance gate's first half: turning audit on changes no
/// output bit anywhere. Scalar diagnose is the reference; the batch
/// engine runs audit-off and audit-on at 1 and 8 threads; the streamed
/// daemon runs audit-on at 1 and 8 shards. Every path must agree
/// bitwise on every session.
#[test]
fn audit_on_is_bitwise_identical_across_scalar_batch_and_streamed_paths() {
    let (model, runs) = fixture();
    let sessions: Vec<&Vec<(String, f64)>> = runs.iter().map(|r| &r.metrics).collect();

    // Scalar reference, and audit-off batch (the pre-change behavior).
    let scalar: Vec<Diagnosis> = runs.iter().map(|r| model.diagnose(&r.metrics)).collect();
    let plain = model.diagnose_batch(&sessions, 1);

    for threads in [1usize, 8] {
        let audited = model.diagnose_batch_with(
            &sessions,
            threads,
            BatchOptions {
                audit: true,
                ..Default::default()
            },
        );
        for (i, reference) in scalar.iter().enumerate() {
            let dx = audited.get(i);
            assert_bit_identical(
                reference,
                &dx,
                &format!("threads={threads} scalar vs audited"),
            );
            assert_bit_identical(
                &plain.get(i),
                &dx,
                &format!("threads={threads} plain vs audited"),
            );
            let steps = audited
                .audit_path(i)
                .unwrap_or_else(|| panic!("audit on but no path for session {i}"));
            assert!(!steps.is_empty(), "session {i}: descent crossed no split?");
            // The recorded path alone reproduces the verdict bitwise.
            let (dist, class, _) = model
                .replay_audit(steps)
                .unwrap_or_else(|e| panic!("session {i}: replay failed: {e}"));
            assert_eq!(class, dx.class, "session {i}: replayed class");
            for (k, (a, b)) in dist.iter().zip(&dx.dist).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "session {i}: replayed dist[{k}] {a} vs {b}"
                );
            }
        }
    }

    // Streamed: shuffled arrival, audit on, shard counts 1 and 8.
    for shards in [1usize, 8] {
        let mut events = corpus_to_events(runs);
        shuffle(&mut events, 0xA0D17 + shards as u64);
        let cfg = ServeConfig {
            shards,
            flush_batch: 5,
            audit: true,
            ..ServeConfig::default()
        };
        let got = serve_all(cfg, events);
        assert_eq!(got.len(), runs.len(), "shards={shards}: session count");
        for fs in &got {
            let idx: usize = fs
                .session
                .parse()
                .unwrap_or_else(|_| panic!("session id {:?} is not a corpus index", fs.session));
            assert_bit_identical(
                &scalar[idx],
                &fs.diagnosis,
                &format!("shards={shards} session {idx}"),
            );
        }
    }
}

/// The acceptance gate's second half: with audit on, every flushed
/// session has exactly one audit record, and replaying that record
/// through the same model reproduces the session's exact verdict.
#[test]
fn every_streamed_session_has_one_replayable_audit_record() {
    let (model, runs) = fixture();
    for shards in [1usize, 8] {
        let mut events = corpus_to_events(runs);
        shuffle(&mut events, 0x5EED + shards as u64);
        let got = serve_all(
            ServeConfig {
                shards,
                audit: true,
                ..ServeConfig::default()
            },
            events,
        );
        let mut per_session: HashMap<&str, usize> = HashMap::new();
        for fs in &got {
            *per_session.entry(fs.session.as_str()).or_default() += 1;
            let steps = fs
                .audit
                .as_deref()
                .unwrap_or_else(|| panic!("shards={shards} {}: no audit record", fs.session));
            let (dist, class, _) = model
                .replay_audit(steps)
                .unwrap_or_else(|e| panic!("shards={shards} {}: replay: {e}", fs.session));
            assert_eq!(class, fs.diagnosis.class, "{}: replayed class", fs.session);
            for (k, (a, b)) in dist.iter().zip(&fs.diagnosis.dist).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "shards={shards} {}: dist[{k}]",
                    fs.session
                );
            }
        }
        assert_eq!(per_session.len(), runs.len(), "shards={shards}");
        assert!(
            per_session.values().all(|&c| c == 1),
            "shards={shards}: exactly one audit record per session"
        );
    }
}

/// Audit off means audit off: no trail on the batch, no record on the
/// flushed sessions — the default path allocates nothing for audit.
#[test]
fn audit_off_records_nothing() {
    let (model, runs) = fixture();
    let sessions: Vec<&Vec<(String, f64)>> = runs.iter().map(|r| &r.metrics).collect();
    let batch = model.diagnose_batch(&sessions, 2);
    assert!(batch.audit_path(0).is_none());
    let got = serve_all(
        ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        },
        corpus_to_events(&runs[..4]),
    );
    assert!(got.iter().all(|fs| fs.audit.is_none()));
}

/// Drift monitoring over serve traffic drawn from the training
/// distribution itself: the windowed sketches match the stamp (PSI at
/// the noise floor), the label mix stays inside the alert threshold,
/// and no alert fires. The window must have seen every session once.
#[test]
fn drift_monitor_windows_serve_traffic_without_false_alarms() {
    let (model, runs) = fixture();
    let stamp = model
        .drift_stamp()
        .expect("freshly trained model carries a drift stamp")
        .clone();
    let monitor = Arc::new(Mutex::new(DriftMonitor::new(stamp)));
    // The fixture is below the production 64-row minimum; lower the
    // floor to the corpus size so the final window evaluates while
    // mid-stream partial windows stay silent.
    monitor
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .min_rows = runs.len() as u64;
    let mut events = corpus_to_events(runs);
    shuffle(&mut events, 7);
    let got = serve_all(
        ServeConfig {
            shards: 4,
            flush_batch: 8,
            drift: Some(Arc::clone(&monitor)),
            ..ServeConfig::default()
        },
        events,
    );
    assert_eq!(got.len(), runs.len());
    let mut mon = monitor.lock().unwrap_or_else(PoisonError::into_inner);
    let reading = mon.evaluate();
    assert_eq!(
        reading.rows,
        runs.len() as u64,
        "one windowed row per session"
    );
    let max_psi = reading.psi.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    assert!(
        max_psi < 0.05,
        "traffic from the training distribution must sit at the PSI noise floor, got {max_psi}"
    );
    assert!(
        reading.label_mix < 0.25,
        "resubstitution label mix {} crossed the alert threshold",
        reading.label_mix
    );
    assert!(
        mon.alerts().is_empty(),
        "false drift alarm on training traffic: {:?}",
        mon.alerts()
    );
    assert!(reading.confidence_avg > 0.0 && reading.confidence_avg <= 1.0);
    assert!(reading.coverage_avg > 0.0 && reading.coverage_avg <= 1.0);
}
