//! Degraded-telemetry integration tests: determinism of fault
//! injection, smooth accuracy decay under probe dropout, and the
//! mobile-VP-only deployment beating the majority-class floor.

use vqd::prelude::*;

fn corpus(sessions: usize, seed: u64) -> Vec<LabeledRun> {
    let cfg = CorpusConfig {
        sessions,
        seed,
        ..Default::default()
    };
    generate_corpus(&cfg, &Catalog::top100(42))
}

/// Bit-exact fingerprint of a degraded corpus.
fn fingerprint(runs: &[LabeledRun]) -> Vec<(String, u64)> {
    runs.iter()
        .flat_map(|r| r.metrics.iter().map(|(n, v)| (n.clone(), v.to_bits())))
        .collect()
}

/// A seeded degradation plan produces byte-identical corpora across
/// repeated applications and across worker-thread counts, for every
/// failure mode.
#[test]
fn degradation_is_deterministic_across_runs_and_threads() {
    let runs = corpus(10, 4001);
    for kind in DegradeKind::ALL {
        let plan = DegradePlan::new(kind, 0.6, 20150917);
        let one = degrade_corpus(&runs, &plan, 1);
        let again = degrade_corpus(&runs, &plan, 1);
        let wide = degrade_corpus(&runs, &plan, 8);
        assert_eq!(
            fingerprint(&one),
            fingerprint(&again),
            "{} not reproducible across runs",
            kind.name()
        );
        assert_eq!(
            fingerprint(&one),
            fingerprint(&wide),
            "{} depends on thread count",
            kind.name()
        );
    }
}

/// Accuracy decays smoothly from pristine telemetry to total VP
/// dropout: no panic, no cliff below the majority-class floor, and
/// coverage/exact-answer rate shrink monotonically.
#[test]
fn dropout_sweep_degrades_smoothly() {
    let train = corpus(60, 4002);
    let test = corpus(40, 4003);
    let scheme = LabelScheme::Existence;
    let model = Diagnoser::train(&to_dataset(&train, scheme), &DiagnoserConfig::default());
    let baseline = majority_baseline(&test, scheme);

    let intensities = [0.0, 0.25, 0.5, 0.75, 1.0];
    let cells = sweep(
        &model,
        &test,
        scheme,
        &[DegradeKind::VpDropout],
        &intensities,
        5,
        0,
    );
    assert_eq!(cells.len(), intensities.len());
    for (prev, next) in cells.iter().zip(cells.iter().skip(1)) {
        assert!(
            next.mean_coverage <= prev.mean_coverage + 1e-9,
            "coverage rose with dropout: {} -> {}",
            prev.mean_coverage,
            next.mean_coverage
        );
        assert!(
            next.exact_fraction <= prev.exact_fraction + 1e-9,
            "exact-answer rate rose with dropout"
        );
    }
    // Pristine telemetry beats the majority floor; fully degraded
    // telemetry falls back to the prior and never drops far below it.
    assert!(
        cells[0].accuracy() > baseline,
        "pristine accuracy {} <= baseline {baseline}",
        cells[0].accuracy()
    );
    for c in &cells {
        assert!(
            c.accuracy() >= baseline - 0.1,
            "cliff at intensity {}: accuracy {} vs baseline {baseline}",
            c.intensity,
            c.accuracy()
        );
    }
    // Total dropout leaves zero coverage and no exact answers.
    let last = cells.last().unwrap();
    assert!(last.mean_coverage < 1e-9);
    assert!(last.exact_fraction < 1e-9);
}

/// A deployment with only the on-device probe (the paper's most
/// realistic partial deployment) still beats always-guessing the
/// majority class.
#[test]
fn mobile_only_deployment_beats_majority_baseline() {
    let train = corpus(110, 4004);
    let test = corpus(60, 4005);
    let scheme = LabelScheme::Existence;
    let model = Diagnoser::train(&to_dataset(&train, scheme), &DiagnoserConfig::default());
    let baseline = majority_baseline(&test, scheme);

    let mut correct = 0usize;
    for r in &test {
        let mobile_only: Vec<(String, f64)> = r
            .metrics
            .iter()
            .filter(|(n, _)| n.starts_with("mobile."))
            .cloned()
            .collect();
        assert!(!mobile_only.is_empty(), "corpus run without a mobile VP");
        let dx = model.diagnose(&mobile_only);
        if dx.label == r.truth.label(scheme) {
            correct += 1;
        }
    }
    let acc = correct as f64 / test.len() as f64;
    assert!(
        acc > baseline,
        "mobile-only accuracy {acc} <= majority baseline {baseline}"
    );
}
