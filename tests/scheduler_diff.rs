//! Differential scheduler test: the hierarchical timer wheel and the
//! binary-heap oracle must generate **byte-identical** corpora, at any
//! worker-thread count.
//!
//! This is the end-to-end guarantee behind swapping the event queue:
//! the wheel preserves the exact `(at, seq)` total order the heap
//! defined, so every RNG draw, every packet timing and every derived
//! feature comes out the same — serialised, to the last bit of every
//! float. Kept in its own integration-test binary because the
//! scheduler default is process-global.

use vqd::prelude::*;
use vqd::simnet::sched::{set_default_scheduler, SchedulerKind};

fn corpus_text(kind: SchedulerKind, threads: usize) -> String {
    set_default_scheduler(kind);
    let cfg = CorpusConfig {
        sessions: 200,
        seed: 77_2015,
        p_fault: 0.6,
        threads,
        ..Default::default()
    };
    corpus_to_text(&generate_corpus(&cfg, &Catalog::top100(42)))
}

/// 200 sessions × {wheel, heap} × {1 thread, 8 threads}: all four
/// serialisations must be the same bytes. Half the grid runs with
/// metrics and span tracing enabled — the recorder must not perturb
/// either engine (it is write-only and flushes outside the event
/// loop), so obs-on and obs-off corpora are the same bytes too.
#[test]
fn wheel_and_heap_corpora_are_byte_identical_at_any_thread_count() {
    vqd_obs::disable();
    let wheel_1 = corpus_text(SchedulerKind::TimerWheel, 1);
    let heap_1 = corpus_text(SchedulerKind::BinaryHeap, 1);
    vqd_obs::enable_tracing();
    let wheel_8 = corpus_text(SchedulerKind::TimerWheel, 8);
    let heap_8 = corpus_text(SchedulerKind::BinaryHeap, 8);
    let spans = vqd_obs::take_spans();
    vqd_obs::disable();
    set_default_scheduler(SchedulerKind::TimerWheel);

    assert!(!spans.is_empty(), "tracing collected no spans");
    assert!(!wheel_1.is_empty());
    assert_eq!(wheel_1, wheel_8, "wheel: thread count changed the corpus");
    assert_eq!(heap_1, heap_8, "heap: thread count changed the corpus");
    assert_eq!(wheel_1, heap_1, "wheel and heap disagree");
}
