//! Serving-engine equality tests: the batched engine must be
//! bit-identical to the scalar paths on a fixed corpus — pristine and
//! degraded — at every thread count, and the compiled tree must
//! round-trip the serialized model format losslessly (including the
//! `model.vqd` artifact checked in at the repo root).

use std::sync::OnceLock;

use vqd::ml::compiled::CompiledTree;
use vqd::ml::dtree::DecisionTree;
use vqd::prelude::*;

fn fixture() -> &'static (Diagnoser, Vec<LabeledRun>) {
    static FIX: OnceLock<(Diagnoser, Vec<LabeledRun>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let cfg = CorpusConfig {
            sessions: 48,
            seed: 4110,
            ..Default::default()
        };
        let runs = generate_corpus(&cfg, &Catalog::top100(42));
        let model = Diagnoser::train(
            &to_dataset(&runs, LabelScheme::Exact),
            &DiagnoserConfig::default(),
        );
        (model, runs)
    })
}

/// Panic with a diff unless two diagnoses are bit-identical — same
/// discipline as the `diagnose_perf` equality gate: labels, the raw
/// IEEE-754 bits of every float, resolution and fallback.
fn assert_bit_identical(a: &Diagnosis, b: &Diagnosis, what: &str) {
    let bits = |v: f64| v.to_bits();
    assert_eq!(a.label, b.label, "{what}: label");
    assert_eq!(a.class, b.class, "{what}: class");
    assert_eq!(a.dist.len(), b.dist.len(), "{what}: dist len");
    for (i, (x, y)) in a.dist.iter().zip(&b.dist).enumerate() {
        assert_eq!(bits(*x), bits(*y), "{what}: dist[{i}] {x} vs {y}");
    }
    assert_eq!(
        bits(a.quality.feature_coverage),
        bits(b.quality.feature_coverage),
        "{what}: coverage"
    );
    assert_eq!(
        bits(a.quality.missing_descent),
        bits(b.quality.missing_descent),
        "{what}: missing_descent"
    );
    assert_eq!(
        bits(a.quality.confidence),
        bits(b.quality.confidence),
        "{what}: confidence"
    );
    assert_eq!(
        a.quality.silent_vps, b.quality.silent_vps,
        "{what}: silent VPs"
    );
    assert_eq!(a.resolution, b.resolution, "{what}: resolution");
    assert_eq!(a.fallback_label, b.fallback_label, "{what}: fallback");
}

/// Pristine + mildly degraded + heavily degraded replicas of the fixed
/// corpus — the same three-tier serving mix the perf harness scores.
fn serving_mix(runs: &[LabeledRun]) -> Vec<Vec<(String, f64)>> {
    let mild = DegradePlan::new(DegradeKind::VpDropout, 0.55, 77);
    let harsh = DegradePlan::new(DegradeKind::VpDropout, 0.95, 78);
    let mut out: Vec<Vec<(String, f64)>> = runs.iter().map(|r| r.metrics.clone()).collect();
    for plan in [&mild, &harsh] {
        out.extend(
            runs.iter()
                .enumerate()
                .map(|(i, r)| plan.apply(i as u64, &r.metrics)),
        );
    }
    out
}

/// The batched engine reproduces the seed-reference scalar loop and
/// the compiled single-session path bit for bit, across all three
/// telemetry tiers.
#[test]
fn batch_matches_scalar_reference_bitwise() {
    let (model, runs) = fixture();
    let serving = serving_mix(runs);
    let batch = model.diagnose_batch(&serving, 1);
    for (i, s) in serving.iter().enumerate() {
        assert_bit_identical(
            &model.diagnose_seed_reference(s),
            &batch.get(i),
            &format!("session {i}: seed reference vs batch"),
        );
        assert_bit_identical(
            &model.diagnose(s),
            &batch.get(i),
            &format!("session {i}: compiled single vs batch"),
        );
    }
}

/// Sharding is invisible: 1 thread, 8 threads and available
/// parallelism return identical batches in input order.
#[test]
fn batch_identical_at_any_thread_count() {
    let (model, runs) = fixture();
    let serving = serving_mix(runs);
    let b1 = model.diagnose_batch(&serving, 1);
    let b8 = model.diagnose_batch(&serving, 8);
    let ball = model.diagnose_batch(&serving, 0);
    for i in 0..serving.len() {
        assert_bit_identical(
            &b1.get(i),
            &b8.get(i),
            &format!("session {i}: threads 1 vs 8"),
        );
        assert_bit_identical(
            &b1.get(i),
            &ball.get(i),
            &format!("session {i}: threads 1 vs all"),
        );
    }
}

/// Recording on or off never changes results (observability is
/// determinism-neutral on the batch path too).
#[test]
fn batch_identical_with_obs_on_and_off() {
    let (model, runs) = fixture();
    let serving = serving_mix(runs);
    vqd_obs::enable();
    let on = model.diagnose_batch(&serving, 8);
    vqd_obs::disable();
    let off = model.diagnose_batch(&serving, 8);
    vqd_obs::enable();
    for i in 0..serving.len() {
        assert_bit_identical(
            &on.get(i),
            &off.get(i),
            &format!("session {i}: obs on vs off"),
        );
    }
}

/// `CompiledTree` round-trips the serialized model format: compile →
/// decompile → reserialize is the identity on the text form, for both
/// a freshly trained model and the `model.vqd` artifact at the repo
/// root (the v1/v2 format-compatibility fixture).
#[test]
fn compiled_tree_roundtrips_model_files() {
    let (model, _) = fixture();
    let mut trees = vec![("freshly trained".to_string(), model.tree().clone())];
    let root_model = concat!(env!("CARGO_MANIFEST_DIR"), "/model.vqd");
    if let Ok(m) = Diagnoser::load(root_model) {
        trees.push(("repo-root model.vqd".into(), m.tree().clone()));
    }
    for (what, tree) in &trees {
        let text = tree.serialize();
        let compiled = CompiledTree::from_tree(tree);
        assert_eq!(
            compiled.to_tree().serialize(),
            text,
            "{what}: compile -> decompile -> serialize must be the identity"
        );
        let reparsed = DecisionTree::deserialize(&text).unwrap_or_else(|e| {
            panic!("{what}: serialized tree failed to reparse: {e}");
        });
        assert_eq!(
            CompiledTree::from_tree(&reparsed).to_tree().serialize(),
            text,
            "{what}: round-trip through the text format drifted"
        );
    }
}
