//! Streaming-daemon equality tests: `StreamServer` must reproduce the
//! offline batch engine bit for bit — for any arrival order,
//! duplication, shard count and flush cause — and must degrade (never
//! die) on partial sessions and malformed lines.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use vqd::prelude::*;

fn fixture() -> &'static (Arc<Diagnoser>, Vec<LabeledRun>) {
    static FIX: OnceLock<(Arc<Diagnoser>, Vec<LabeledRun>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let cfg = CorpusConfig {
            sessions: 32,
            seed: 6203,
            ..Default::default()
        };
        let runs = generate_corpus(&cfg, &Catalog::top100(42));
        let model = Diagnoser::train(
            &to_dataset(&runs, LabelScheme::Exact),
            &DiagnoserConfig::default(),
        );
        (Arc::new(model), runs)
    })
}

fn assert_bit_identical(a: &Diagnosis, b: &Diagnosis, what: &str) {
    let bits = |v: f64| v.to_bits();
    assert_eq!(a.label, b.label, "{what}: label");
    assert_eq!(a.class, b.class, "{what}: class");
    for (i, (x, y)) in a.dist.iter().zip(&b.dist).enumerate() {
        assert_eq!(bits(*x), bits(*y), "{what}: dist[{i}] {x} vs {y}");
    }
    assert_eq!(
        bits(a.quality.feature_coverage),
        bits(b.quality.feature_coverage),
        "{what}: coverage"
    );
    assert_eq!(
        bits(a.quality.confidence),
        bits(b.quality.confidence),
        "{what}: confidence"
    );
    assert_eq!(
        a.quality.silent_vps, b.quality.silent_vps,
        "{what}: silent VPs"
    );
    assert_eq!(a.resolution, b.resolution, "{what}: resolution");
    assert_eq!(a.fallback_label, b.fallback_label, "{what}: fallback");
}

/// Replay `events` through a daemon and collect every flushed session.
fn serve_all(cfg: ServeConfig, events: Vec<ProbeEvent>) -> Vec<FlushedSession> {
    let (model, _) = fixture();
    let got: Arc<Mutex<Vec<FlushedSession>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&got);
    let mut server = StreamServer::new(Arc::clone(model), cfg, move |fs| {
        sink.lock().unwrap_or_else(PoisonError::into_inner).push(fs);
    });
    for ev in events {
        server
            .push_event(ev)
            .expect("no durability, push cannot fail");
    }
    let report = server.finish().expect("no durability, finish cannot fail");
    let got = Arc::try_unwrap(got)
        .unwrap_or_else(|_| panic!("sink still shared after finish"))
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    assert_eq!(report.sessions as usize, got.len(), "report vs sink count");
    got
}

/// Deterministic xorshift64* Fisher–Yates, same scheme as `vqd events
/// --shuffle`.
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Offline truth: one diagnosis per corpus session through the batch
/// engine, keyed the way the daemon keys them.
fn offline(runs: &[LabeledRun]) -> HashMap<String, Diagnosis> {
    let (model, _) = fixture();
    let sessions: Vec<&Vec<(String, f64)>> = runs.iter().map(|r| &r.metrics).collect();
    let batch = model.diagnose_batch(&sessions, 1);
    (0..runs.len())
        .map(|i| (i.to_string(), batch.get(i)))
        .collect()
}

/// The acceptance gate: shuffled arrival, shard counts 1 and 8 — every
/// session's streamed diagnosis is bitwise the offline batch result,
/// and the emitted TSV lines are byte-identical too.
#[test]
fn serve_matches_offline_batch_shuffled_at_shard_counts_1_and_8() {
    let (_, runs) = fixture();
    let want = offline(runs);
    for shards in [1usize, 8] {
        let mut events = corpus_to_events(runs);
        shuffle(&mut events, 0xBADC0DE + shards as u64);
        let cfg = ServeConfig {
            shards,
            flush_batch: 5, // force several partial flush batches
            ..ServeConfig::default()
        };
        let got = serve_all(cfg, events);
        assert_eq!(got.len(), runs.len(), "shards={shards}: session count");
        for fs in &got {
            assert_eq!(
                fs.cause,
                FlushCause::Complete,
                "shards={shards}: every session arrived whole"
            );
            let dx = want
                .get(&fs.session)
                .unwrap_or_else(|| panic!("unknown session {:?}", fs.session));
            assert_bit_identical(
                dx,
                &fs.diagnosis,
                &format!("shards={shards} session {}", fs.session),
            );
            assert_eq!(
                result_line(&fs.session, &fs.diagnosis),
                result_line(&fs.session, dx),
                "shards={shards}: TSV bytes"
            );
        }
    }
}

/// Duplicated events are idempotent: doubling every line changes
/// nothing but the duplicate counter.
#[test]
fn duplicated_events_are_dropped_idempotently() {
    let (_, runs) = fixture();
    let want = offline(runs);
    let mut events = corpus_to_events(runs);
    let doubled = events.clone();
    events.extend(doubled);
    shuffle(&mut events, 99);
    let got = serve_all(
        ServeConfig {
            shards: 3,
            ..ServeConfig::default()
        },
        events,
    );
    assert_eq!(got.len(), runs.len());
    let mut dup_total = 0;
    for fs in &got {
        dup_total += fs.duplicates;
        assert_bit_identical(&want[&fs.session], &fs.diagnosis, &fs.session);
    }
    assert!(dup_total > 0, "duplicate samples must be counted");
}

/// A session whose tail never arrives (no end marker) flushes at
/// shutdown, resolves through the quality tiers, and its diagnosis
/// still equals the offline result for the samples that did arrive.
#[test]
fn partial_sessions_resolve_through_quality_tiers_at_shutdown() {
    let (model, runs) = fixture();
    // Keep only the first 10% of each session's samples, drop all end
    // markers: nothing ever completes.
    let truncated: Vec<Vec<(String, f64)>> = runs
        .iter()
        .map(|r| r.metrics[..r.metrics.len() / 10].to_vec())
        .collect();
    let mut events = Vec::new();
    for (i, m) in truncated.iter().enumerate() {
        for (j, (n, v)) in m.iter().enumerate() {
            events.push(ProbeEvent::sample(i.to_string(), j as u64, n.clone(), *v));
        }
    }
    shuffle(&mut events, 4);
    let got = serve_all(
        ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        },
        events,
    );
    assert_eq!(got.len(), runs.len());
    let views: Vec<&[(String, f64)]> = truncated.iter().map(|m| m.as_slice()).collect();
    let batch = model.diagnose_batch(&views, 1);
    let mut fallbacks = 0;
    for fs in &got {
        assert_eq!(fs.cause, FlushCause::Shutdown, "{}", fs.session);
        let idx: usize = fs
            .session
            .parse()
            .unwrap_or_else(|_| panic!("session id {:?} is not a corpus index", fs.session));
        assert_bit_identical(&batch.get(idx), &fs.diagnosis, &fs.session);
        if fs.diagnosis.resolution != Resolution::Exact {
            fallbacks += 1;
            assert!(
                fs.diagnosis.fallback_label.is_some(),
                "{}: coarser tier must carry a fallback answer",
                fs.session
            );
        }
    }
    assert!(
        fallbacks > 0,
        "10% telemetry should push some sessions off the exact tier"
    );
}

/// Watermark expiry: a session that goes quiet while event time keeps
/// advancing flushes as `Watermark` before EOF, with its partial
/// diagnosis equal to the offline result on the arrived samples.
#[test]
fn watermark_expires_stale_sessions() {
    let (model, runs) = fixture();
    let stale = &runs[0].metrics;
    let keep = stale.len() / 3;
    let mut events: Vec<ProbeEvent> = Vec::new();
    // Session "stale" sends a third of its samples around t=0...
    for (j, (n, v)) in stale[..keep].iter().enumerate() {
        events.push(ProbeEvent::sample("stale", j as u64, n.clone(), *v).at(j as f64 * 1e-3));
    }
    // ...then session "busy" keeps the shard's event clock moving far
    // past the lateness bound (same shard: shards=1).
    for (j, (n, v)) in runs[1].metrics.iter().enumerate() {
        events.push(ProbeEvent::sample("busy", j as u64, n.clone(), *v).at(100.0 + j as f64));
    }
    let got = serve_all(
        ServeConfig {
            shards: 1,
            lateness: Some(5.0),
            ..ServeConfig::default()
        },
        events,
    );
    let by_id: HashMap<&str, &FlushedSession> =
        got.iter().map(|fs| (fs.session.as_str(), fs)).collect();
    let stale_fs = by_id["stale"];
    assert_eq!(
        stale_fs.cause,
        FlushCause::Watermark,
        "quiet session must expire mid-stream"
    );
    assert_eq!(by_id["busy"].cause, FlushCause::Shutdown);
    let view: Vec<&[(String, f64)]> = vec![&stale[..keep]];
    assert_bit_identical(
        &model.diagnose_batch(&view, 1).get(0),
        &stale_fs.diagnosis,
        "expired partial session",
    );
}

/// Eviction pressure: with a tiny per-shard table, extra sessions are
/// flushed least-recently-touched first — and since each victim had
/// already received all its samples, its diagnosis still matches
/// offline exactly.
#[test]
fn eviction_flushes_least_recently_touched_sessions() {
    let (_, runs) = fixture();
    let n = 6.min(runs.len());
    let want = offline(&runs[..n]);
    // Sessions arrive back to back (no interleaving) without end
    // markers, so each stays resident until evicted or shutdown.
    let mut events = Vec::new();
    for (i, r) in runs[..n].iter().enumerate() {
        for (j, (name, v)) in r.metrics.iter().enumerate() {
            events.push(ProbeEvent::sample(
                i.to_string(),
                j as u64,
                name.clone(),
                *v,
            ));
        }
    }
    let got = serve_all(
        ServeConfig {
            shards: 1,
            max_sessions: 2,
            ..ServeConfig::default()
        },
        events,
    );
    assert_eq!(got.len(), n);
    assert!(
        got.iter().any(|fs| fs.cause == FlushCause::Evicted),
        "cap of 2 with {n} sessions must evict"
    );
    for fs in &got {
        assert_bit_identical(&want[&fs.session], &fs.diagnosis, &fs.session);
    }
}

/// A malformed line is a typed error for that line only: the daemon
/// keeps serving and the good sessions are unaffected.
#[test]
fn malformed_lines_degrade_one_event_not_the_daemon() {
    let (model, runs) = fixture();
    let got: Arc<Mutex<Vec<FlushedSession>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&got);
    let mut server = StreamServer::new(
        Arc::clone(model),
        ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        },
        move |fs| {
            sink.lock().unwrap_or_else(PoisonError::into_inner).push(fs);
        },
    );
    let mut lineno = 0;
    let mut errors = 0;
    for ev in corpus_to_events(&runs[..4]) {
        for line in [ev.to_jsonl(), "{\"session\":17}".to_string()] {
            lineno += 1;
            if server.push_line(lineno, &line).is_err() {
                errors += 1;
            }
        }
    }
    let report = server.finish().expect("no durability, finish cannot fail");
    assert_eq!(errors, report.parse_errors as usize);
    assert!(errors > 0);
    assert_eq!(report.sessions, 4, "good sessions served despite bad lines");
    let want = offline(&runs[..4]);
    for fs in got.lock().unwrap_or_else(PoisonError::into_inner).iter() {
        assert_bit_identical(&want[&fs.session], &fs.diagnosis, &fs.session);
    }
}
