//! Integration tests of the substrates working together *below* the
//! diagnosis layer: simulator + wireless + video + probes.

use vqd::probes::{ProbeSet, SamplerApp, VpData};
use vqd::simnet::engine::Harness;
use vqd::simnet::ids::HostId;
use vqd::simnet::link::LinkConfig;
use vqd::simnet::time::SimTime;
use vqd::simnet::topology::TopologyBuilder;
use vqd::simnet::traffic::UdpFlood;
use vqd::video::catalog::Video;
use vqd::video::player::{Player, PlayerConfig};
use vqd::video::server::{SessionDirectory, VideoServer, VideoServerConfig};
use vqd::wireless::{Wlan80211, WlanConfig};

fn video(duration_s: f64, bitrate: u64) -> Video {
    Video {
        id: 0,
        duration_s,
        bitrate_bps: bitrate,
        hd: bitrate > 1_500_000,
    }
}

/// Build phone—AP—server with a WLAN and stream one video; return the
/// probes and player handle.
struct Rig {
    sim: Harness<ProbeSet>,
    handle: vqd::video::player::PlayerHandle,
    vps: Vec<vqd::probes::VpHandle>,
    mobile: HostId,
}

fn rig(distance_m: f64, interference: f64, flood_bps: u64) -> Rig {
    let mut tb = TopologyBuilder::with_seed(9);
    let mobile = tb.add_host("mobile");
    let router = tb.add_host("router");
    let server = tb.add_host("server");
    let other = tb.add_host("other-sta");
    tb.add_duplex_link(router, server, LinkConfig::dsl_nominal());
    let mut wlan = Wlan80211::new(router, WlanConfig::default());
    wlan.add_station(mobile, distance_m);
    wlan.add_station(other, 3.0);
    wlan.set_interference(interference, interference * 12.0);
    let m = tb.add_medium(Box::new(wlan));
    tb.add_wireless(mobile, router, m, 1460);
    tb.add_wireless(other, router, m, 1460);
    let net = tb.build();

    let vps = vec![
        VpData::new("mobile", mobile, &[80]),
        VpData::new("router", router, &[80]),
        VpData::new("server", server, &[80]),
    ];
    let obs = ProbeSet::new(vps.clone());
    let mut sim = Harness::with_observer(net, obs);
    let dir = SessionDirectory::new();
    let (player, handle) = Player::new(
        mobile,
        server,
        80,
        video(25.0, 900_000),
        PlayerConfig::default(),
        dir.clone(),
    );
    sim.add_app(Box::new(player));
    sim.add_app(Box::new(VideoServer::new(
        server,
        VideoServerConfig::default(),
        dir,
    )));
    sim.add_app(Box::new(SamplerApp::new(vps.clone())));
    if flood_bps > 0 {
        sim.add_app(Box::new(UdpFlood::new(server, other, flood_bps)));
    }
    Rig {
        sim,
        handle,
        vps,
        mobile,
    }
}

fn metric(rig: &Rig, vp: usize, name: &str) -> Option<f64> {
    let flow = rig.handle.flow()?;
    rig.vps[vp]
        .borrow()
        .metrics_for(flow)?
        .into_iter()
        .find(|(n, _)| n.ends_with(name))
        .map(|(_, v)| v)
}

#[test]
fn clean_wlan_session_plays_and_probes_agree_on_bytes() {
    let mut r = rig(4.0, 0.0, 0);
    r.sim.run_until(SimTime::from_secs(120));
    assert!(r.handle.done());
    let q = r.handle.qoe();
    assert!(q.completed, "{q:?}");
    assert!(q.stalls.is_empty(), "{:?}", q.stalls);
    // All probes counted (at least) the full media size downstream;
    // retransmitted copies may add a little.
    let size = q.bytes_received as f64;
    for vp in 0..3 {
        let b = metric(&r, vp, "tcp.s2c.data_bytes").unwrap();
        assert!(b >= size && b < size * 1.15, "vp{vp}: {b} vs {size}");
    }
}

#[test]
fn weak_signal_shows_in_mobile_probe_only() {
    let mut far = rig(38.0, 0.0, 0);
    far.sim.run_until(SimTime::from_secs(150));
    assert!(far.handle.done());
    let rssi = metric(&far, 0, "phy.rssi_avg").unwrap();
    assert!(rssi < -72.0, "rssi {rssi}");
    // MAC retries on the mobile's uplink are elevated vs a near rig.
    let mut near = rig(3.0, 0.0, 0);
    near.sim.run_until(SimTime::from_secs(120));
    let far_rate = metric(&far, 0, "phy.rate_avg").unwrap();
    let near_rate = metric(&near, 0, "phy.rate_avg").unwrap();
    assert!(
        far_rate < near_rate * 0.7,
        "far {far_rate} near {near_rate}"
    );
    // The server probe has no radio view at all.
    let flow = far.handle.flow().unwrap();
    let server_names = far.vps[2].borrow().metrics_for(flow).unwrap();
    assert!(server_names.iter().all(|(n, _)| !n.contains("phy.rssi")));
}

#[test]
fn interference_raises_medium_busy_and_mac_retx() {
    let mut noisy = rig(5.0, 0.6, 0);
    noisy.sim.run_until(SimTime::from_secs(150));
    let busy = metric(&noisy, 0, "phy.busy_avg").unwrap();
    assert!(busy > 0.5, "busy {busy}");
    let mut clean = rig(5.0, 0.0, 0);
    clean.sim.run_until(SimTime::from_secs(120));
    let busy_clean = metric(&clean, 0, "phy.busy_avg").unwrap();
    assert!(busy > busy_clean + 0.3, "noisy {busy} clean {busy_clean}");
}

#[test]
fn wan_flood_congests_shared_ap_queue() {
    // Flood to the *other* station crossing WAN + WLAN: the video must
    // see queueing at the shared AP queue (RTT inflation at the server
    // probe) or outright drops.
    let mut r = rig(4.0, 0.0, 7_000_000);
    r.sim.run_until(SimTime::from_secs(200));
    assert!(r.handle.done());
    let q = r.handle.qoe();
    // 7 Mbit/s of flood on a 7.8 Mbit/s DSL pipe: the session suffers.
    assert!(
        !q.stalls.is_empty() || !q.completed || q.startup_delay_s().unwrap_or(99.0) > 3.0,
        "{q:?}"
    );
    let rtt = metric(&r, 2, "tcp.s2c.rtt_avg").unwrap();
    let mut calm = rig(4.0, 0.0, 0);
    calm.sim.run_until(SimTime::from_secs(120));
    let rtt_calm = metric(&calm, 2, "tcp.s2c.rtt_avg").unwrap();
    assert!(rtt > rtt_calm * 1.3, "flooded rtt {rtt} calm {rtt_calm}");
}

#[test]
fn hardware_sampling_observed_by_all_probes() {
    let mut r = rig(4.0, 0.0, 0);
    // Stress the phone mid-run.
    r.sim.net.hosts[r.mobile.idx()].cpu.register(5.0);
    r.sim.run_until(SimTime::from_secs(120));
    let cpu = metric(&r, 0, "hw.cpu_avg").unwrap();
    assert!(cpu > 0.9, "cpu {cpu}");
    // The router probe reports *its own* CPU, not the phone's.
    let router_cpu = metric(&r, 1, "hw.cpu_avg").unwrap();
    assert!(router_cpu < 0.5, "router cpu {router_cpu}");
}
