//! Offline drop-in subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the slice of criterion's API the workspace's
//! benches use: [`Criterion::bench_function`], benchmark groups with
//! `sample_size`, `Bencher::iter`, [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each sample times a batch of iterations sized so
//! a batch takes ≳1 ms, collects `sample_size` samples, and reports
//! min / mean / median per-iteration time to stdout. Passing `--test`
//! (as `cargo test` does for bench targets) runs every benchmark for a
//! single iteration, so bench targets stay cheap under `cargo test`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Times closures for one benchmark.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    quick: bool,
}

impl Bencher<'_> {
    /// Measure `f`, called repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.quick {
            black_box(f());
            return;
        }
        // Warm up and size the batch so one batch is ≳1 ms.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let el = t.elapsed();
            if el >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed() / batch as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_one(name: &str, sample_size: usize, quick: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut samples = Vec::new();
    let mut b = Bencher {
        samples: &mut samples,
        sample_size,
        quick,
    };
    f(&mut b);
    if quick {
        println!("{name}: ok (test mode)");
        return;
    }
    samples.sort();
    if samples.is_empty() {
        println!("{name}: no samples");
        return;
    }
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name}: min {}  mean {}  median {}  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(median),
        samples.len()
    );
}

/// Benchmark registry/driver for one `criterion_group!` function.
pub struct Criterion {
    default_sample_size: usize,
    quick: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        // `cargo test` / `cargo bench` pass harness flags; honour
        // `--test` (single-iteration mode) and treat the first bare
        // argument as a substring filter, like criterion proper.
        let quick = args.iter().any(|a| a == "--test");
        let filter = args.iter().skip(1).find(|a| !a.starts_with('-')).cloned();
        Criterion {
            default_sample_size: 20,
            quick,
            filter,
        }
    }
}

impl Criterion {
    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.selected(name) {
            run_one(name, self.default_sample_size, self.quick, &mut f);
        }
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            prefix: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    prefix: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{name}", self.prefix);
        if self.parent.selected(&full) {
            let n = self.sample_size.unwrap_or(self.parent.default_sample_size);
            run_one(&full, n, self.parent.quick, &mut f);
        }
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declare a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare `main` running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion {
            default_sample_size: 3,
            quick: false,
            filter: None,
        };
        let mut count = 0u64;
        c.bench_function("counter", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_sample_size_and_filter() {
        let mut c = Criterion {
            default_sample_size: 3,
            quick: true,
            filter: Some("yes".into()),
        };
        let mut ran_yes = false;
        let mut ran_no = false;
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("yes_case", |b| b.iter(|| ran_yes = true));
        g.bench_function("other", |b| b.iter(|| ran_no = true));
        g.finish();
        assert!(ran_yes && !ran_no);
    }
}
