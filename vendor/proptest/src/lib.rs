//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the slice of proptest's API the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with an optional leading
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! * range strategies over the primitive numeric types,
//! * tuple strategies (arity 2–4),
//! * [`collection::vec`],
//! * [`arbitrary::any`] for the unsigned integers and
//!   [`sample::Index`].
//!
//! Shrinking is intentionally not implemented: failures report the
//! generated inputs via the panic message of the underlying assertion
//! (the seed for each test function is deterministic, derived from the
//! test's module path, so failures reproduce exactly).

use rand::rngs::SmallRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// Test-runner types (`ProptestConfig`, the RNG handed to strategies).
pub mod test_runner {
    use super::*;

    /// Number of random cases each property runs by default.
    pub const DEFAULT_CASES: u32 = 32;

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: DEFAULT_CASES,
            }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Explicit test-case failure (returned as `Err` from a property
    /// body instead of panicking).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property does not hold; the message explains why.
        Fail(String),
        /// The generated inputs were unsuitable (counts as a skip).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    /// Deterministic RNG driving value generation for one test fn.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// Seeded from a stable FNV-1a hash of the test's identifier,
        /// so each test function gets its own reproducible stream.
        pub fn for_test(ident: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in ident.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: SmallRng::seed_from_u64(h),
            }
        }

        /// Raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            RngCore::next_u64(&mut self.inner)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.inner.gen::<f64>()
        }

        /// Uniform usize in `[0, n)`.
        pub fn below(&mut self, n: usize) -> usize {
            self.inner.gen_range(0..n)
        }
    }
}

use test_runner::TestRng;

/// Value-generation strategies.
pub mod strategy {
    use super::*;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Generate one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Passthrough so `&strategy` also works where a strategy is expected.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = (u128::from(rng.next_u64()) * span) >> 64;
                    (self.start as i128 + r as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let r = (u128::from(rng.next_u64()) * span) >> 64;
                    (lo as i128 + r as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    let v = self.start + u * (self.end - self.start);
                    if v < self.end { v } else { <$t>::from_bits(self.end.to_bits() - 1) }
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    macro_rules! impl_tuple {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }

    /// Strategy producing a constant value (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_excl: usize,
    }

    /// Accepted length specifications for [`vec`].
    pub trait IntoSizeRange {
        /// `(min, max_exclusive)` bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    /// `proptest::collection::vec`: a vector of values from `element`
    /// with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max_excl) = size.bounds();
        assert!(min < max_excl, "empty size range");
        VecStrategy {
            element,
            min,
            max_excl,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.min + rng.below(self.max_excl - self.min);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arb_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyStrategy<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: core::marker::PhantomData,
        }
    }
}

/// `prop::sample` — index selection.
pub mod sample {
    use super::arbitrary::Arbitrary;
    use super::TestRng;

    /// An arbitrary index into a collection of a-priori unknown size.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a concrete collection size.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            ((u128::from(self.0) * size as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// The `prop` facade module (`prop::sample::Index`, …).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::proptest;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne};
}

/// Assertion: delegates to `assert!` (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Assertion: delegates to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Assertion: delegates to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// The `proptest!` macro: declares `#[test]` functions whose arguments
/// are drawn from strategies, each run for `cases` random iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    let ($($arg,)*) = (
                        $( $crate::strategy::Strategy::sample(&($strat), &mut __rng), )*
                    );
                    // Property bodies may `return Err(TestCaseError::…)`
                    // instead of panicking, as in proptest proper.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    match __outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err(e) => panic!("{e} (case {__case})"),
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3u64..17, b in -2.5f64..2.5, c in 0usize..5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.5..2.5).contains(&b));
            prop_assert!(c < 5);
        }

        #[test]
        fn vec_lengths(xs in prop::collection::vec(0u32..10, 2..9)) {
            prop_assert!((2..9).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_any(pair in (0usize..4, 0.0f64..1.0), seed in any::<u64>()) {
            prop_assert!(pair.0 < 4 && (0.0..1.0).contains(&pair.1));
            let _ = seed;
        }

        #[test]
        fn sample_index_resolves(pick in any::<prop::sample::Index>()) {
            let v = [10, 20, 30];
            prop_assert!(v[pick.index(v.len())] % 10 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
