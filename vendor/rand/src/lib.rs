//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) slice of the `rand 0.8` API the
//! workspace actually uses: [`rngs::SmallRng`], the [`Rng`] extension
//! trait with `gen` / `gen_range`, and [`SeedableRng::seed_from_u64`].
//!
//! `SmallRng` is implemented as xoshiro256++ seeded through SplitMix64,
//! the same generator family `rand 0.8` uses on 64-bit targets. The
//! exact output stream is not guaranteed to match upstream `rand` —
//! nothing in the workspace depends on the upstream stream, only on
//! determinism for a fixed seed.

/// Low-level generator interface: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from their full domain
/// (the `Standard` distribution in upstream rand).
pub trait StandardSample {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be drawn uniformly from a half-open `lo..hi` range.
pub trait UniformSample: Sized {
    /// Draw one value from `[lo, hi)`. Panics if the range is empty.
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                // The widest expressible range of any supported type
                // spans fewer than 2^64 values, so the span fits u64
                // and `2^64 % span` is `(2^64 - span) % span` — no
                // u128 division libcalls on this path.
                let span = (hi as i128 - lo as i128) as u64;
                // Lemire-style widening multiply with rejection for an
                // exactly uniform draw over `span` buckets.
                let reject = 0u64.wrapping_sub(span) % span;
                loop {
                    let m = u128::from(rng.next_u64()) * u128::from(span);
                    if (m as u64) >= reject || reject == 0 {
                        return (lo as i128 + ((m >> 64) as i128)) as $t;
                    }
                }
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let u = <$t as StandardSample>::standard_sample(rng);
                let v = lo + u * (hi - lo);
                // Guard against rounding up to the excluded endpoint.
                if v < hi { v } else { <$t>::from_bits(hi.to_bits() - 1) }
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Draw uniformly from a half-open range `lo..hi`.
    fn gen_range<T: UniformSample>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::uniform_sample(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 step — used for seeding xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // All-zero state is invalid for xoshiro; splitmix64 cannot
            // produce four zero outputs in a row, but keep the guard.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let i = r.gen_range(0usize..5);
            assert!(i < 5);
        }
    }

    #[test]
    fn uniform_int_unbiased_mean() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| r.gen_range(0u64..10)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 4.5).abs() < 0.05, "mean {mean}");
    }
}
